"""The :class:`ResourceMonitor` facade.

This is the only window the partitioning framework has onto the cluster,
mirroring how the paper's framework only saw its testbed through NWS:

- :meth:`ResourceMonitor.probe_all` measures CPU availability, free memory
  and bandwidth on every node and returns a :class:`MonitorSnapshot`; the
  snapshot carries ``overhead_seconds`` -- the paper reports ~0.5 s per node
  to probe NWS and compute the relative capacity (section 6.1.4) -- which
  the runtime charges to simulated time.
- :meth:`ResourceMonitor.forecast_all` returns the forecaster suite's
  prediction instead of the raw measurement (NWS semantics).  With the
  default ``last`` forecaster this equals the latest probe.
- Failed probes (injected, node down, or sensor blacked out) fall back to
  the node's last known reading, are counted in ``snapshot.stale_nodes``,
  and accumulate per-node *consecutive* sweep-failure counts on
  ``snapshot.failure_counts`` -- persistent sensor loss is visible, not
  silently absorbed.
- With a :class:`~repro.resilience.policy.ProbeRetryPolicy` attached, a
  failed probe is retried in-sweep with exponential backoff (the delays
  are charged to the sweep's overhead), and consecutive failures escalate
  ``healthy -> stale -> suspect -> evicted`` with ``fault.*`` /
  ``recovery.*`` telemetry events at each transition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import Cluster
from repro.monitor.forecasting import Forecaster, make_forecaster
from repro.monitor.sensors import METRICS, MetricSensor
from repro.resilience.policy import NodeProbeStatus, ProbeRetryPolicy
from repro.telemetry.spans import NULL_TRACER
from repro.util.errors import MonitorError

__all__ = ["MonitorSnapshot", "ResourceMonitor"]

#: Probe + capacity-computation cost per node (seconds), from section 6.1.4.
DEFAULT_PROBE_OVERHEAD_S = 0.5


@dataclass(frozen=True, slots=True)
class MonitorSnapshot:
    """System state as seen through the monitor at one sensing point.

    Arrays are indexed by node: ``cpu`` (fraction in [0,1]), ``memory_mb``,
    ``bandwidth_mbps``.  ``stale_nodes`` lists nodes whose probe failed and
    whose values were carried over from the previous snapshot.
    """

    time: float
    cpu: np.ndarray
    memory_mb: np.ndarray
    bandwidth_mbps: np.ndarray
    overhead_seconds: float
    stale_nodes: tuple[int, ...] = field(default=())
    #: Per-node count of *consecutive* sweeps whose probe failed (0 =
    #: healthy).  Unlike ``stale_nodes`` -- this sweep only -- the counts
    #: expose persistent sensor loss to the escalation policy and the
    #: health monitor.  Empty tuple when the monitor predates the sweep
    #: bookkeeping (e.g. hand-built snapshots in tests).
    failure_counts: tuple[int, ...] = field(default=())

    @property
    def num_nodes(self) -> int:
        return len(self.cpu)


class ResourceMonitor:
    """NWS-equivalent monitoring service over a simulated cluster.

    Parameters
    ----------
    cluster:
        The cluster to observe.
    probe_overhead_s:
        Latency of probing one node and computing its relative capacity
        (default 0.5 s, section 6.1.4).  Probes of different nodes run
        concurrently -- NWS sensors are independent daemons -- so a full
        sweep costs ``probe_overhead_s + aggregation_s_per_node * N``, not
        ``0.5 * N``.
    aggregation_s_per_node:
        Serial cost of collecting and folding each node's answer at the
        querying process.
    noise:
        Relative measurement noise sigma applied by each sensor.
    failure_rate:
        Per-probe failure probability (failure injection).
    forecaster:
        Forecaster kind for :meth:`forecast_all`:
        ``last | mean | median | ar | adaptive``.
    seed:
        Base seed for sensor noise streams.
    tracer:
        Telemetry sink for probe spans (no-op by default; the runtime
        attaches its tracer when tracing is enabled).
    retry_policy:
        Optional :class:`~repro.resilience.policy.ProbeRetryPolicy`.  When
        set, failed probes retry in-sweep with backoff and consecutive
        failures escalate to suspect/evicted status; when ``None`` the
        monitor keeps the original carry-forward-only behaviour.
    """

    def __init__(
        self,
        cluster: Cluster,
        probe_overhead_s: float = DEFAULT_PROBE_OVERHEAD_S,
        aggregation_s_per_node: float = 0.02,
        noise: float = 0.0,
        failure_rate: float = 0.0,
        forecaster: str = "last",
        seed: int = 0,
        tracer=NULL_TRACER,
        retry_policy: ProbeRetryPolicy | None = None,
    ):
        if probe_overhead_s < 0:
            raise MonitorError(f"negative probe overhead {probe_overhead_s}")
        if aggregation_s_per_node < 0:
            raise MonitorError(
                f"negative aggregation cost {aggregation_s_per_node}"
            )
        self.cluster = cluster
        self.probe_overhead_s = probe_overhead_s
        self.aggregation_s_per_node = aggregation_s_per_node
        self.forecaster_kind = forecaster
        self.tracer = tracer
        self._sensors = {
            metric: MetricSensor(
                cluster, metric, noise=noise, failure_rate=failure_rate,
                seed=seed + i,
            )
            for i, metric in enumerate(METRICS)
        }
        # One forecaster per (metric, node).
        self._forecasters: dict[str, list[Forecaster]] = {
            metric: [make_forecaster(forecaster) for _ in range(cluster.num_nodes)]
            for metric in METRICS
        }
        self._last_values: dict[str, list[float | None]] = {
            metric: [None] * cluster.num_nodes for metric in METRICS
        }
        self.num_probes = 0
        self.last_probe_time: float | None = None
        self.retry_policy = retry_policy
        #: Nodes whose sensors are blacked out (fault injection): the node
        #: may be computing fine, but every probe of it fails.
        self._blackouts: set[int] = set()
        self._consecutive_failures = [0] * cluster.num_nodes
        self._status = [NodeProbeStatus.HEALTHY] * cluster.num_nodes
        self._retry_overhead_s = 0.0

    # ------------------------------------------------------------------
    # Sensor blackouts (fault injection)
    # ------------------------------------------------------------------
    def blackout_sensor(self, node: int) -> None:
        """All probes of ``node`` fail until :meth:`restore_sensor`."""
        if not 0 <= node < self.cluster.num_nodes:
            raise MonitorError(f"unknown node index {node}")
        self._blackouts.add(node)

    def restore_sensor(self, node: int) -> None:
        """Lift a sensor blackout; idempotent."""
        self._blackouts.discard(node)

    @property
    def blacked_out_nodes(self) -> tuple[int, ...]:
        return tuple(sorted(self._blackouts))

    # ------------------------------------------------------------------
    def _read_sensor(self, metric: str, node: int, t: float | None) -> float:
        """One probe attempt; unreachable nodes fail like dead sensors."""
        if node in self._blackouts:
            raise MonitorError(f"sensor blackout on node {node}")
        if not self.cluster.is_up(node):
            raise MonitorError(f"node {node} is down; probe timed out")
        return self._sensors[metric].probe(node, t).value

    def _probe_metric(
        self, metric: str, t: float | None, stale: set[int]
    ) -> np.ndarray:
        values = np.empty(self.cluster.num_nodes)
        for node in range(self.cluster.num_nodes):
            value: float | None
            try:
                value = self._read_sensor(metric, node, t)
            except MonitorError:
                value = None
                if self.retry_policy is not None:
                    for attempt in range(1, self.retry_policy.max_retries + 1):
                        self._retry_overhead_s += (
                            self.retry_policy.backoff.delay(node, attempt)
                        )
                        try:
                            value = self._read_sensor(metric, node, t)
                            break
                        except MonitorError:
                            continue
            if value is None:
                prev = self._last_values[metric][node]
                if prev is None:
                    # Never measured: fall back to an optimistic default so
                    # the capacity calculator still has something to chew on.
                    extract, _ = METRICS[metric]
                    value = float(extract(self.cluster.state_of(node, 0.0)))
                else:
                    value = prev
                stale.add(node)
            self._last_values[metric][node] = value
            self._forecasters[metric][node].update(value)
            values[node] = value
        return values

    def sweep_overhead_seconds(self) -> float:
        """Cost of one full probe sweep (concurrent probes + aggregation)."""
        return (
            self.probe_overhead_s
            + self.aggregation_s_per_node * self.cluster.num_nodes
        )

    def staleness_s(self, t: float | None = None) -> float:
        """Seconds of simulated time since the last probe sweep.

        The health monitor's sensing-staleness signal: decisions made on a
        snapshot sensed long ago may no longer reflect the cluster.
        Returns ``inf`` before the first probe so consumers can flag
        "never sensed" distinctly from "sensed at t=0".
        """
        if self.last_probe_time is None:
            return math.inf
        now = self.cluster.clock.now if t is None else t
        return max(now - self.last_probe_time, 0.0)

    def probe_all(self, t: float | None = None) -> MonitorSnapshot:
        """Measure every metric on every node.

        The returned snapshot's ``overhead_seconds`` is
        :meth:`sweep_overhead_seconds`; charging it to the simulated clock
        is the caller's responsibility (the runtime engine does this), which
        keeps the monitor reusable for pure observation in tests.
        """
        when = self.cluster.clock.now if t is None else t
        with self.tracer.span(
            "probe", num_nodes=self.cluster.num_nodes
        ) as span:
            stale: set[int] = set()
            self._retry_overhead_s = 0.0
            cpu = self._probe_metric("cpu", t, stale)
            mem = self._probe_metric("memory", t, stale)
            bw = self._probe_metric("bandwidth", t, stale)
            self.num_probes += 1
            self.last_probe_time = when
            for node in range(self.cluster.num_nodes):
                if node in stale:
                    self._consecutive_failures[node] += 1
                else:
                    self._consecutive_failures[node] = 0
            snapshot = MonitorSnapshot(
                time=when,
                cpu=cpu,
                memory_mb=mem,
                bandwidth_mbps=bw,
                overhead_seconds=(
                    self.sweep_overhead_seconds() + self._retry_overhead_s
                ),
                stale_nodes=tuple(sorted(stale)),
                failure_counts=tuple(self._consecutive_failures),
            )
            span.set(
                overhead_seconds=snapshot.overhead_seconds,
                num_stale=len(stale),
            )
            if stale:
                span.set(
                    max_consecutive_failures=max(self._consecutive_failures),
                )
        if self.retry_policy is not None:
            self._escalate()
        if self.tracer.enabled and stale:
            self.tracer.metrics.counter("probe_failures").inc(len(stale))
        return snapshot

    def _escalate(self) -> None:
        """Walk every node up/down the escalation ladder, emitting one
        telemetry event per status transition."""
        esc = self.retry_policy.escalation
        for node in range(self.cluster.num_nodes):
            new = esc.classify(self._consecutive_failures[node])
            old = self._status[node]
            if new is old:
                continue
            self._status[node] = new
            if new is NodeProbeStatus.SUSPECT:
                self.tracer.event(
                    "fault.probe_suspect",
                    node=node,
                    consecutive_failures=self._consecutive_failures[node],
                )
            elif new is NodeProbeStatus.EVICTED:
                self.tracer.event(
                    "fault.probe_evicted",
                    node=node,
                    consecutive_failures=self._consecutive_failures[node],
                )
            elif new is NodeProbeStatus.HEALTHY and old in (
                NodeProbeStatus.SUSPECT,
                NodeProbeStatus.EVICTED,
            ):
                self.tracer.event("recovery.probe_healthy", node=node)

    def node_status(self, node: int) -> NodeProbeStatus:
        """Where ``node`` sits on the escalation ladder (always HEALTHY
        when no retry policy is attached)."""
        if not 0 <= node < self.cluster.num_nodes:
            raise MonitorError(f"unknown node index {node}")
        return self._status[node]

    @property
    def evicted_nodes(self) -> tuple[int, ...]:
        """Nodes the escalation policy has removed from the live set."""
        return tuple(
            k
            for k in range(self.cluster.num_nodes)
            if self._status[k] is NodeProbeStatus.EVICTED
        )

    def trusted_mask(self) -> np.ndarray:
        """Per-node mask: up per cluster ground truth *and* not evicted by
        the escalation policy.  This is the live set capacity
        renormalization uses."""
        mask = self.cluster.live_mask()
        for k in self.evicted_nodes:
            mask[k] = False
        return mask

    def forecast_all(self, t: float | None = None) -> MonitorSnapshot:
        """Forecast every metric from history (requires >= 1 prior probe).

        Costs nothing: forecasts are computed from already-gathered history,
        which is exactly why NWS exists -- consumers can ask for predictions
        between (expensive) measurements.
        """
        when = self.cluster.clock.now if t is None else t
        if self.num_probes == 0:
            raise MonitorError("forecast requested before any probe")
        arrays = {}
        for metric in METRICS:
            arrays[metric] = np.array(
                [f.forecast() for f in self._forecasters[metric]]
            )
        return MonitorSnapshot(
            time=when,
            cpu=np.clip(arrays["cpu"], 0.0, 1.0),
            memory_mb=np.maximum(arrays["memory"], 0.0),
            bandwidth_mbps=np.maximum(arrays["bandwidth"], 0.0),
            overhead_seconds=0.0,
            failure_counts=tuple(self._consecutive_failures),
        )
