"""NWS-style forecasters.

NWS does not hand applications raw measurements: it runs a family of simple
predictors over each measurement series and reports the value of whichever
predictor has recently been most accurate.  This module implements that
design: four primitive forecasters plus :class:`AdaptiveEnsembleForecaster`,
which scores every member on one-step-ahead absolute error and answers with
the current best.

All forecasters share a two-method interface: ``update(value)`` appends a
measurement, ``forecast()`` predicts the next one.  ``forecast()`` on an
empty history raises :class:`~repro.util.errors.MonitorError` -- callers
must have probed at least once.  A forecaster that needs *more* history
than it has (but has at least one measurement) does not raise mid-run:
it degrades to the last observed value and emits a ``forecast.cold``
telemetry event, so a cold start shows up in the trace instead of
killing the loop.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Sequence

import numpy as np

from repro.learn.models import OnlineLinearModel
from repro.telemetry.spans import get_active_tracer
from repro.util.errors import MonitorError

__all__ = [
    "Forecaster",
    "LastValueForecaster",
    "SlidingMeanForecaster",
    "SlidingMedianForecaster",
    "ARForecaster",
    "AdaptiveEnsembleForecaster",
    "ModelBackedForecaster",
    "make_forecaster",
]


class Forecaster:
    """Abstract one-step-ahead predictor over a scalar measurement series."""

    def update(self, value: float) -> None:
        raise NotImplementedError

    def forecast(self) -> float:
        raise NotImplementedError

    def _require_history(self, n: int, have: int) -> None:
        if have < n:
            raise MonitorError(
                f"{type(self).__name__} needs >= {n} measurements, has {have}"
            )

    def _degrade_if_cold(self, n: int, buf: Sequence[float]) -> float | None:
        """Cold-start guard: ``None`` when history suffices.

        An empty series still raises (there is nothing to degrade to --
        the caller never probed); a series shorter than ``n`` degrades
        to the last observed value and stamps a ``forecast.cold`` event
        on the active tracer rather than raising mid-run.
        """
        have = len(buf)
        if have >= n:
            return None
        if have == 0:
            raise MonitorError(
                f"{type(self).__name__} has no measurements"
            )
        tracer = get_active_tracer()
        if tracer.enabled:
            tracer.event(
                "forecast.cold",
                forecaster=type(self).__name__,
                needs=n,
                have=have,
            )
        return float(buf[-1])


class LastValueForecaster(Forecaster):
    """Predicts the most recent measurement (NWS 'LAST' predictor)."""

    def __init__(self) -> None:
        self._last: float | None = None

    def update(self, value: float) -> None:
        self._last = float(value)

    def forecast(self) -> float:
        if self._last is None:
            raise MonitorError("LastValueForecaster has no measurements")
        return self._last


class SlidingMeanForecaster(Forecaster):
    """Mean of the last ``window`` measurements (NWS 'RUN_AVG'/'SW_AVG')."""

    def __init__(self, window: int = 10):
        if window < 1:
            raise MonitorError(f"window must be >= 1, got {window}")
        self._buf: deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._buf.append(float(value))

    def forecast(self) -> float:
        self._require_history(1, len(self._buf))
        return float(np.mean(self._buf))


class SlidingMedianForecaster(Forecaster):
    """Median of the last ``window`` measurements (NWS 'MEDIAN') --
    robust to the load spikes that wreck mean-based predictors."""

    def __init__(self, window: int = 10):
        if window < 1:
            raise MonitorError(f"window must be >= 1, got {window}")
        self._buf: deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._buf.append(float(value))

    def forecast(self) -> float:
        self._require_history(1, len(self._buf))
        return float(np.median(self._buf))


class ARForecaster(Forecaster):
    """AR(1) predictor fit over a sliding window.

    Predicts ``mean + rho * (last - mean)`` where ``rho`` is the lag-1
    autocorrelation of the window; degrades gracefully to the mean when the
    series is too short or constant.
    """

    def __init__(self, window: int = 20):
        if window < 3:
            raise MonitorError(f"AR window must be >= 3, got {window}")
        self._buf: deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._buf.append(float(value))

    def forecast(self) -> float:
        self._require_history(1, len(self._buf))
        xs = np.asarray(self._buf)
        if len(xs) < 3:
            return float(xs.mean())
        mean = xs.mean()
        dev = xs - mean
        denom = float(dev[:-1] @ dev[:-1])
        if denom <= 1e-12:
            return float(mean)
        rho = float(dev[1:] @ dev[:-1]) / denom
        rho = float(np.clip(rho, -1.0, 1.0))
        return float(mean + rho * (xs[-1] - mean))


class AdaptiveEnsembleForecaster(Forecaster):
    """NWS's adaptive strategy: run every primitive, track one-step-ahead
    mean absolute error, answer with the current champion's forecast."""

    def __init__(self, members: list[Forecaster] | None = None):
        if members is None:
            members = [
                LastValueForecaster(),
                SlidingMeanForecaster(10),
                SlidingMedianForecaster(10),
                ARForecaster(20),
            ]
        if not members:
            raise MonitorError("ensemble needs at least one member")
        self.members = members
        self._errors = [0.0] * len(self.members)
        self._counts = [0] * len(self.members)
        self._seen = 0

    def update(self, value: float) -> None:
        # Score each member's standing prediction against the new truth.
        if self._seen > 0:
            for i, m in enumerate(self.members):
                try:
                    pred = m.forecast()
                except MonitorError:
                    continue
                self._errors[i] += abs(pred - value)
                self._counts[i] += 1
        for m in self.members:
            m.update(value)
        self._seen += 1

    def forecast(self) -> float:
        if self._seen == 0:
            raise MonitorError("ensemble has no measurements")
        return self.members[self.best_member_index()].forecast()

    def best_member_index(self) -> int:
        """Index of the member with the lowest observed MAE (ties: first)."""
        best, best_mae = 0, float("inf")
        for i in range(len(self.members)):
            if self._counts[i] == 0:
                mae = float("inf")
            else:
                mae = self._errors[i] / self._counts[i]
            if mae < best_mae:
                best, best_mae = i, mae
        return best if best_mae < float("inf") else 0

    def member_mae(self) -> list[float]:
        """Observed MAE per member (inf where unscored)."""
        return [
            self._errors[i] / self._counts[i] if self._counts[i] else float("inf")
            for i in range(len(self.members))
        ]


class ModelBackedForecaster(Forecaster):
    """Windowed least-squares trend fit over the measurement series.

    Backed by :class:`~repro.learn.models.OnlineLinearModel`: the last
    ``window`` measurements are regressed against their sequence index
    and the forecast is the fitted line extrapolated one step ahead --
    the predictor that tracks ramps (a host steadily gaining or shedding
    load) the level-based NWS primitives lag behind.  With fewer than
    ``min_points`` measurements the fit is untrustworthy; the forecast
    degrades to the last value under a ``forecast.cold`` event instead
    of raising.
    """

    def __init__(self, window: int = 20, min_points: int = 4):
        if window < 3:
            raise MonitorError(
                f"model window must be >= 3, got {window}"
            )
        if min_points < 3:
            raise MonitorError(
                f"min_points must be >= 3, got {min_points}"
            )
        self.min_points = int(min_points)
        self._buf: deque[float] = deque(maxlen=window)
        self._seen = 0

    def update(self, value: float) -> None:
        self._buf.append(float(value))
        self._seen += 1

    def _fit(self) -> OnlineLinearModel:
        model = OnlineLinearModel(min_points=self.min_points)
        start = self._seen - len(self._buf)
        for i, value in enumerate(self._buf):
            model.observe(float(start + i), value)
        return model

    def forecast(self) -> float:
        cold = self._degrade_if_cold(self.min_points, self._buf)
        if cold is not None:
            return cold
        model = self._fit()
        if model.is_cold:  # degenerate x-spread cannot happen; paranoia
            return float(self._buf[-1])
        return float(model.predict(self._seen))

    def forecast_interval(self) -> tuple[float, float]:
        """95 % CI of the one-step-ahead mean response (inf while cold)."""
        if len(self._buf) < self.min_points:
            return (-np.inf, np.inf)
        return self._fit().predict_interval(self._seen)


_FACTORIES: dict[str, Callable[[], Forecaster]] = {
    "last": LastValueForecaster,
    "mean": lambda: SlidingMeanForecaster(10),
    "median": lambda: SlidingMedianForecaster(10),
    "ar": lambda: ARForecaster(20),
    "adaptive": AdaptiveEnsembleForecaster,
    "model": ModelBackedForecaster,
}


def make_forecaster(kind: str) -> Forecaster:
    """Factory by name: last | mean | median | ar | adaptive | model."""
    try:
        return _FACTORIES[kind]()
    except KeyError:
        raise MonitorError(
            f"unknown forecaster {kind!r}; choose from {sorted(_FACTORIES)}"
        ) from None
