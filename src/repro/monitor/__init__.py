"""Resource monitoring -- the Network Weather Service substitute.

The paper obtains current system state at runtime from NWS, which (a)
periodically measures the fraction of CPU available, free memory and
end-to-end TCP bandwidth on every node, (b) *forecasts* the performance
deliverable over the next interval from the measurement history, and (c)
costs about 0.5 s per node to probe and convert into a relative capacity
(section 6.1.4).

This package reproduces that contract against the simulated cluster:

- :mod:`repro.monitor.sensors` -- per-metric sensors with optional
  measurement noise and injectable probe failures;
- :mod:`repro.monitor.forecasting` -- the NWS-style forecaster suite
  (last-value, sliding mean/median, AR(1), and the adaptive ensemble that
  tracks whichever predictor has been most accurate);
- :mod:`repro.monitor.service` -- :class:`ResourceMonitor`, the facade the
  runtime queries; it returns snapshots plus the probe overhead the caller
  must charge to simulated time.
"""

from repro.monitor.forecasting import (
    AdaptiveEnsembleForecaster,
    ARForecaster,
    Forecaster,
    LastValueForecaster,
    SlidingMeanForecaster,
    SlidingMedianForecaster,
    make_forecaster,
)
from repro.monitor.sensors import MetricSensor, SensorReading
from repro.monitor.service import MonitorSnapshot, ResourceMonitor

__all__ = [
    "Forecaster",
    "LastValueForecaster",
    "SlidingMeanForecaster",
    "SlidingMedianForecaster",
    "ARForecaster",
    "AdaptiveEnsembleForecaster",
    "make_forecaster",
    "MetricSensor",
    "SensorReading",
    "MonitorSnapshot",
    "ResourceMonitor",
]
