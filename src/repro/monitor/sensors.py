"""Per-metric sensors over the simulated cluster.

A sensor reads one metric (CPU availability, free memory or bandwidth) of
one node from the cluster's ground truth, optionally perturbed by
multiplicative Gaussian noise (real NWS measurements jitter) and subject to
injectable probe failures (a dead sensor host, a dropped TCP probe).  Failed
probes raise :class:`~repro.util.errors.MonitorError`; the service layer
decides whether to fall back to the last known value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.cluster.cluster import Cluster
from repro.util.errors import MonitorError, SimulationError
from repro.util.rng import make_rng

__all__ = ["SensorReading", "MetricSensor", "METRICS"]

#: Metric name -> (extractor from NodeState, clamp bounds)
METRICS: dict[str, tuple[Callable, tuple[float, float]]] = {
    "cpu": (lambda st: st.cpu_available, (0.0, 1.0)),
    "memory": (lambda st: st.free_memory_mb, (0.0, float("inf"))),
    "bandwidth": (lambda st: st.bandwidth_mbps, (0.0, float("inf"))),
}


@dataclass(frozen=True, slots=True)
class SensorReading:
    """One measurement: which node/metric, when, and the value."""

    node: int
    metric: str
    time: float
    value: float


class MetricSensor:
    """Reads one metric across all nodes of a cluster.

    Parameters
    ----------
    cluster:
        The simulated cluster to observe.
    metric:
        ``"cpu"``, ``"memory"`` or ``"bandwidth"``.
    noise:
        Relative (multiplicative) Gaussian noise sigma; 0 = exact readings.
    failure_rate:
        Probability that any single probe raises (failure injection).
    seed:
        Seed for the sensor's private noise/failure stream.
    """

    def __init__(
        self,
        cluster: Cluster,
        metric: str,
        noise: float = 0.0,
        failure_rate: float = 0.0,
        seed: int = 0,
    ):
        if metric not in METRICS:
            raise MonitorError(
                f"unknown metric {metric!r}; choose from {sorted(METRICS)}"
            )
        if noise < 0:
            raise MonitorError(f"negative noise sigma {noise}")
        if not 0.0 <= failure_rate < 1.0:
            raise MonitorError(
                f"failure_rate must be in [0, 1), got {failure_rate}"
            )
        self.cluster = cluster
        self.metric = metric
        self.noise = noise
        self.failure_rate = failure_rate
        self._rng = make_rng(seed)

    def probe(self, node: int, t: float | None = None) -> SensorReading:
        """Measure one node; may raise :class:`MonitorError` on failure."""
        if self.failure_rate and self._rng.random() < self.failure_rate:
            raise MonitorError(
                f"probe of {self.metric} on node {node} failed (injected)"
            )
        try:
            state = self.cluster.state_of(node, t)
        except SimulationError as exc:
            raise MonitorError(str(exc)) from exc
        extract, (lo, hi) = METRICS[self.metric]
        value = float(extract(state))
        if self.noise:
            value *= 1.0 + float(self._rng.normal(0.0, self.noise))
            value = float(np.clip(value, lo, hi))
        when = self.cluster.clock.now if t is None else t
        return SensorReading(node=node, metric=self.metric, time=when, value=value)
