"""Extendible hashing (Fagin et al., ACM TODS 1979).

The GrACE HDDA uses extendible hashing as its distributed dynamic storage and
access mechanism: SFC-derived index keys are hashed into buckets, the bucket
directory doubles on demand, and individual buckets split locally without
rehashing the whole table.  That property -- incremental growth with no global
reorganisation -- is what makes it suitable for a grid hierarchy that grows
and shrinks at every regrid.

:class:`ExtendibleHashTable` is a faithful in-memory implementation: a
directory of ``2**global_depth`` bucket pointers, each bucket carrying a
``local_depth`` and at most ``bucket_capacity`` entries.  Keys are
non-negative integers (SFC indices); values are arbitrary.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.util.errors import HDDAError

__all__ = ["Bucket", "ExtendibleHashTable", "checksum_bytes", "mix64"]

_MASK64 = (1 << 64) - 1


def mix64(key: int) -> int:
    """SplitMix64 finalizer: a cheap, high-quality 64-bit bit mixer.

    Extendible hashing takes directory bits from a *hash* of the key, not the
    key itself (Fagin et al. use a pseudo-random hash function); without this,
    two keys that agree in many low-order bits would force the directory to
    double once per agreeing bit, i.e. exponential memory for O(1) items.
    """
    z = (key + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def checksum_bytes(data: bytes, seed: int = 0) -> int:
    """64-bit content checksum built from :func:`mix64`.

    The payload is read as little-endian 64-bit words (zero-padded tail),
    each word is salted with its position and pushed through the same
    SplitMix64 finalizer the HDDA hashes with (vectorized over numpy
    ``uint64``, so MB-scale checkpoint payloads hash at memory speed), and
    the mixed words are XOR-folded with the length and seed.  Position
    salting means swapped blocks change the sum, unlike a plain XOR.  Not
    cryptographic -- it detects corruption and truncation, which is what a
    checkpoint integrity check needs.
    """
    n = len(data)
    acc = 0
    if n:
        pad = (-n) % 8
        words = np.frombuffer(
            data + b"\x00" * pad if pad else data, dtype="<u8"
        ).astype(np.uint64)
        words ^= np.arange(len(words), dtype=np.uint64) * np.uint64(
            0x9E3779B97F4A7C15
        )
        # SplitMix64 finalizer, elementwise (wrapping uint64 arithmetic).
        words += np.uint64(0x9E3779B97F4A7C15)
        words = (words ^ (words >> np.uint64(30))) * np.uint64(
            0xBF58476D1CE4E5B9
        )
        words = (words ^ (words >> np.uint64(27))) * np.uint64(
            0x94D049BB133111EB
        )
        words ^= words >> np.uint64(31)
        acc = int(np.bitwise_xor.reduce(words))
    return mix64(acc ^ mix64(seed ^ n))


class Bucket:
    """A storage bucket: bounded dict plus the local depth that tells the
    directory how many low-order key bits this bucket discriminates."""

    __slots__ = ("local_depth", "items", "capacity")

    def __init__(self, local_depth: int, capacity: int):
        self.local_depth = local_depth
        self.capacity = capacity
        self.items: dict[int, Any] = {}

    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Bucket(depth={self.local_depth}, n={len(self.items)})"


class ExtendibleHashTable:
    """Dynamically growing hash table with directory doubling and bucket splits.

    Parameters
    ----------
    bucket_capacity:
        Maximum entries per bucket before it splits.
    max_global_depth:
        Safety bound on directory doubling (the directory has
        ``2**global_depth`` slots).

    Notes
    -----
    The low ``global_depth`` bits of ``mix64(key)`` select the directory
    slot, following Fagin's use of a pseudo-random hash: mixing guarantees
    that directory depth grows with table *size*, never with accidental
    bit-pattern collisions between keys.
    """

    def __init__(self, bucket_capacity: int = 8, max_global_depth: int = 24):
        if bucket_capacity < 1:
            raise HDDAError(f"bucket_capacity must be >= 1, got {bucket_capacity}")
        self.bucket_capacity = bucket_capacity
        self.max_global_depth = max_global_depth
        self.global_depth = 1
        b0 = Bucket(1, bucket_capacity)
        b1 = Bucket(1, bucket_capacity)
        self._directory: list[Bucket] = [b0, b1]
        self._size = 0

    # ------------------------------------------------------------------
    def _slot(self, key: int) -> int:
        return mix64(key) & ((1 << self.global_depth) - 1)

    def _bucket_for(self, key: int) -> Bucket:
        return self._directory[self._slot(key)]

    @staticmethod
    def _check_key(key: int) -> int:
        k = int(key)
        if k < 0:
            raise HDDAError(f"keys must be non-negative integers, got {key!r}")
        return k

    # ------------------------------------------------------------------
    def put(self, key: int, value: Any) -> None:
        """Insert or overwrite ``key``; splits buckets / doubles the directory
        as needed."""
        key = self._check_key(key)
        while True:
            bucket = self._bucket_for(key)
            if key in bucket.items:
                bucket.items[key] = value
                return
            if not bucket.is_full():
                bucket.items[key] = value
                self._size += 1
                return
            self._split(bucket)

    def get(self, key: int, default: Any = None) -> Any:
        key = self._check_key(key)
        return self._bucket_for(key).items.get(key, default)

    def __contains__(self, key: int) -> bool:
        key = self._check_key(key)
        return key in self._bucket_for(key).items

    def __getitem__(self, key: int) -> Any:
        key = self._check_key(key)
        bucket = self._bucket_for(key)
        if key not in bucket.items:
            raise KeyError(key)
        return bucket.items[key]

    def __setitem__(self, key: int, value: Any) -> None:
        self.put(key, value)

    def remove(self, key: int) -> Any:
        """Delete ``key`` and return its value; raises ``KeyError`` if absent.

        Buckets are not merged on deletion (Fagin leaves coalescing optional;
        GrACE relies on regrid-time rebuilds instead).
        """
        key = self._check_key(key)
        bucket = self._bucket_for(key)
        if key not in bucket.items:
            raise KeyError(key)
        self._size -= 1
        return bucket.items.pop(key)

    def __len__(self) -> int:
        return self._size

    def keys(self) -> Iterator[int]:
        seen: set[int] = set()
        for bucket in self._directory:
            if id(bucket) in seen:
                continue
            seen.add(id(bucket))
            yield from bucket.items.keys()

    def items(self) -> Iterator[tuple[int, Any]]:
        seen: set[int] = set()
        for bucket in self._directory:
            if id(bucket) in seen:
                continue
            seen.add(id(bucket))
            yield from bucket.items.items()

    # ------------------------------------------------------------------
    def _split(self, bucket: Bucket) -> None:
        """Split a full bucket; double the directory first when the bucket is
        already at global depth."""
        if bucket.local_depth == self.global_depth:
            if self.global_depth >= self.max_global_depth:
                raise HDDAError(
                    "directory growth exceeded max_global_depth="
                    f"{self.max_global_depth}; all {self.bucket_capacity} "
                    "slots of a bucket collide on every discriminating bit"
                )
            self._directory = self._directory + self._directory
            self.global_depth += 1

        new_depth = bucket.local_depth + 1
        mask_bit = 1 << bucket.local_depth
        zero = Bucket(new_depth, self.bucket_capacity)
        one = Bucket(new_depth, self.bucket_capacity)
        for k, v in bucket.items.items():
            (one if mix64(k) & mask_bit else zero).items[k] = v
        for slot in range(len(self._directory)):
            if self._directory[slot] is bucket:
                self._directory[slot] = one if slot & mask_bit else zero

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, float]:
        """Occupancy statistics (used by HDDA diagnostics and tests)."""
        seen: dict[int, Bucket] = {}
        for b in self._directory:
            seen[id(b)] = b
        buckets = list(seen.values())
        sizes = [len(b.items) for b in buckets]
        return {
            "global_depth": self.global_depth,
            "directory_slots": len(self._directory),
            "num_buckets": len(buckets),
            "num_items": self._size,
            "max_bucket_fill": max(sizes) if sizes else 0,
            "mean_bucket_fill": (sum(sizes) / len(sizes)) if sizes else 0.0,
        }

    def check_invariants(self) -> None:
        """Raise :class:`HDDAError` when a structural invariant is violated.

        Invariants checked: directory size is ``2**global_depth``; every
        bucket's ``local_depth <= global_depth``; each bucket is referenced by
        exactly ``2**(global_depth - local_depth)`` slots; every key lives in
        the bucket its low bits select.
        """
        if len(self._directory) != (1 << self.global_depth):
            raise HDDAError("directory size != 2**global_depth")
        refs: dict[int, int] = {}
        for slot, bucket in enumerate(self._directory):
            refs[id(bucket)] = refs.get(id(bucket), 0) + 1
            if bucket.local_depth > self.global_depth:
                raise HDDAError("bucket local_depth exceeds global_depth")
            for k in bucket.items:
                if self._directory[self._slot(k)] is not bucket:
                    raise HDDAError(f"key {k} stored in the wrong bucket")
        seen: dict[int, Bucket] = {}
        for b in self._directory:
            seen[id(b)] = b
        for bid, bucket in seen.items():
            expect = 1 << (self.global_depth - bucket.local_depth)
            if refs[bid] != expect:
                raise HDDAError(
                    f"bucket with local_depth={bucket.local_depth} referenced "
                    f"{refs[bid]} times, expected {expect}"
                )
