"""Space-filling curves: Morton (Z-order) and Hilbert.

GrACE's HDDA derives its hierarchical index space directly from the
application domain using space-filling mappings; index locality on the curve
translates spatial application locality into storage locality.  The default
GrACE partitioner (ACEComposite) also walks the hierarchy in SFC order when it
deals out equal work shares.

Both curves map ``ndim``-dimensional non-negative integer coordinates (each
< 2**bits) to a single integer key, bijectively.  The Hilbert implementation
follows Skilling's transpose algorithm ("Programming the Hilbert curve",
AIP Conf. Proc. 707, 2004), which needs only bit operations and works in any
dimension.

Scalar helpers operate on tuples; the ``*_many`` variants are vectorized over
NumPy coordinate arrays for bulk ordering.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.util.errors import GeometryError
from repro.util.geometry import Box, BoxArray, BoxList

__all__ = [
    "morton_encode",
    "morton_decode",
    "morton_encode_many",
    "hilbert_encode",
    "hilbert_decode",
    "hilbert_encode_many",
    "sfc_keys_array",
    "sfc_sort_order",
    "sfc_order_boxes",
]


def _check_coords(coords: Sequence[int], bits: int) -> tuple[int, ...]:
    if bits < 1 or bits > 62:
        raise GeometryError(f"bits must be in [1, 62], got {bits}")
    out = []
    for c in coords:
        ci = int(c)
        if ci < 0 or ci >= (1 << bits):
            raise GeometryError(
                f"coordinate {c} out of range [0, 2**{bits}) for SFC encoding"
            )
        out.append(ci)
    if not out:
        raise GeometryError("empty coordinate tuple")
    return tuple(out)


# ---------------------------------------------------------------------------
# Morton (Z-order)
# ---------------------------------------------------------------------------
def morton_encode(coords: Sequence[int], bits: int) -> int:
    """Interleave the bits of ``coords`` into a single Morton key.

    Bit ``b`` of axis ``d`` lands at key bit ``b * ndim + d``.
    """
    cs = _check_coords(coords, bits)
    ndim = len(cs)
    key = 0
    for b in range(bits):
        for d, c in enumerate(cs):
            key |= ((c >> b) & 1) << (b * ndim + d)
    return key


def morton_decode(key: int, ndim: int, bits: int) -> tuple[int, ...]:
    """Inverse of :func:`morton_encode`."""
    if key < 0:
        raise GeometryError(f"negative Morton key {key}")
    coords = [0] * ndim
    for b in range(bits):
        for d in range(ndim):
            coords[d] |= ((key >> (b * ndim + d)) & 1) << b
    return tuple(coords)


def morton_encode_many(coords: np.ndarray, bits: int) -> np.ndarray:
    """Vectorized Morton encoding.

    Parameters
    ----------
    coords:
        Integer array of shape ``(n, ndim)``.
    bits:
        Bits per axis; ``bits * ndim`` must be <= 62 so keys fit in int64.
    """
    coords = np.asarray(coords)
    if coords.ndim != 2:
        raise GeometryError("coords must have shape (n, ndim)")
    n, ndim = coords.shape
    if bits * ndim > 62:
        raise GeometryError(f"bits*ndim = {bits * ndim} exceeds int64 capacity")
    if n and (coords.min() < 0 or coords.max() >= (1 << bits)):
        raise GeometryError("coordinates out of range for the requested bits")
    keys = np.zeros(n, dtype=np.int64)
    c = coords.astype(np.int64)
    for b in range(bits):
        for d in range(ndim):
            keys |= ((c[:, d] >> b) & 1) << (b * ndim + d)
    return keys


# ---------------------------------------------------------------------------
# Hilbert (Skilling's transpose algorithm)
# ---------------------------------------------------------------------------
def _hilbert_to_transpose(key: int, ndim: int, bits: int) -> list[int]:
    """Spread a Hilbert key into its 'transpose' form: ndim words of `bits`
    bits, where word d holds key bits d, d+ndim, d+2*ndim, ..."""
    x = [0] * ndim
    for b in range(bits * ndim):
        if (key >> b) & 1:
            # Most-significant key bits come first across the words.
            word = (bits * ndim - 1 - b) % ndim
            bit = (bits * ndim - 1 - b) // ndim
            x[word] |= 1 << (bits - 1 - bit)
    return x


def _transpose_to_hilbert(x: Sequence[int], ndim: int, bits: int) -> int:
    key = 0
    for word in range(ndim):
        for bit in range(bits):
            if (x[word] >> (bits - 1 - bit)) & 1:
                b = bits * ndim - 1 - (bit * ndim + word)
                key |= 1 << b
    return key


def hilbert_encode(coords: Sequence[int], bits: int) -> int:
    """Map coordinates to their index along the Hilbert curve."""
    cs = list(_check_coords(coords, bits))
    ndim = len(cs)
    if ndim == 1:
        return cs[0]
    x = cs[:]
    m = 1 << (bits - 1)
    # Inverse undo excess work (Skilling, AxestoTranspose).
    q = m
    while q > 1:
        p = q - 1
        for i in range(ndim):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, ndim):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[ndim - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(ndim):
        x[i] ^= t
    return _transpose_to_hilbert(x, ndim, bits)


def hilbert_decode(key: int, ndim: int, bits: int) -> tuple[int, ...]:
    """Inverse of :func:`hilbert_encode`."""
    if key < 0 or key >= (1 << (ndim * bits)):
        raise GeometryError(
            f"Hilbert key {key} out of range for ndim={ndim}, bits={bits}"
        )
    if ndim == 1:
        return (key,)
    x = _hilbert_to_transpose(key, ndim, bits)
    n = 1 << bits
    # Gray decode by H ^ (H/2).
    t = x[ndim - 1] >> 1
    for i in range(ndim - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    # Undo excess work (Skilling, TransposetoAxes).
    q = 2
    while q != n:
        p = q - 1
        for i in range(ndim - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return tuple(x)


def hilbert_encode_many(coords: np.ndarray, bits: int) -> np.ndarray:
    """Vectorized Hilbert encoding of an ``(n, ndim)`` coordinate array."""
    coords = np.asarray(coords)
    if coords.ndim != 2:
        raise GeometryError("coords must have shape (n, ndim)")
    n, ndim = coords.shape
    if ndim == 1:
        return coords[:, 0].astype(np.int64)
    if bits * ndim > 62:
        raise GeometryError(f"bits*ndim = {bits * ndim} exceeds int64 capacity")
    if n and (coords.min() < 0 or coords.max() >= (1 << bits)):
        raise GeometryError("coordinates out of range for the requested bits")
    out = np.empty(n, dtype=np.int64)
    # Process in cache-sized blocks: the bit walk is ~16 sequential
    # passes over its arrays, so keeping each block's temporaries
    # resident in cache beats streaming the full columns from memory.
    block = 1 << 16
    for b0 in range(0, max(n, 1), block):
        x = coords[b0 : b0 + block].T.astype(np.int64).copy()
        # Branchless Skilling walk: ``sel`` is an all-ones mask where the
        # pivot bit is set, so both sides of the per-bit conditional
        # reduce to pure integer ops on whole columns (no bool temps, no
        # where).  Word 0's else-branch is a no-op (``x0 ^ x0``), so it
        # only needs the bit-set side.
        shift = bits - 1
        while shift > 0:
            q = np.int64(1) << shift
            p = q - 1
            x[0] ^= p & -((x[0] & q) >> shift)
            for i in range(1, ndim):
                sel = -((x[i] & q) >> shift)
                t = (x[0] ^ x[i]) & p & ~sel
                x[0] ^= (p & sel) ^ t
                x[i] ^= t
            shift -= 1
        for i in range(1, ndim):
            x[i] ^= x[i - 1]
        # t has bit j set iff an odd number of bits above j are set in
        # the last word: a suffix-parity, computed by the doubling
        # prefix-xor ladder instead of a per-bit loop.
        g = x[ndim - 1].copy()
        for s in (1, 2, 4, 8, 16, 32):
            g ^= g >> s
        x ^= g >> 1
        out[b0 : b0 + block] = _interleave_msb_first(x, bits)
    return out


def _interleave_msb_first(x: np.ndarray, bits: int) -> np.ndarray:
    """Transpose words -> keys: MSB-first bit interleave across words.

    The 2-D case spreads bits with the classic magic-number doubling
    ladder (bit ``k`` of a word lands at position ``2k``), replacing the
    ``bits * ndim`` single-bit passes of the generic loop with ten
    whole-array ops.
    """
    ndim, n = x.shape
    if ndim == 2 and bits <= 31:

        def spread(v: np.ndarray) -> np.ndarray:
            v = (v | (v << 16)) & np.int64(0x0000FFFF0000FFFF)
            v = (v | (v << 8)) & np.int64(0x00FF00FF00FF00FF)
            v = (v | (v << 4)) & np.int64(0x0F0F0F0F0F0F0F0F)
            v = (v | (v << 2)) & np.int64(0x3333333333333333)
            return (v | (v << 1)) & np.int64(0x5555555555555555)

        return (spread(x[0]) << 1) | spread(x[1])
    keys = np.zeros(n, dtype=np.int64)
    for word in range(ndim):
        for bit in range(bits):
            b = bits * ndim - 1 - (bit * ndim + word)
            keys |= ((x[word] >> (bits - 1 - bit)) & 1) << b
    return keys


# ---------------------------------------------------------------------------
# Box ordering
# ---------------------------------------------------------------------------
def _required_bits(max_coord: int) -> int:
    bits = 1
    while (1 << bits) <= max_coord:
        bits += 1
    return bits


def sfc_keys_array(
    arr: BoxArray,
    curve: str = "hilbert",
    refine_factor: int = 2,
) -> np.ndarray:
    """SFC key of every box's lower corner, computed over whole columns.

    Corners are promoted to the index space of the finest level present
    (multiplying by ``refine_factor`` per level difference) so boxes from
    different levels interleave along one common curve.  Returns an
    ``(n,)`` int64 key array aligned with the rows of ``arr``.
    """
    n = len(arr)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    ndim = arr.ndim
    max_level = int(arr.level.max())
    scale = np.power(
        np.int64(refine_factor), (max_level - arr.level).astype(np.int64)
    )
    corners = arr.lower * scale[:, None]
    max_coord = int(corners.max(initial=0))
    bits = _required_bits(max(max_coord, 1))
    if bits * ndim > 62:
        raise GeometryError(
            f"domain too large for int64 SFC keys (bits={bits}, ndim={ndim})"
        )
    if curve == "hilbert":
        return hilbert_encode_many(corners, bits)
    if curve == "morton":
        return morton_encode_many(corners, bits)
    raise GeometryError(f"unknown curve {curve!r}; use 'hilbert' or 'morton'")


def sfc_sort_order(
    arr: BoxArray,
    curve: str = "hilbert",
    refine_factor: int = 2,
) -> np.ndarray:
    """Positional indices ordering ``arr`` along the space-filling curve.

    Stable tie-break on level so co-located multi-level boxes order
    deterministically coarse-to-fine (``np.lexsort`` is stable, matching
    the object path's ``sorted`` exactly).
    """
    keys = sfc_keys_array(arr, curve=curve, refine_factor=refine_factor)
    return np.lexsort((arr.level, keys))


def sfc_order_boxes(
    boxes: "Iterable[Box] | BoxList",
    curve: str = "hilbert",
    refine_factor: int = 2,
) -> BoxList:
    """Order boxes by the SFC index of their lower corner on the finest level.

    All corners are first promoted to the index space of the finest level
    present (multiplying by ``refine_factor`` per level difference) so boxes
    from different levels interleave along one common curve -- this is how the
    HDDA linearizes the whole hierarchy, and what ACEComposite walks.

    The keys and sort order are computed over the list's cached columns
    (:func:`sfc_keys_array` / :func:`sfc_sort_order`); a columnar input
    stays columnar, an object-backed input keeps its Box objects.
    """
    bl = boxes if isinstance(boxes, BoxList) else BoxList(boxes)
    if not len(bl):
        return BoxList()
    order = sfc_sort_order(bl.array, curve=curve, refine_factor=refine_factor)
    return bl.take(order)
