"""Space-filling curves: Morton (Z-order) and Hilbert.

GrACE's HDDA derives its hierarchical index space directly from the
application domain using space-filling mappings; index locality on the curve
translates spatial application locality into storage locality.  The default
GrACE partitioner (ACEComposite) also walks the hierarchy in SFC order when it
deals out equal work shares.

Both curves map ``ndim``-dimensional non-negative integer coordinates (each
< 2**bits) to a single integer key, bijectively.  The Hilbert implementation
follows Skilling's transpose algorithm ("Programming the Hilbert curve",
AIP Conf. Proc. 707, 2004), which needs only bit operations and works in any
dimension.

Scalar helpers operate on tuples; the ``*_many`` variants are vectorized over
NumPy coordinate arrays for bulk ordering.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.util.errors import GeometryError
from repro.util.geometry import Box, BoxList

__all__ = [
    "morton_encode",
    "morton_decode",
    "morton_encode_many",
    "hilbert_encode",
    "hilbert_decode",
    "hilbert_encode_many",
    "sfc_order_boxes",
]


def _check_coords(coords: Sequence[int], bits: int) -> tuple[int, ...]:
    if bits < 1 or bits > 62:
        raise GeometryError(f"bits must be in [1, 62], got {bits}")
    out = []
    for c in coords:
        ci = int(c)
        if ci < 0 or ci >= (1 << bits):
            raise GeometryError(
                f"coordinate {c} out of range [0, 2**{bits}) for SFC encoding"
            )
        out.append(ci)
    if not out:
        raise GeometryError("empty coordinate tuple")
    return tuple(out)


# ---------------------------------------------------------------------------
# Morton (Z-order)
# ---------------------------------------------------------------------------
def morton_encode(coords: Sequence[int], bits: int) -> int:
    """Interleave the bits of ``coords`` into a single Morton key.

    Bit ``b`` of axis ``d`` lands at key bit ``b * ndim + d``.
    """
    cs = _check_coords(coords, bits)
    ndim = len(cs)
    key = 0
    for b in range(bits):
        for d, c in enumerate(cs):
            key |= ((c >> b) & 1) << (b * ndim + d)
    return key


def morton_decode(key: int, ndim: int, bits: int) -> tuple[int, ...]:
    """Inverse of :func:`morton_encode`."""
    if key < 0:
        raise GeometryError(f"negative Morton key {key}")
    coords = [0] * ndim
    for b in range(bits):
        for d in range(ndim):
            coords[d] |= ((key >> (b * ndim + d)) & 1) << b
    return tuple(coords)


def morton_encode_many(coords: np.ndarray, bits: int) -> np.ndarray:
    """Vectorized Morton encoding.

    Parameters
    ----------
    coords:
        Integer array of shape ``(n, ndim)``.
    bits:
        Bits per axis; ``bits * ndim`` must be <= 62 so keys fit in int64.
    """
    coords = np.asarray(coords)
    if coords.ndim != 2:
        raise GeometryError("coords must have shape (n, ndim)")
    n, ndim = coords.shape
    if bits * ndim > 62:
        raise GeometryError(f"bits*ndim = {bits * ndim} exceeds int64 capacity")
    if n and (coords.min() < 0 or coords.max() >= (1 << bits)):
        raise GeometryError("coordinates out of range for the requested bits")
    keys = np.zeros(n, dtype=np.int64)
    c = coords.astype(np.int64)
    for b in range(bits):
        for d in range(ndim):
            keys |= ((c[:, d] >> b) & 1) << (b * ndim + d)
    return keys


# ---------------------------------------------------------------------------
# Hilbert (Skilling's transpose algorithm)
# ---------------------------------------------------------------------------
def _hilbert_to_transpose(key: int, ndim: int, bits: int) -> list[int]:
    """Spread a Hilbert key into its 'transpose' form: ndim words of `bits`
    bits, where word d holds key bits d, d+ndim, d+2*ndim, ..."""
    x = [0] * ndim
    for b in range(bits * ndim):
        if (key >> b) & 1:
            # Most-significant key bits come first across the words.
            word = (bits * ndim - 1 - b) % ndim
            bit = (bits * ndim - 1 - b) // ndim
            x[word] |= 1 << (bits - 1 - bit)
    return x


def _transpose_to_hilbert(x: Sequence[int], ndim: int, bits: int) -> int:
    key = 0
    for word in range(ndim):
        for bit in range(bits):
            if (x[word] >> (bits - 1 - bit)) & 1:
                b = bits * ndim - 1 - (bit * ndim + word)
                key |= 1 << b
    return key


def hilbert_encode(coords: Sequence[int], bits: int) -> int:
    """Map coordinates to their index along the Hilbert curve."""
    cs = list(_check_coords(coords, bits))
    ndim = len(cs)
    if ndim == 1:
        return cs[0]
    x = cs[:]
    m = 1 << (bits - 1)
    # Inverse undo excess work (Skilling, AxestoTranspose).
    q = m
    while q > 1:
        p = q - 1
        for i in range(ndim):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, ndim):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[ndim - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(ndim):
        x[i] ^= t
    return _transpose_to_hilbert(x, ndim, bits)


def hilbert_decode(key: int, ndim: int, bits: int) -> tuple[int, ...]:
    """Inverse of :func:`hilbert_encode`."""
    if key < 0 or key >= (1 << (ndim * bits)):
        raise GeometryError(
            f"Hilbert key {key} out of range for ndim={ndim}, bits={bits}"
        )
    if ndim == 1:
        return (key,)
    x = _hilbert_to_transpose(key, ndim, bits)
    n = 1 << bits
    # Gray decode by H ^ (H/2).
    t = x[ndim - 1] >> 1
    for i in range(ndim - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    # Undo excess work (Skilling, TransposetoAxes).
    q = 2
    while q != n:
        p = q - 1
        for i in range(ndim - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return tuple(x)


def hilbert_encode_many(coords: np.ndarray, bits: int) -> np.ndarray:
    """Vectorized Hilbert encoding of an ``(n, ndim)`` coordinate array."""
    coords = np.asarray(coords)
    if coords.ndim != 2:
        raise GeometryError("coords must have shape (n, ndim)")
    n, ndim = coords.shape
    if ndim == 1:
        return coords[:, 0].astype(np.int64)
    if bits * ndim > 62:
        raise GeometryError(f"bits*ndim = {bits * ndim} exceeds int64 capacity")
    if n and (coords.min() < 0 or coords.max() >= (1 << bits)):
        raise GeometryError("coordinates out of range for the requested bits")
    x = coords.T.astype(np.int64).copy()  # shape (ndim, n)
    m = np.int64(1 << (bits - 1))
    q = m
    while q > 1:
        p = q - 1
        for i in range(ndim):
            has = (x[i] & q).astype(bool)
            x[0] = np.where(has, x[0] ^ p, x[0])
            t = np.where(has, 0, (x[0] ^ x[i]) & p)
            x[0] ^= t
            x[i] ^= t
        q >>= 1
    for i in range(1, ndim):
        x[i] ^= x[i - 1]
    t = np.zeros(n, dtype=np.int64)
    q = m
    while q > 1:
        t = np.where((x[ndim - 1] & q).astype(bool), t ^ (q - 1), t)
        q >>= 1
    x ^= t
    # Transpose -> key, MSB-first interleave across words.
    keys = np.zeros(n, dtype=np.int64)
    for word in range(ndim):
        for bit in range(bits):
            b = bits * ndim - 1 - (bit * ndim + word)
            keys |= ((x[word] >> (bits - 1 - bit)) & 1) << b
    return keys


# ---------------------------------------------------------------------------
# Box ordering
# ---------------------------------------------------------------------------
def _required_bits(max_coord: int) -> int:
    bits = 1
    while (1 << bits) <= max_coord:
        bits += 1
    return bits


def sfc_order_boxes(
    boxes: Iterable[Box],
    curve: str = "hilbert",
    refine_factor: int = 2,
) -> BoxList:
    """Order boxes by the SFC index of their lower corner on the finest level.

    All corners are first promoted to the index space of the finest level
    present (multiplying by ``refine_factor`` per level difference) so boxes
    from different levels interleave along one common curve -- this is how the
    HDDA linearizes the whole hierarchy, and what ACEComposite walks.
    """
    box_list = list(boxes)
    if not box_list:
        return BoxList()
    ndim = box_list[0].ndim
    max_level = max(b.level for b in box_list)
    corners = np.array(
        [
            [c * refine_factor ** (max_level - b.level) for c in b.lower]
            for b in box_list
        ],
        dtype=np.int64,
    )
    max_coord = int(corners.max(initial=0))
    bits = _required_bits(max(max_coord, 1))
    if bits * ndim > 62:
        raise GeometryError(
            f"domain too large for int64 SFC keys (bits={bits}, ndim={ndim})"
        )
    if curve == "hilbert":
        keys = hilbert_encode_many(corners, bits)
    elif curve == "morton":
        keys = morton_encode_many(corners, bits)
    else:
        raise GeometryError(f"unknown curve {curve!r}; use 'hilbert' or 'morton'")
    # Stable tie-break on level so co-located multi-level boxes order
    # deterministically coarse-to-fine.
    order = np.lexsort((np.array([b.level for b in box_list]), keys))
    return BoxList(box_list[i] for i in order)
