"""Deterministic random-number plumbing.

Every stochastic component (synthetic load generators, sensor noise,
workload traces) draws from a :class:`numpy.random.Generator` seeded through
this module, so identical experiment configurations replay identical system
dynamics -- the property the paper's controlled evaluation depends on
("the experimentation was performed in a controlled environment so that the
dynamics of the system state was the same in both cases", section 6.1.1).
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rng"]


def make_rng(seed: int | None) -> np.random.Generator:
    """A fresh PCG64 generator; ``None`` gives OS entropy (tests always seed)."""
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child stream from a parent generator.

    Used to give each node / load generator / sensor its own stream so adding
    one component never perturbs the draws of another (replay stability).
    """
    seed_seq = np.random.SeedSequence(
        entropy=int(rng.integers(0, 2**63 - 1)), spawn_key=(stream,)
    )
    return np.random.Generator(np.random.PCG64(seed_seq))
