"""Rectilinear index-space geometry: :class:`Box`, :class:`BoxArray` and
:class:`BoxList`.

GrACE maintains every component grid of the adaptive hierarchy as a *list of
bounding boxes*: a bounding box is a rectilinear region of the computational
domain defined by a lower bound, an upper bound and a refinement level (the
level fixes the stride of the box's cells relative to the base grid).  The
partitioners in :mod:`repro.partition` operate purely on these box lists, so
this module is the common currency of the whole system.

Two representations coexist:

- :class:`Box` -- one frozen object per box; convenient for construction,
  splitting and the object-level geometry algebra.
- :class:`BoxArray` -- struct-of-arrays metadata: contiguous ``int64``
  columns (``lower``, ``upper``, ``level``) over *all* boxes at once.  This
  is the extreme-scale form (Schornbaum & Rüde, arXiv:1704.06829): the SFC
  index, the work model and the partitioners operate on these columns
  directly, so a million-box repartition never walks Python objects.

:class:`BoxList` bridges the two: it can be built from either form and
converts lazily.  A list created from columns (:meth:`BoxList.from_array`)
stays columnar until some caller actually iterates box objects; a list
built from objects exposes its column view through :attr:`BoxList.array`,
computed once and cached.

Conventions
-----------
- Coordinates are integer cell indices **in the box's own level index space**.
- ``lower`` is inclusive, ``upper`` is exclusive (NumPy slice convention), so
  ``shape[d] == upper[d] - lower[d]``.
- Boxes are immutable; every operation returns a new :class:`Box`.
- ``level`` 0 is the coarsest (base) grid.  Refining by ``factor`` multiplies
  coordinates by ``factor`` and increments ``level``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.util.errors import GeometryError

__all__ = ["Box", "BoxArray", "BoxList"]


def _as_int_tuple(values: Sequence[int], what: str) -> tuple[int, ...]:
    """Coerce a coordinate sequence to a tuple of Python ints.

    Accepts any integer-like sequence (lists, NumPy arrays).  Raises
    :class:`GeometryError` for non-integral values so silent float
    truncation can never corrupt box arithmetic.
    """
    out = []
    for v in values:
        iv = int(v)
        if iv != v:
            raise GeometryError(f"{what} coordinate {v!r} is not integral")
        out.append(iv)
    return tuple(out)


@dataclass(frozen=True, slots=True)
class Box:
    """An axis-aligned rectilinear region of a refinement level's index space.

    Parameters
    ----------
    lower:
        Inclusive lower corner, one integer per dimension.
    upper:
        Exclusive upper corner; must dominate ``lower`` strictly in every
        dimension (empty boxes are illegal -- use :class:`BoxList` emptiness
        instead).
    level:
        Refinement level the coordinates live on; level 0 is the base grid.

    Examples
    --------
    >>> b = Box((0, 0), (8, 4))
    >>> b.shape
    (8, 4)
    >>> b.num_cells
    32
    >>> left, right = b.split(axis=0, position=3)
    >>> left.shape, right.shape
    ((3, 4), (5, 4))
    """

    lower: tuple[int, ...]
    upper: tuple[int, ...]
    level: int = 0

    def __post_init__(self) -> None:
        lo = _as_int_tuple(self.lower, "lower")
        up = _as_int_tuple(self.upper, "upper")
        object.__setattr__(self, "lower", lo)
        object.__setattr__(self, "upper", up)
        if len(lo) != len(up):
            raise GeometryError(
                f"dimensionality mismatch: lower has {len(lo)} dims, "
                f"upper has {len(up)}"
            )
        if len(lo) == 0:
            raise GeometryError("zero-dimensional boxes are not supported")
        if int(self.level) < 0:
            raise GeometryError(f"negative refinement level {self.level}")
        object.__setattr__(self, "level", int(self.level))
        for d, (a, b) in enumerate(zip(lo, up)):
            if b <= a:
                raise GeometryError(
                    f"empty box along axis {d}: lower={a}, upper={b}"
                )

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of spatial dimensions."""
        return len(self.lower)

    @property
    def shape(self) -> tuple[int, ...]:
        """Extent (number of cells) along each axis."""
        return tuple(u - l for l, u in zip(self.lower, self.upper))

    @property
    def num_cells(self) -> int:
        """Total number of cells in the box."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def longest_axis(self) -> int:
        """Index of the axis with the largest extent (ties -> lowest axis)."""
        shp = self.shape
        return int(np.argmax(shp))

    @property
    def shortest_side(self) -> int:
        """Smallest extent over all axes."""
        return min(self.shape)

    @property
    def longest_side(self) -> int:
        """Largest extent over all axes."""
        return max(self.shape)

    @property
    def aspect_ratio(self) -> float:
        """Ratio of the longest side to the shortest side (>= 1.0).

        The paper's box-splitting constraint keeps this ratio low by always
        cutting along the longest dimension.
        """
        return self.longest_side / self.shortest_side

    def __contains__(self, point: Sequence[int]) -> bool:
        if len(point) != self.ndim:
            return False
        return all(l <= p < u for p, l, u in zip(point, self.lower, self.upper))

    # ------------------------------------------------------------------
    # Set-like operations
    # ------------------------------------------------------------------
    def intersects(self, other: "Box") -> bool:
        """True if the two boxes share at least one cell (same level only)."""
        self._check_compatible(other)
        return all(
            a_lo < b_up and b_lo < a_up
            for a_lo, a_up, b_lo, b_up in zip(
                self.lower, self.upper, other.lower, other.upper
            )
        )

    def intersection(self, other: "Box") -> "Box | None":
        """The overlapping region, or ``None`` when disjoint."""
        self._check_compatible(other)
        lo = tuple(max(a, b) for a, b in zip(self.lower, other.lower))
        up = tuple(min(a, b) for a, b in zip(self.upper, other.upper))
        if any(u <= l for l, u in zip(lo, up)):
            return None
        return Box(lo, up, self.level)

    def contains_box(self, other: "Box") -> bool:
        """True if ``other`` lies entirely inside this box."""
        self._check_compatible(other)
        return all(
            s_lo <= o_lo and o_up <= s_up
            for s_lo, s_up, o_lo, o_up in zip(
                self.lower, self.upper, other.lower, other.upper
            )
        )

    def bounding_union(self, other: "Box") -> "Box":
        """Smallest box containing both operands (not a set union)."""
        self._check_compatible(other)
        lo = tuple(min(a, b) for a, b in zip(self.lower, other.lower))
        up = tuple(max(a, b) for a, b in zip(self.upper, other.upper))
        return Box(lo, up, self.level)

    def difference(self, other: "Box") -> "BoxList":
        """Cells of this box not covered by ``other``, as disjoint boxes.

        Uses axis-by-axis slab decomposition, producing at most ``2 * ndim``
        pieces.  Returns the whole box when the operands are disjoint.
        """
        inter = self.intersection(other)
        if inter is None:
            return BoxList([self])
        pieces: list[Box] = []
        lo = list(self.lower)
        up = list(self.upper)
        for d in range(self.ndim):
            if lo[d] < inter.lower[d]:
                p_lo, p_up = list(lo), list(up)
                p_up[d] = inter.lower[d]
                pieces.append(Box(tuple(p_lo), tuple(p_up), self.level))
            if inter.upper[d] < up[d]:
                p_lo, p_up = list(lo), list(up)
                p_lo[d] = inter.upper[d]
                pieces.append(Box(tuple(p_lo), tuple(p_up), self.level))
            lo[d] = inter.lower[d]
            up[d] = inter.upper[d]
        return BoxList(pieces)

    def _check_compatible(self, other: "Box") -> None:
        if self.ndim != other.ndim:
            raise GeometryError(
                f"dimensionality mismatch: {self.ndim} vs {other.ndim}"
            )
        if self.level != other.level:
            raise GeometryError(
                f"level mismatch: {self.level} vs {other.level}; refine or "
                "coarsen one operand first"
            )

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------
    def split(self, axis: int, position: int) -> tuple["Box", "Box"]:
        """Cut the box into two along ``axis`` at level coordinate ``position``.

        ``position`` must fall strictly inside the box's extent along the
        axis so both halves are non-empty.
        """
        if not 0 <= axis < self.ndim:
            raise GeometryError(f"axis {axis} out of range for {self.ndim}-D box")
        if not self.lower[axis] < position < self.upper[axis]:
            raise GeometryError(
                f"split position {position} outside open interval "
                f"({self.lower[axis]}, {self.upper[axis]}) on axis {axis}"
            )
        up_a = list(self.upper)
        up_a[axis] = position
        lo_b = list(self.lower)
        lo_b[axis] = position
        return (
            Box(self.lower, tuple(up_a), self.level),
            Box(tuple(lo_b), self.upper, self.level),
        )

    def halve(self, axis: int | None = None) -> tuple["Box", "Box"]:
        """Split into two (near-)equal halves, by default along the longest axis."""
        if axis is None:
            axis = self.longest_axis
        if self.shape[axis] < 2:
            raise GeometryError(
                f"cannot halve axis {axis} of extent {self.shape[axis]}"
            )
        mid = self.lower[axis] + self.shape[axis] // 2
        return self.split(axis, mid)

    # ------------------------------------------------------------------
    # Level changes and ghosting
    # ------------------------------------------------------------------
    def refine(self, factor: int = 2) -> "Box":
        """The same physical region expressed one level finer."""
        if factor < 2:
            raise GeometryError(f"refinement factor must be >= 2, got {factor}")
        return Box(
            tuple(l * factor for l in self.lower),
            tuple(u * factor for u in self.upper),
            self.level + 1,
        )

    def coarsen(self, factor: int = 2) -> "Box":
        """The covering region one level coarser (rounds outward)."""
        if factor < 2:
            raise GeometryError(f"coarsening factor must be >= 2, got {factor}")
        if self.level == 0:
            raise GeometryError("cannot coarsen below level 0")
        lo = tuple(l // factor for l in self.lower)
        up = tuple(-(-u // factor) for u in self.upper)  # ceil division
        return Box(lo, up, self.level - 1)

    def grow(self, width: int) -> "Box":
        """Expand (or shrink, for negative ``width``) by ``width`` cells per side."""
        lo = tuple(l - width for l in self.lower)
        up = tuple(u + width for u in self.upper)
        if any(u <= l for l, u in zip(lo, up)):
            raise GeometryError(f"grow({width}) would empty box {self}")
        return Box(lo, up, self.level)

    def clip(self, domain: "Box") -> "Box | None":
        """Intersection with ``domain`` (alias with intent: keep in-bounds)."""
        return self.intersection(domain)

    def translate(self, offset: Sequence[int]) -> "Box":
        """Shift the box by ``offset`` cells along each axis."""
        off = _as_int_tuple(offset, "offset")
        if len(off) != self.ndim:
            raise GeometryError("offset dimensionality mismatch")
        return Box(
            tuple(l + o for l, o in zip(self.lower, off)),
            tuple(u + o for u, o in zip(self.upper, off)),
            self.level,
        )

    # ------------------------------------------------------------------
    # Conversions / iteration
    # ------------------------------------------------------------------
    def slices(self, origin: Sequence[int] | None = None) -> tuple[slice, ...]:
        """NumPy slices addressing this box within an array whose index 0
        corresponds to level coordinate ``origin`` (default: the box's own
        lower corner, i.e. slices over the box-local array)."""
        if origin is None:
            origin = self.lower
        org = _as_int_tuple(origin, "origin")
        return tuple(
            slice(l - o, u - o) for l, u, o in zip(self.lower, self.upper, org)
        )

    def cell_centers(self) -> Iterator[tuple[int, ...]]:
        """Iterate all integer cell coordinates in the box (row-major)."""
        return itertools.product(
            *(range(l, u) for l, u in zip(self.lower, self.upper))
        )

    def corner_key(self) -> tuple[int, ...]:
        """Sort key: (level, lower...) -- deterministic box ordering."""
        return (self.level, *self.lower)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box(L{self.level} {self.lower}->{self.upper})"


class BoxArray:
    """Struct-of-arrays box metadata: contiguous ``int64`` columns.

    ``lower`` and ``upper`` have shape ``(n, ndim)``; ``level`` has shape
    ``(n,)``.  The columns are frozen (read-only) on construction -- a
    ``BoxArray`` is the immutable backing store of a :class:`BoxList`, and
    downstream consumers (work model, SFC index, partitioners) may alias
    its columns without defensive copies.

    Row ``i`` corresponds to ``Box(tuple(lower[i]), tuple(upper[i]),
    int(level[i]))``; :meth:`box` / :meth:`to_boxes` materialize that view
    on demand.  All bulk geometry (cell counts, level bucketing, overlap
    sweeps, deterministic sort orders) runs directly on the columns.
    """

    __slots__ = ("lower", "upper", "level", "_num_cells", "_cells_by_level")

    def __init__(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        level: np.ndarray,
    ) -> None:
        lower = np.ascontiguousarray(lower, dtype=np.int64)
        upper = np.ascontiguousarray(upper, dtype=np.int64)
        level = np.ascontiguousarray(level, dtype=np.int64)
        if lower.ndim != 2:
            raise GeometryError(
                f"lower must have shape (n, ndim), got {lower.shape}"
            )
        if upper.shape != lower.shape:
            raise GeometryError(
                f"upper shape {upper.shape} != lower shape {lower.shape}"
            )
        if level.shape != (lower.shape[0],):
            raise GeometryError(
                f"level must have shape ({lower.shape[0]},), got {level.shape}"
            )
        if lower.shape[0]:
            if bool((upper <= lower).any()):
                raise GeometryError("empty box in BoxArray (upper <= lower)")
            if bool((level < 0).any()):
                raise GeometryError("negative refinement level in BoxArray")
        for col in (lower, upper, level):
            col.setflags(write=False)
        self.lower = lower
        self.upper = upper
        self.level = level
        self._num_cells: np.ndarray | None = None
        self._cells_by_level: dict[int, int] | None = None

    # -- constructors -------------------------------------------------------
    @classmethod
    def empty(cls, ndim: int = 1) -> "BoxArray":
        return cls(
            np.zeros((0, ndim), dtype=np.int64),
            np.zeros((0, ndim), dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )

    @classmethod
    def from_boxes(cls, boxes: Iterable[Box]) -> "BoxArray":
        seq = boxes if isinstance(boxes, (list, tuple)) else list(boxes)
        if not seq:
            return cls.empty()
        lower = np.array([b.lower for b in seq], dtype=np.int64)
        upper = np.array([b.upper for b in seq], dtype=np.int64)
        level = np.array([b.level for b in seq], dtype=np.int64)
        return cls(lower, upper, level)

    @staticmethod
    def concatenate(arrays: Sequence["BoxArray"]) -> "BoxArray":
        """Row-wise concatenation (empty operands are skipped)."""
        parts = [a for a in arrays if len(a)]
        if not parts:
            return BoxArray.empty(arrays[0].ndim if arrays else 1)
        if len(parts) == 1:
            return parts[0]
        return BoxArray(
            np.concatenate([a.lower for a in parts]),
            np.concatenate([a.upper for a in parts]),
            np.concatenate([a.level for a in parts]),
        )

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return self.lower.shape[0]

    @property
    def ndim(self) -> int:
        """Spatial dimensionality of every box in the array."""
        return self.lower.shape[1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoxArray({len(self)} boxes, ndim={self.ndim})"

    # -- object views -------------------------------------------------------
    def box(self, i: int) -> Box:
        """Materialize row ``i`` as a :class:`Box` object."""
        i = int(i)
        return Box(
            tuple(self.lower[i].tolist()),
            tuple(self.upper[i].tolist()),
            int(self.level[i]),
        )

    def row(self, i: int) -> tuple[tuple[int, ...], tuple[int, ...], int]:
        """Row ``i`` as plain ``(lower, upper, level)`` Python tuples.

        The object-free currency of the columnar splitters: cheaper than
        :meth:`box` (no dataclass validation) and hashable for work memos.
        """
        i = int(i)
        return (
            tuple(self.lower[i].tolist()),
            tuple(self.upper[i].tolist()),
            int(self.level[i]),
        )

    def to_boxes(self) -> tuple[Box, ...]:
        """Materialize every row as a :class:`Box` (the object view)."""
        los = self.lower.tolist()
        ups = self.upper.tolist()
        lvls = self.level.tolist()
        return tuple(
            Box(tuple(lo), tuple(up), lv)
            for lo, up, lv in zip(los, ups, lvls)
        )

    # -- selection ----------------------------------------------------------
    def take(self, indices: np.ndarray) -> "BoxArray":
        """Rows selected/reordered by positional ``indices``."""
        idx = np.asarray(indices, dtype=np.intp)
        return BoxArray(self.lower[idx], self.upper[idx], self.level[idx])

    def level_indices(self, level: int) -> np.ndarray:
        """Positional indices of the rows on one refinement level."""
        return np.flatnonzero(self.level == level)

    def at_level(self, level: int) -> "BoxArray":
        """Sub-array of boxes on one refinement level."""
        return self.take(self.level_indices(level))

    # -- measures -----------------------------------------------------------
    def num_cells(self) -> np.ndarray:
        """Per-box cell count as an ``(n,)`` int64 array (memoized).

        The columns are frozen, so the counts are cached on first use --
        a repartition touches them several times (work vector, cover
        validation, load accounting) and repeated repartitions of an
        unchanged hierarchy skip the pass entirely.
        """
        if self._num_cells is not None:
            return self._num_cells
        if not len(self):
            out = np.zeros(0, dtype=np.int64)
        else:
            out = self.upper[:, 0] - self.lower[:, 0]
            for d in range(1, self.ndim):
                out = out * (self.upper[:, d] - self.lower[:, d])
        out.setflags(write=False)
        self._num_cells = out
        return out

    def total_cells(self) -> int:
        return int(self.num_cells().sum())

    def unique_levels(self) -> np.ndarray:
        return np.unique(self.level)

    def cells_by_level(self) -> dict[int, int]:
        """Total cell count per refinement level, in one vectorized pass."""
        if self._cells_by_level is not None:
            return dict(self._cells_by_level)
        if not len(self):
            return {}
        cells = self.num_cells()
        present = np.bincount(self.level)
        totals = np.bincount(self.level, weights=cells)
        if totals.max(initial=0.0) < 2.0**53:
            # float64 bincount sums are exact below 2**53 cells.
            by_level = {
                int(lvl): int(totals[lvl])
                for lvl in np.flatnonzero(present)
            }
        else:
            uniq, inverse = np.unique(self.level, return_inverse=True)
            exact = np.zeros(len(uniq), dtype=np.int64)
            np.add.at(exact, inverse, cells)
            by_level = {
                int(lvl): int(tot) for lvl, tot in zip(uniq, exact)
            }
        self._cells_by_level = by_level
        return dict(by_level)

    # -- deterministic orderings -------------------------------------------
    def corner_lexsort(self, primary: np.ndarray | None = None) -> np.ndarray:
        """Stable sort indices by ``(primary, level, lower...)``.

        The columnar equivalent of ``sorted(range(n), key=lambda i:
        (primary[i], *boxes[i].corner_key()))`` -- ``np.lexsort`` is stable
        exactly like ``sorted``, so orders (and therefore downstream
        assignments) are identical to the object path.  With ``primary``
        omitted this is the canonical ``(level, lower)`` ordering.
        """
        keys = [self.lower[:, d] for d in range(self.ndim - 1, -1, -1)]
        keys.append(self.level)
        if primary is not None:
            keys.append(np.asarray(primary))
        return np.lexsort(keys)

    # -- overlap testing ----------------------------------------------------
    def is_disjoint(self) -> bool:
        """True when no two same-level boxes overlap.

        Small per-level groups use one broadcast comparison; larger ones a
        vectorized grid hash -- bin every box by its lower corner with a
        bin pitch of the level's maximum extent per axis, so two boxes can
        only overlap if their bins are identical or axis-adjacent.
        Candidate pairs then come from ``3**ndim / 2`` bucket joins, each
        a pair of ``searchsorted`` calls over the bin-sorted keys, and the
        survivors get one exact broadcast test (chunked to bound memory).
        Unlike a single-axis sweep this does not degenerate on
        grid-aligned patchworks where thousands of boxes share one column
        of the sweep axis.  Every partition validates its output through
        here, so this must stay cheap at millions of boxes; the columns
        are built once per :class:`BoxList` and reused across calls.
        """
        if len(self) < 2:
            return True
        for lvl in np.flatnonzero(np.bincount(self.level)):
            idx = np.flatnonzero(self.level == lvl)
            n = idx.size
            if n < 2:
                continue
            lowers = self.lower[idx]
            uppers = self.upper[idx]
            if n <= 32:
                # All i<j pairs in one broadcast.
                hit = (
                    (lowers[:, None, :] < uppers[None, :, :])
                    & (lowers[None, :, :] < uppers[:, None, :])
                ).all(axis=2)
                iu = np.triu_indices(n, k=1)
                if bool(hit[iu].any()):
                    return False
                continue
            pitch = (uppers - lowers).max(axis=0)
            cell = lowers // pitch
            cell = cell - cell.min(axis=0)
            dims = cell.max(axis=0) + 2
            strides = np.ones(self.ndim, dtype=np.int64)
            for d in range(self.ndim - 2, -1, -1):
                strides[d] = strides[d + 1] * dims[d + 1]
            key = cell[:, 0] * int(strides[0])
            for d in range(1, self.ndim):
                key += cell[:, d] * int(strides[d])
            order = np.argsort(key, kind="stable")
            lo = lowers[order]
            up = uppers[order]
            skey = key[order]
            scell = cell[order]
            pos = np.arange(n)
            # Same-bin pairs: every j > i inside the bucket.  Bucket ends
            # come from the sorted keys' run-length structure (O(n), no
            # binary searches).
            change = skey[1:] != skey[:-1]
            run_ends = np.append(np.flatnonzero(change) + 1, n)
            right = run_ends[np.cumsum(np.concatenate(([0], change)))]
            if self._pairs_overlap(lo, up, pos, pos + 1, right - pos - 1):
                return False
            # Adjacent-bin pairs: enumerate only lexicographically
            # positive offsets so each unordered pair joins exactly once.
            # Row-major keys make an offset a constant key delta; only
            # offsets with a -1 component need a validity mask (bin
            # coordinate 0 has no neighbor below, while +1 always stays
            # in range because ``dims`` leaves headroom).
            for off in itertools.product((-1, 0, 1), repeat=self.ndim):
                if off <= (0,) * self.ndim:
                    continue
                neg = [d for d, o in enumerate(off) if o < 0]
                delta = int(np.dot(off, strides))
                if neg:
                    mask = scell[:, neg[0]] >= 1
                    for d in neg[1:]:
                        mask &= scell[:, d] >= 1
                    valid = np.flatnonzero(mask)
                    if not valid.size:
                        continue
                    tkey = skey[valid] + delta
                else:
                    valid = pos
                    tkey = skey + delta
                left = np.searchsorted(skey, tkey, side="left")
                # A hit bin's size comes from the run-length structure:
                # ``right[left]`` is the end of the run starting at
                # ``left`` when the key actually matches (no second
                # binary search needed).
                safe = np.minimum(left, n - 1)
                cnt = np.where(
                    (left < n) & (skey[safe] == tkey),
                    right[safe] - left,
                    0,
                )
                if self._pairs_overlap(lo, up, valid, left, cnt):
                    return False
        return True

    @staticmethod
    def _pairs_overlap(
        lo: np.ndarray,
        up: np.ndarray,
        src: np.ndarray,
        starts: np.ndarray,
        counts: np.ndarray,
        chunk: int = 1 << 20,
    ) -> bool:
        """True if any candidate pair of boxes overlaps in every axis.

        Source box ``src[k]`` is paired with the ``counts[k]`` rows
        beginning at ``starts[k]``; the pair expansion is chunked so the
        broadcast test never materializes more than ``chunk`` rows.
        """
        m = counts.size
        bounds = np.concatenate(([0], np.cumsum(counts)))
        if not int(bounds[-1]):
            return False
        i0 = 0
        while i0 < m:
            i1 = min(
                max(int(np.searchsorted(bounds, bounds[i0] + chunk)), i0 + 1),
                m,
            )
            c = counts[i0:i1]
            tot = int(c.sum())
            if tot:
                reps = np.repeat(np.arange(i0, i1), c)
                offsets = np.concatenate(([0], np.cumsum(c)[:-1]))
                ii = src[reps]
                jj = (
                    np.arange(tot)
                    - np.repeat(offsets, c)
                    + starts[reps]
                )
                # Filter axis by axis on 1-D column gathers, compressing
                # to survivors each round -- most candidates die on the
                # first axis, so the later gathers touch almost nothing.
                for d in range(lo.shape[1]):
                    keep = (lo[ii, d] < up[jj, d]) & (lo[jj, d] < up[ii, d])
                    ii = ii[keep]
                    jj = jj[keep]
                    if not ii.size:
                        break
                if ii.size:
                    return True
            i0 = i1
        return False


class BoxList:
    """An ordered, immutable-ish collection of boxes (possibly mixed-level).

    This is the unit the GrACE runtime hands to a partitioner at every
    regrid: the flattened bounding-box list of the whole grid hierarchy.

    A ``BoxList`` is backed by either per-box :class:`Box` objects, a
    columnar :class:`BoxArray`, or both.  Lists built from objects expose
    their column view through :attr:`array` (computed once, cached);
    lists built from columns (:meth:`from_array`) defer materializing
    Box objects until something actually iterates them.  Hot bulk paths
    (cell accounting, level slicing, overlap sweeps, deterministic sorts)
    run on the columns either way.
    """

    __slots__ = ("_boxes", "_array")

    def __init__(self, boxes: Iterable[Box] = ()):
        self._array: BoxArray | None = None
        self._boxes: tuple[Box, ...] | None = tuple(boxes)
        for b in self._boxes:
            if not isinstance(b, Box):
                raise GeometryError(f"BoxList items must be Box, got {type(b)!r}")
        if self._boxes:
            ndim = self._boxes[0].ndim
            for b in self._boxes:
                if b.ndim != ndim:
                    raise GeometryError("mixed dimensionality in BoxList")

    @classmethod
    def from_array(cls, array: BoxArray) -> "BoxList":
        """A list backed purely by columns; Box objects materialize lazily."""
        if not isinstance(array, BoxArray):
            raise GeometryError(
                f"from_array expects a BoxArray, got {type(array)!r}"
            )
        self = object.__new__(cls)
        self._boxes = None
        self._array = array
        return self

    # -- representation management -----------------------------------------
    @property
    def array(self) -> BoxArray:
        """The columnar view (built once from the objects, then cached)."""
        if self._array is None:
            self._array = BoxArray.from_boxes(self._boxes)
        return self._array

    @property
    def is_materialized(self) -> bool:
        """True when per-box objects exist (False for pure-columnar lists)."""
        return self._boxes is not None

    def _tuple(self) -> tuple[Box, ...]:
        if self._boxes is None:
            self._boxes = self._array.to_boxes()
        return self._boxes

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        if self._boxes is not None:
            return len(self._boxes)
        return len(self._array)

    def __iter__(self) -> Iterator[Box]:
        return iter(self._tuple())

    def __getitem__(self, i):
        if isinstance(i, slice):
            if self._boxes is not None:
                return BoxList(self._boxes[i])
            n = len(self._array)
            return BoxList.from_array(self._array.take(np.arange(n)[i]))
        if self._boxes is not None:
            return self._boxes[i]
        return self._array.box(i)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoxList):
            return NotImplemented
        if self._boxes is None and other._boxes is None:
            a, b = self._array, other._array
            return (
                a.lower.shape == b.lower.shape
                and bool(np.array_equal(a.lower, b.lower))
                and bool(np.array_equal(a.upper, b.upper))
                and bool(np.array_equal(a.level, b.level))
            )
        return self._tuple() == other._tuple()

    def __hash__(self) -> int:
        return hash(self._tuple())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoxList({len(self)} boxes, {self.total_cells} cells)"

    # -- measures -----------------------------------------------------------
    @property
    def total_cells(self) -> int:
        """Sum of cell counts over all boxes."""
        return self.array.total_cells()

    @property
    def levels(self) -> tuple[int, ...]:
        """Sorted distinct refinement levels present."""
        return tuple(int(lvl) for lvl in self.array.unique_levels())

    def cells_by_level(self) -> dict[int, int]:
        """Total cell count per refinement level, in one vectorized pass.

        Replaces ``at_level(lvl).total_cells`` loops on hot validation
        paths (one array build instead of per-box Python arithmetic per
        level).
        """
        return self.array.cells_by_level()

    def at_level(self, level: int) -> "BoxList":
        """Sub-list of boxes on one refinement level."""
        if self._boxes is not None:
            return BoxList(b for b in self._boxes if b.level == level)
        return BoxList.from_array(self._array.at_level(level))

    # -- transformations ----------------------------------------------------
    def take(self, indices) -> "BoxList":
        """Sub-list selected/reordered by positional ``indices``.

        Preserves the backing representation: a materialized list yields
        the same Box objects; a columnar list stays columnar.
        """
        idx = np.asarray(indices, dtype=np.intp)
        if self._boxes is not None:
            boxes = self._boxes
            out = BoxList(boxes[int(i)] for i in idx)
            if self._array is not None:
                out._array = self._array.take(idx)
            return out
        return BoxList.from_array(self._array.take(idx))

    def append(self, box: Box) -> "BoxList":
        return BoxList((*self._tuple(), box))

    def extend(self, boxes: Iterable[Box]) -> "BoxList":
        if (
            self._boxes is None
            and isinstance(boxes, BoxList)
            and boxes._boxes is None
        ):
            return BoxList.from_array(
                BoxArray.concatenate([self._array, boxes._array])
            )
        return BoxList((*self._tuple(), *boxes))

    def sorted_by_cells(self, reverse: bool = False) -> "BoxList":
        """Stable sort by cell count (the paper sorts boxes ascending)."""
        if self._boxes is not None:
            return BoxList(
                sorted(self._boxes, key=lambda b: (b.num_cells, b.corner_key()),
                       reverse=reverse)
            )
        arr = self._array
        keys = [arr.lower[:, d] for d in range(arr.ndim - 1, -1, -1)]
        keys.append(arr.level)
        keys.append(arr.num_cells())
        if reverse:
            # Negating every key column reverses the tuple comparison while
            # lexsort's stability keeps equal keys in original order --
            # exactly ``sorted(..., reverse=True)``.
            keys = [-k for k in keys]
        return self.take(np.lexsort(keys))

    def sorted_canonical(self) -> "BoxList":
        """Deterministic (level, lower-corner) ordering."""
        if self._boxes is not None:
            return BoxList(sorted(self._boxes, key=Box.corner_key))
        return self.take(self._array.corner_lexsort())

    def is_disjoint(self) -> bool:
        """True when no two same-level boxes overlap.

        Delegates to the cached column view: the coordinate arrays the
        sweep-line needs are built once per list and reused across calls
        (validate_covers used to rebuild them on every partition).
        """
        return self.array.is_disjoint()

    def bounding_box(self) -> Box:
        """Smallest single box covering every member (single-level lists only)."""
        boxes = self._tuple()
        if not boxes:
            raise GeometryError("bounding_box of an empty BoxList")
        out = boxes[0]
        for b in boxes[1:]:
            out = out.bounding_union(b)
        return out
