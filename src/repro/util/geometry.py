"""Rectilinear index-space geometry: :class:`Box` and :class:`BoxList`.

GrACE maintains every component grid of the adaptive hierarchy as a *list of
bounding boxes*: a bounding box is a rectilinear region of the computational
domain defined by a lower bound, an upper bound and a refinement level (the
level fixes the stride of the box's cells relative to the base grid).  The
partitioners in :mod:`repro.partition` operate purely on these box lists, so
this module is the common currency of the whole system.

Conventions
-----------
- Coordinates are integer cell indices **in the box's own level index space**.
- ``lower`` is inclusive, ``upper`` is exclusive (NumPy slice convention), so
  ``shape[d] == upper[d] - lower[d]``.
- Boxes are immutable; every operation returns a new :class:`Box`.
- ``level`` 0 is the coarsest (base) grid.  Refining by ``factor`` multiplies
  coordinates by ``factor`` and increments ``level``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.util.errors import GeometryError

__all__ = ["Box", "BoxList"]


def _as_int_tuple(values: Sequence[int], what: str) -> tuple[int, ...]:
    """Coerce a coordinate sequence to a tuple of Python ints.

    Accepts any integer-like sequence (lists, NumPy arrays).  Raises
    :class:`GeometryError` for non-integral values so silent float
    truncation can never corrupt box arithmetic.
    """
    out = []
    for v in values:
        iv = int(v)
        if iv != v:
            raise GeometryError(f"{what} coordinate {v!r} is not integral")
        out.append(iv)
    return tuple(out)


@dataclass(frozen=True, slots=True)
class Box:
    """An axis-aligned rectilinear region of a refinement level's index space.

    Parameters
    ----------
    lower:
        Inclusive lower corner, one integer per dimension.
    upper:
        Exclusive upper corner; must dominate ``lower`` strictly in every
        dimension (empty boxes are illegal -- use :class:`BoxList` emptiness
        instead).
    level:
        Refinement level the coordinates live on; level 0 is the base grid.

    Examples
    --------
    >>> b = Box((0, 0), (8, 4))
    >>> b.shape
    (8, 4)
    >>> b.num_cells
    32
    >>> left, right = b.split(axis=0, position=3)
    >>> left.shape, right.shape
    ((3, 4), (5, 4))
    """

    lower: tuple[int, ...]
    upper: tuple[int, ...]
    level: int = 0

    def __post_init__(self) -> None:
        lo = _as_int_tuple(self.lower, "lower")
        up = _as_int_tuple(self.upper, "upper")
        object.__setattr__(self, "lower", lo)
        object.__setattr__(self, "upper", up)
        if len(lo) != len(up):
            raise GeometryError(
                f"dimensionality mismatch: lower has {len(lo)} dims, "
                f"upper has {len(up)}"
            )
        if len(lo) == 0:
            raise GeometryError("zero-dimensional boxes are not supported")
        if int(self.level) < 0:
            raise GeometryError(f"negative refinement level {self.level}")
        object.__setattr__(self, "level", int(self.level))
        for d, (a, b) in enumerate(zip(lo, up)):
            if b <= a:
                raise GeometryError(
                    f"empty box along axis {d}: lower={a}, upper={b}"
                )

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of spatial dimensions."""
        return len(self.lower)

    @property
    def shape(self) -> tuple[int, ...]:
        """Extent (number of cells) along each axis."""
        return tuple(u - l for l, u in zip(self.lower, self.upper))

    @property
    def num_cells(self) -> int:
        """Total number of cells in the box."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def longest_axis(self) -> int:
        """Index of the axis with the largest extent (ties -> lowest axis)."""
        shp = self.shape
        return int(np.argmax(shp))

    @property
    def shortest_side(self) -> int:
        """Smallest extent over all axes."""
        return min(self.shape)

    @property
    def longest_side(self) -> int:
        """Largest extent over all axes."""
        return max(self.shape)

    @property
    def aspect_ratio(self) -> float:
        """Ratio of the longest side to the shortest side (>= 1.0).

        The paper's box-splitting constraint keeps this ratio low by always
        cutting along the longest dimension.
        """
        return self.longest_side / self.shortest_side

    def __contains__(self, point: Sequence[int]) -> bool:
        if len(point) != self.ndim:
            return False
        return all(l <= p < u for p, l, u in zip(point, self.lower, self.upper))

    # ------------------------------------------------------------------
    # Set-like operations
    # ------------------------------------------------------------------
    def intersects(self, other: "Box") -> bool:
        """True if the two boxes share at least one cell (same level only)."""
        self._check_compatible(other)
        return all(
            a_lo < b_up and b_lo < a_up
            for a_lo, a_up, b_lo, b_up in zip(
                self.lower, self.upper, other.lower, other.upper
            )
        )

    def intersection(self, other: "Box") -> "Box | None":
        """The overlapping region, or ``None`` when disjoint."""
        self._check_compatible(other)
        lo = tuple(max(a, b) for a, b in zip(self.lower, other.lower))
        up = tuple(min(a, b) for a, b in zip(self.upper, other.upper))
        if any(u <= l for l, u in zip(lo, up)):
            return None
        return Box(lo, up, self.level)

    def contains_box(self, other: "Box") -> bool:
        """True if ``other`` lies entirely inside this box."""
        self._check_compatible(other)
        return all(
            s_lo <= o_lo and o_up <= s_up
            for s_lo, s_up, o_lo, o_up in zip(
                self.lower, self.upper, other.lower, other.upper
            )
        )

    def bounding_union(self, other: "Box") -> "Box":
        """Smallest box containing both operands (not a set union)."""
        self._check_compatible(other)
        lo = tuple(min(a, b) for a, b in zip(self.lower, other.lower))
        up = tuple(max(a, b) for a, b in zip(self.upper, other.upper))
        return Box(lo, up, self.level)

    def difference(self, other: "Box") -> "BoxList":
        """Cells of this box not covered by ``other``, as disjoint boxes.

        Uses axis-by-axis slab decomposition, producing at most ``2 * ndim``
        pieces.  Returns the whole box when the operands are disjoint.
        """
        inter = self.intersection(other)
        if inter is None:
            return BoxList([self])
        pieces: list[Box] = []
        lo = list(self.lower)
        up = list(self.upper)
        for d in range(self.ndim):
            if lo[d] < inter.lower[d]:
                p_lo, p_up = list(lo), list(up)
                p_up[d] = inter.lower[d]
                pieces.append(Box(tuple(p_lo), tuple(p_up), self.level))
            if inter.upper[d] < up[d]:
                p_lo, p_up = list(lo), list(up)
                p_lo[d] = inter.upper[d]
                pieces.append(Box(tuple(p_lo), tuple(p_up), self.level))
            lo[d] = inter.lower[d]
            up[d] = inter.upper[d]
        return BoxList(pieces)

    def _check_compatible(self, other: "Box") -> None:
        if self.ndim != other.ndim:
            raise GeometryError(
                f"dimensionality mismatch: {self.ndim} vs {other.ndim}"
            )
        if self.level != other.level:
            raise GeometryError(
                f"level mismatch: {self.level} vs {other.level}; refine or "
                "coarsen one operand first"
            )

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------
    def split(self, axis: int, position: int) -> tuple["Box", "Box"]:
        """Cut the box into two along ``axis`` at level coordinate ``position``.

        ``position`` must fall strictly inside the box's extent along the
        axis so both halves are non-empty.
        """
        if not 0 <= axis < self.ndim:
            raise GeometryError(f"axis {axis} out of range for {self.ndim}-D box")
        if not self.lower[axis] < position < self.upper[axis]:
            raise GeometryError(
                f"split position {position} outside open interval "
                f"({self.lower[axis]}, {self.upper[axis]}) on axis {axis}"
            )
        up_a = list(self.upper)
        up_a[axis] = position
        lo_b = list(self.lower)
        lo_b[axis] = position
        return (
            Box(self.lower, tuple(up_a), self.level),
            Box(tuple(lo_b), self.upper, self.level),
        )

    def halve(self, axis: int | None = None) -> tuple["Box", "Box"]:
        """Split into two (near-)equal halves, by default along the longest axis."""
        if axis is None:
            axis = self.longest_axis
        if self.shape[axis] < 2:
            raise GeometryError(
                f"cannot halve axis {axis} of extent {self.shape[axis]}"
            )
        mid = self.lower[axis] + self.shape[axis] // 2
        return self.split(axis, mid)

    # ------------------------------------------------------------------
    # Level changes and ghosting
    # ------------------------------------------------------------------
    def refine(self, factor: int = 2) -> "Box":
        """The same physical region expressed one level finer."""
        if factor < 2:
            raise GeometryError(f"refinement factor must be >= 2, got {factor}")
        return Box(
            tuple(l * factor for l in self.lower),
            tuple(u * factor for u in self.upper),
            self.level + 1,
        )

    def coarsen(self, factor: int = 2) -> "Box":
        """The covering region one level coarser (rounds outward)."""
        if factor < 2:
            raise GeometryError(f"coarsening factor must be >= 2, got {factor}")
        if self.level == 0:
            raise GeometryError("cannot coarsen below level 0")
        lo = tuple(l // factor for l in self.lower)
        up = tuple(-(-u // factor) for u in self.upper)  # ceil division
        return Box(lo, up, self.level - 1)

    def grow(self, width: int) -> "Box":
        """Expand (or shrink, for negative ``width``) by ``width`` cells per side."""
        lo = tuple(l - width for l in self.lower)
        up = tuple(u + width for u in self.upper)
        if any(u <= l for l, u in zip(lo, up)):
            raise GeometryError(f"grow({width}) would empty box {self}")
        return Box(lo, up, self.level)

    def clip(self, domain: "Box") -> "Box | None":
        """Intersection with ``domain`` (alias with intent: keep in-bounds)."""
        return self.intersection(domain)

    def translate(self, offset: Sequence[int]) -> "Box":
        """Shift the box by ``offset`` cells along each axis."""
        off = _as_int_tuple(offset, "offset")
        if len(off) != self.ndim:
            raise GeometryError("offset dimensionality mismatch")
        return Box(
            tuple(l + o for l, o in zip(self.lower, off)),
            tuple(u + o for u, o in zip(self.upper, off)),
            self.level,
        )

    # ------------------------------------------------------------------
    # Conversions / iteration
    # ------------------------------------------------------------------
    def slices(self, origin: Sequence[int] | None = None) -> tuple[slice, ...]:
        """NumPy slices addressing this box within an array whose index 0
        corresponds to level coordinate ``origin`` (default: the box's own
        lower corner, i.e. slices over the box-local array)."""
        if origin is None:
            origin = self.lower
        org = _as_int_tuple(origin, "origin")
        return tuple(
            slice(l - o, u - o) for l, u, o in zip(self.lower, self.upper, org)
        )

    def cell_centers(self) -> Iterator[tuple[int, ...]]:
        """Iterate all integer cell coordinates in the box (row-major)."""
        return itertools.product(
            *(range(l, u) for l, u in zip(self.lower, self.upper))
        )

    def corner_key(self) -> tuple[int, ...]:
        """Sort key: (level, lower...) -- deterministic box ordering."""
        return (self.level, *self.lower)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box(L{self.level} {self.lower}->{self.upper})"


class BoxList:
    """An ordered, immutable-ish collection of boxes (possibly mixed-level).

    This is the unit the GrACE runtime hands to a partitioner at every
    regrid: the flattened bounding-box list of the whole grid hierarchy.
    """

    __slots__ = ("_boxes",)

    def __init__(self, boxes: Iterable[Box] = ()):
        self._boxes: tuple[Box, ...] = tuple(boxes)
        for b in self._boxes:
            if not isinstance(b, Box):
                raise GeometryError(f"BoxList items must be Box, got {type(b)!r}")
        if self._boxes:
            ndim = self._boxes[0].ndim
            for b in self._boxes:
                if b.ndim != ndim:
                    raise GeometryError("mixed dimensionality in BoxList")

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._boxes)

    def __iter__(self) -> Iterator[Box]:
        return iter(self._boxes)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return BoxList(self._boxes[i])
        return self._boxes[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoxList):
            return NotImplemented
        return self._boxes == other._boxes

    def __hash__(self) -> int:
        return hash(self._boxes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoxList({len(self._boxes)} boxes, {self.total_cells} cells)"

    # -- measures -----------------------------------------------------------
    @property
    def total_cells(self) -> int:
        """Sum of cell counts over all boxes."""
        return sum(b.num_cells for b in self._boxes)

    @property
    def levels(self) -> tuple[int, ...]:
        """Sorted distinct refinement levels present."""
        return tuple(sorted({b.level for b in self._boxes}))

    def cells_by_level(self) -> dict[int, int]:
        """Total cell count per refinement level, in one vectorized pass.

        Replaces ``at_level(lvl).total_cells`` loops on hot validation
        paths (one array build instead of per-box Python arithmetic per
        level).
        """
        if not self._boxes:
            return {}
        lowers = np.array([b.lower for b in self._boxes], dtype=np.int64)
        uppers = np.array([b.upper for b in self._boxes], dtype=np.int64)
        levels = np.array([b.level for b in self._boxes], dtype=np.int64)
        cells = np.prod(uppers - lowers, axis=1)
        uniq, inverse = np.unique(levels, return_inverse=True)
        totals = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(totals, inverse, cells)
        return {int(lvl): int(tot) for lvl, tot in zip(uniq, totals)}

    def at_level(self, level: int) -> "BoxList":
        """Sub-list of boxes on one refinement level."""
        return BoxList(b for b in self._boxes if b.level == level)

    # -- transformations ----------------------------------------------------
    def append(self, box: Box) -> "BoxList":
        return BoxList((*self._boxes, box))

    def extend(self, boxes: Iterable[Box]) -> "BoxList":
        return BoxList((*self._boxes, *boxes))

    def sorted_by_cells(self, reverse: bool = False) -> "BoxList":
        """Stable sort by cell count (the paper sorts boxes ascending)."""
        return BoxList(
            sorted(self._boxes, key=lambda b: (b.num_cells, b.corner_key()),
                   reverse=reverse)
        )

    def sorted_canonical(self) -> "BoxList":
        """Deterministic (level, lower-corner) ordering."""
        return BoxList(sorted(self._boxes, key=Box.corner_key))

    def is_disjoint(self) -> bool:
        """True when no two same-level boxes overlap.

        Small per-level lists use the plain pairwise check (early exit,
        no array setup); larger ones a vectorized sweep along axis 0 --
        sort by lower corner, prune candidate pairs to those whose
        axis-0 intervals overlap, and test the survivors with one
        broadcast comparison (chunked to bound memory).  Every partition
        validates its output through here, so this must stay cheap at
        thousands of boxes.
        """
        by_level: dict[int, list[Box]] = {}
        for b in self._boxes:
            by_level.setdefault(b.level, []).append(b)
        for boxes in by_level.values():
            n = len(boxes)
            if n < 2:
                continue
            if n <= 32:
                for i, a in enumerate(boxes):
                    for b in boxes[i + 1:]:
                        if a.intersects(b):
                            return False
                continue
            lowers = np.array([b.lower for b in boxes], dtype=np.int64)
            uppers = np.array([b.upper for b in boxes], dtype=np.int64)
            order = np.argsort(lowers[:, 0], kind="stable")
            lo = lowers[order]
            up = uppers[order]
            # Candidates for row i: the j > i whose axis-0 interval starts
            # before i's ends (sorted starts make this a binary search).
            ends = np.searchsorted(lo[:, 0], up[:, 0], side="left")
            starts = np.arange(n) + 1
            counts = np.maximum(ends - starts, 0)
            bounds = np.concatenate(([0], np.cumsum(counts)))
            total = int(bounds[-1])
            if total == 0:
                continue
            chunk = 1 << 20
            i0 = 0
            while i0 < n:
                i1 = min(
                    max(
                        int(np.searchsorted(bounds, bounds[i0] + chunk)),
                        i0 + 1,
                    ),
                    n,
                )
                c = counts[i0:i1]
                tot = int(c.sum())
                if tot:
                    ii = np.repeat(np.arange(i0, i1), c)
                    offsets = np.concatenate(([0], np.cumsum(c)[:-1]))
                    jj = (
                        np.arange(tot)
                        - np.repeat(offsets, c)
                        + np.repeat(starts[i0:i1], c)
                    )
                    hit = (lo[ii] < up[jj]) & (lo[jj] < up[ii])
                    if hit.all(axis=1).any():
                        return False
                i0 = i1
        return True

    def bounding_box(self) -> Box:
        """Smallest single box covering every member (single-level lists only)."""
        if not self._boxes:
            raise GeometryError("bounding_box of an empty BoxList")
        out = self._boxes[0]
        for b in self._boxes[1:]:
            out = out.bounding_union(b)
        return out
