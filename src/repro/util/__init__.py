"""Foundation utilities shared by every subsystem.

This package holds the building blocks that the SAMR substrate, the HDDA,
the cluster simulator and the partitioners are all expressed in terms of:

- :mod:`repro.util.geometry` -- rectilinear index-space boxes (the unit of
  partitioning in GrACE: every component grid is maintained as a list of
  bounding boxes).
- :mod:`repro.util.sfc` -- space-filling curves (Morton and Hilbert) used by
  the HDDA hierarchical index space and the default SFC partitioner.
- :mod:`repro.util.hashing` -- extendible hashing (Fagin et al.), the
  storage/access mechanism of the HDDA.
- :mod:`repro.util.errors` -- exception hierarchy.
- :mod:`repro.util.config` -- small frozen configuration records.
- :mod:`repro.util.rng` -- deterministic seeding helpers.
"""

from repro.util.errors import (
    ReproError,
    GeometryError,
    PartitionError,
    SimulationError,
    MonitorError,
    HDDAError,
)
from repro.util.geometry import Box, BoxList

__all__ = [
    "ReproError",
    "GeometryError",
    "PartitionError",
    "SimulationError",
    "MonitorError",
    "HDDAError",
    "Box",
    "BoxList",
]
