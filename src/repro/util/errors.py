"""Exception hierarchy for the reproduction library.

All library errors derive from :class:`ReproError` so callers can catch one
base class at API boundaries while subsystems raise precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GeometryError(ReproError):
    """Invalid box geometry: empty extents, mismatched dimensionality,
    non-positive strides, or an illegal split request."""


class PartitionError(ReproError):
    """A partitioner could not produce a valid distribution, e.g. zero total
    capacity, no processors, or constraints that cannot be satisfied."""


class SimulationError(ReproError):
    """Cluster simulator misuse: time moving backwards, unknown node ids,
    events scheduled in the past."""


class MonitorError(ReproError):
    """Resource-monitor failures: probing an unknown node, a dead sensor,
    or an empty measurement history where a forecast was requested."""


class HDDAError(ReproError):
    """Hierarchical Distributed Dynamic Array errors: out-of-range index,
    unregistered level, or ownership-map inconsistencies."""


class KernelError(ReproError):
    """Application-kernel errors: invalid mesh shapes, unstable time steps,
    or non-physical states (negative density/pressure)."""


class ExperimentError(ReproError):
    """Experiment-harness errors: unknown experiment id or invalid config."""


class TelemetryError(ReproError):
    """Telemetry misuse: a metric re-registered under a different kind, or
    an exporter asked to write an unfinished trace to an invalid target."""


class ResilienceError(ReproError):
    """Resilience-subsystem errors: a fault plan targeting unknown nodes,
    recovery attempted with no survivors, or an injector armed twice."""


class CheckpointError(ResilienceError):
    """Checkpoint/restart failures: checksum mismatch, unsupported format
    version, or a restore requested from an empty store."""


class CampaignError(ReproError):
    """Experiment-campaign errors: an empty or inconsistent grid spec, a
    directory already owned by a different campaign, or a result store
    queried for an unknown cell."""
