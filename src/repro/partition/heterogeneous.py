"""ACEHeterogeneous: the system-sensitive partitioner (paper section 5.3).

Algorithm, as described in the paper:

1. Obtain relative capacities ``C_k`` from the capacity calculator.
2. Compute the total work ``L`` of the bounding-box list and the per-rank
   targets ``L_k = C_k * L``.
3. Sort the box list by work *ascending* and the ranks by capacity
   *ascending*, "with the smallest box being assigned to the processor with
   the smallest relative capacity.  This eliminates unnecessary breaking of
   boxes."
4. Walk the ranks in capacity order, assigning boxes until the rank's
   target is met.  "If the work associated with an available bounding box
   exceeds the work the processor can perform, a box is broken into two in
   a way that the work associated with at least one of the two boxes
   created is less than or equal to the work the processor can perform",
   subject to the minimum-box-size and aspect-ratio constraints of
   :mod:`repro.partition.splitting`.

The residual imbalance this leaves (from unsplittable boxes) is the
"slight" imbalance the paper quantifies at up to ~40 %.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.partition.base import (
    Partitioner,
    PartitionResult,
    WorkFunction,
    WorkModel,
    as_work_model,
)
from repro.partition.splitting import (
    BoxRow,
    SplitConstraints,
    split_row_to_target,
)
from repro.util.geometry import BoxArray, BoxList

__all__ = ["ACEHeterogeneous"]


class ACEHeterogeneous(Partitioner):
    """Capacity-proportional box assignment with constrained splitting.

    Parameters
    ----------
    constraints:
        Box-splitting constraints (min size, snap, multi-axis flag).
    fill_tolerance:
        A rank accepts a whole box overshooting its remaining target by up
        to this fraction of the box's work before a split is attempted;
        small values split aggressively, large values avoid splits.
    """

    name = "ACEHeterogeneous"

    def __init__(
        self,
        constraints: SplitConstraints | None = None,
        fill_tolerance: float = 0.05,
    ):
        self.constraints = constraints or SplitConstraints()
        self.fill_tolerance = float(fill_tolerance)

    def partition(
        self,
        boxes: BoxList,
        capacities: Sequence[float],
        work_of: WorkFunction | WorkModel | None = None,
    ) -> PartitionResult:
        caps = self._check_inputs(boxes, capacities)
        model = as_work_model(work_of)
        works_vec = model.vector(boxes)
        works = works_vec.tolist()
        total = model.total(boxes)
        targets = caps * total
        result = PartitionResult(targets=targets, work_model=model)
        if len(boxes) == 0:
            return result

        arr = boxes.array

        # Work-ascending priority queue of (work, seq, payload); seq is a
        # tie-breaker keeping the order deterministic for equal-work boxes
        # (initial boxes tie-break by corner key, split remainders enter
        # after existing equal-work entries, exactly as the old sorted
        # list did).  A heap makes every pop/push O(log n) where the old
        # ``list.pop(0)`` + ``bisect.insort`` pair was O(n) each -- the
        # difference between quadratic and linearithmic assignment on the
        # extreme-scale box counts the roadmap targets.  The payload is a
        # row index into the columns (or, for split remainders, a plain
        # ``(lower, upper, level)`` row) -- never a Box object; the
        # ``(work, seq)`` prefix is unique, so payloads never compare.
        order = arr.corner_lexsort(primary=works_vec)
        queue: list[tuple[float, int, int | BoxRow]] = [
            (works[i], s, i) for s, i in enumerate(order.tolist())
        ]
        heapq.heapify(queue)  # already sorted; heapify is O(n) anyway
        seq = len(queue)

        # Assignment accumulates as source references: a base row index,
        # or a negative index into the split-row side list.  Columns are
        # gathered in two vectorized passes at the end.
        out_src: list[int] = []
        out_ranks: list[int] = []
        split_rows: list[BoxRow] = []

        def emit(payload: "int | BoxRow", rank: int) -> None:
            if type(payload) is int:
                out_src.append(payload)
            else:
                split_rows.append(payload)
                out_src.append(-len(split_rows))
            out_ranks.append(rank)

        rank_order = np.argsort(caps, kind="stable")
        for idx, rank in enumerate(rank_order):
            rank = int(rank)
            remaining = targets[rank]
            last_rank = idx == len(rank_order) - 1
            while queue:
                if last_rank:
                    # Everything left belongs to the biggest-capacity rank.
                    _, _, payload = heapq.heappop(queue)
                    emit(payload, rank)
                    continue
                w, _, payload = queue[0]
                if w <= remaining + self.fill_tolerance * w:
                    heapq.heappop(queue)
                    emit(payload, rank)
                    remaining -= w
                    continue
                if remaining <= 0:
                    break
                row = arr.row(payload) if type(payload) is int else payload
                split = split_row_to_target(
                    row, remaining, model, self.constraints
                )
                if split is None:
                    # Unsplittable: accept the imbalance on this rank only
                    # if nothing smaller is available, else move on.
                    break
                heapq.heappop(queue)
                piece, rest = split
                result.num_splits += len(rest)  # one cut per remainder box
                emit(piece, rank)
                remaining -= model.work_row(*piece)
                for r in rest:
                    heapq.heappush(queue, (model.work_row(*r), seq, r))
                    seq += 1
                if remaining <= 0:
                    break

        m = len(out_src)
        src = np.array(out_src, dtype=np.int64)
        ndim = arr.ndim
        lowers = np.empty((m, ndim), dtype=np.int64)
        uppers = np.empty((m, ndim), dtype=np.int64)
        levels = np.empty(m, dtype=np.int64)
        base_pos = np.flatnonzero(src >= 0)
        if base_pos.size:
            bidx = src[base_pos]
            lowers[base_pos] = arr.lower[bidx]
            uppers[base_pos] = arr.upper[bidx]
            levels[base_pos] = arr.level[bidx]
        extra_pos = np.flatnonzero(src < 0)
        if extra_pos.size:
            ex_lo = np.array([r[0] for r in split_rows], dtype=np.int64)
            ex_up = np.array([r[1] for r in split_rows], dtype=np.int64)
            ex_lv = np.array([r[2] for r in split_rows], dtype=np.int64)
            k = -src[extra_pos] - 1
            lowers[extra_pos] = ex_lo[k]
            uppers[extra_pos] = ex_up[k]
            levels[extra_pos] = ex_lv[k]
        result.set_columns(
            BoxList.from_array(BoxArray(lowers, uppers, levels)),
            np.array(out_ranks, dtype=np.intp),
        )
        result.validate_covers(boxes)
        return result
