"""ACEHeterogeneous: the system-sensitive partitioner (paper section 5.3).

Algorithm, as described in the paper:

1. Obtain relative capacities ``C_k`` from the capacity calculator.
2. Compute the total work ``L`` of the bounding-box list and the per-rank
   targets ``L_k = C_k * L``.
3. Sort the box list by work *ascending* and the ranks by capacity
   *ascending*, "with the smallest box being assigned to the processor with
   the smallest relative capacity.  This eliminates unnecessary breaking of
   boxes."
4. Walk the ranks in capacity order, assigning boxes until the rank's
   target is met.  "If the work associated with an available bounding box
   exceeds the work the processor can perform, a box is broken into two in
   a way that the work associated with at least one of the two boxes
   created is less than or equal to the work the processor can perform",
   subject to the minimum-box-size and aspect-ratio constraints of
   :mod:`repro.partition.splitting`.

The residual imbalance this leaves (from unsplittable boxes) is the
"slight" imbalance the paper quantifies at up to ~40 %.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.partition.base import (
    Partitioner,
    PartitionResult,
    WorkFunction,
    WorkModel,
    as_work_model,
)
from repro.partition.splitting import SplitConstraints, split_to_target
from repro.util.geometry import Box, BoxList

__all__ = ["ACEHeterogeneous"]


class ACEHeterogeneous(Partitioner):
    """Capacity-proportional box assignment with constrained splitting.

    Parameters
    ----------
    constraints:
        Box-splitting constraints (min size, snap, multi-axis flag).
    fill_tolerance:
        A rank accepts a whole box overshooting its remaining target by up
        to this fraction of the box's work before a split is attempted;
        small values split aggressively, large values avoid splits.
    """

    name = "ACEHeterogeneous"

    def __init__(
        self,
        constraints: SplitConstraints | None = None,
        fill_tolerance: float = 0.05,
    ):
        self.constraints = constraints or SplitConstraints()
        self.fill_tolerance = float(fill_tolerance)

    def partition(
        self,
        boxes: BoxList,
        capacities: Sequence[float],
        work_of: WorkFunction | WorkModel | None = None,
    ) -> PartitionResult:
        caps = self._check_inputs(boxes, capacities)
        model = as_work_model(work_of)
        works = model.vector(boxes).tolist()
        total = model.total(boxes)
        targets = caps * total
        result = PartitionResult(targets=targets, work_model=model)
        if len(boxes) == 0:
            return result

        # Work-ascending priority queue of (work, seq, box); seq is a
        # tie-breaker keeping the order deterministic for equal-work boxes
        # (initial boxes tie-break by corner key, split remainders enter
        # after existing equal-work entries, exactly as the old sorted
        # list did).  A heap makes every pop/push O(log n) where the old
        # ``list.pop(0)`` + ``bisect.insort`` pair was O(n) each -- the
        # difference between quadratic and linearithmic assignment on the
        # extreme-scale box counts the roadmap targets.
        queue: list[tuple[float, int, Box]] = []
        for seq, i in enumerate(
            sorted(
                range(len(boxes)),
                key=lambda j: (works[j], boxes[j].corner_key()),
            )
        ):
            queue.append((works[i], seq, boxes[i]))
        heapq.heapify(queue)  # already sorted; heapify is O(n) anyway
        seq = len(queue)

        rank_order = np.argsort(caps, kind="stable")
        for idx, rank in enumerate(rank_order):
            rank = int(rank)
            remaining = targets[rank]
            last_rank = idx == len(rank_order) - 1
            while queue:
                if last_rank:
                    # Everything left belongs to the biggest-capacity rank.
                    _, _, box = heapq.heappop(queue)
                    result.assignment.append((box, rank))
                    continue
                w, _, box = queue[0]
                if w <= remaining + self.fill_tolerance * w:
                    heapq.heappop(queue)
                    result.assignment.append((box, rank))
                    remaining -= w
                    continue
                if remaining <= 0:
                    break
                split = split_to_target(box, remaining, model, self.constraints)
                if split is None:
                    # Unsplittable: accept the imbalance on this rank only
                    # if nothing smaller is available, else move on.
                    break
                heapq.heappop(queue)
                piece, rest = split
                result.num_splits += len(rest)  # one cut per remainder box
                result.assignment.append((piece, rank))
                remaining -= model.work(piece)
                for r in rest:
                    heapq.heappush(queue, (model.work(r), seq, r))
                    seq += 1
                if remaining <= 0:
                    break
        result.validate_covers(boxes)
        return result
