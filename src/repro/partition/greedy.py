"""Capacity-weighted greedy LPT baseline (ablation partitioner).

Longest-Processing-Time list scheduling generalized to heterogeneous
targets: boxes are taken in *descending* work order and each is placed on
the rank whose load-to-capacity ratio would stay lowest.  No splitting is
performed, so granularity is whatever the regrid produced -- comparing this
against ACEHeterogeneous isolates the value of constrained box splitting.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.partition.base import (
    Partitioner,
    PartitionResult,
    WorkFunction,
    WorkModel,
    as_work_model,
)
from repro.util.geometry import BoxList

__all__ = ["GreedyLPT"]


class GreedyLPT(Partitioner):
    """Heterogeneity-aware LPT without box splitting."""

    name = "GreedyLPT"

    def partition(
        self,
        boxes: BoxList,
        capacities: Sequence[float],
        work_of: WorkFunction | WorkModel | None = None,
    ) -> PartitionResult:
        caps = self._check_inputs(boxes, capacities)
        model = as_work_model(work_of)
        works_vec = model.vector(boxes)
        total = model.total(boxes)
        targets = caps * total
        result = PartitionResult(targets=targets, work_model=model)
        num_ranks = len(caps)
        loads = np.zeros(num_ranks)
        # Guard capacities so a zero-capacity rank is only used when every
        # rank has zero capacity (which _check_inputs already excludes).
        safe_caps = np.where(caps > 0, caps, 1e-12)
        # Descending work, corner-key tie-break, over whole columns --
        # lexsort is stable like the object path's ``sorted``, so the
        # placement order (and every downstream float sum) is identical.
        order = boxes.array.corner_lexsort(primary=-works_vec)
        n = len(order)
        ranks = np.empty(n, dtype=np.intp)
        placed = works_vec[order].tolist()
        for pos, w in enumerate(placed):
            # First minimum of the load-to-capacity ratio: np.argmin picks
            # the same rank as ``min(range(num_ranks), key=...)``.
            r = int(np.argmin((loads + w) / safe_caps))
            ranks[pos] = r
            loads[r] += w
        result.set_columns(boxes.take(order), ranks)
        result.validate_covers(boxes)
        return result
