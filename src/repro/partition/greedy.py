"""Capacity-weighted greedy LPT baseline (ablation partitioner).

Longest-Processing-Time list scheduling generalized to heterogeneous
targets: boxes are taken in *descending* work order and each is placed on
the rank whose load-to-capacity ratio would stay lowest.  No splitting is
performed, so granularity is whatever the regrid produced -- comparing this
against ACEHeterogeneous isolates the value of constrained box splitting.
"""

from __future__ import annotations

from typing import Sequence

from repro.partition.base import (
    Partitioner,
    PartitionResult,
    WorkFunction,
    WorkModel,
    as_work_model,
)
from repro.util.geometry import BoxList

__all__ = ["GreedyLPT"]


class GreedyLPT(Partitioner):
    """Heterogeneity-aware LPT without box splitting."""

    name = "GreedyLPT"

    def partition(
        self,
        boxes: BoxList,
        capacities: Sequence[float],
        work_of: WorkFunction | WorkModel | None = None,
    ) -> PartitionResult:
        caps = self._check_inputs(boxes, capacities)
        model = as_work_model(work_of)
        works = model.vector(boxes).tolist()
        total = model.total(boxes)
        targets = caps * total
        result = PartitionResult(targets=targets, work_model=model)
        num_ranks = len(caps)
        loads = [0.0] * num_ranks
        # Guard capacities so a zero-capacity rank is only used when every
        # rank has zero capacity (which _check_inputs already excludes).
        safe_caps = [c if c > 0 else 1e-12 for c in caps.tolist()]
        rank_range = range(num_ranks)
        order = sorted(
            range(len(boxes)),
            key=lambda i: (-works[i], boxes[i].corner_key()),
        )
        for i in order:
            w = works[i]
            rank = min(
                rank_range, key=lambda r: (loads[r] + w) / safe_caps[r]
            )
            result.assignment.append((boxes[i], rank))
            loads[rank] += w
        result.validate_covers(boxes)
        return result
