"""Capacity-weighted greedy LPT baseline (ablation partitioner).

Longest-Processing-Time list scheduling generalized to heterogeneous
targets: boxes are taken in *descending* work order and each is placed on
the rank whose load-to-capacity ratio would stay lowest.  No splitting is
performed, so granularity is whatever the regrid produced -- comparing this
against ACEHeterogeneous isolates the value of constrained box splitting.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.partition.base import (
    Partitioner,
    PartitionResult,
    WorkFunction,
    default_work,
)
from repro.util.geometry import BoxList

__all__ = ["GreedyLPT"]


class GreedyLPT(Partitioner):
    """Heterogeneity-aware LPT without box splitting."""

    name = "GreedyLPT"

    def partition(
        self,
        boxes: BoxList,
        capacities: Sequence[float],
        work_of: WorkFunction | None = None,
    ) -> PartitionResult:
        caps = self._check_inputs(boxes, capacities)
        work_of = work_of or default_work
        total = sum(work_of(b) for b in boxes)
        targets = caps * total
        result = PartitionResult(targets=targets)
        loads = np.zeros(len(caps))
        # Guard capacities so a zero-capacity rank is only used when every
        # rank has zero capacity (which _check_inputs already excludes).
        safe_caps = np.where(caps > 0, caps, 1e-12)
        for box in sorted(
            boxes, key=lambda b: (-work_of(b), b.corner_key())
        ):
            w = work_of(box)
            rank = int(np.argmin((loads + w) / safe_caps))
            result.assignment.append((box, rank))
            loads[rank] += w
        result.validate_covers(boxes)
        return result
