"""Constrained box splitting for the partitioners (paper section 5.3).

When the work of a bounding box exceeds what a processor should receive,
the box is broken in two such that at least one piece fits.  Constraints:

- **Minimum box size** -- no side may drop below ``min_box_size`` (kernel
  stencils and per-box overheads make slivers worthless); enforcing it is
  the paper's stated source of residual load imbalance.
- **Aspect ratio** -- boxes are always cut along their *longest* dimension,
  which keeps the ratio of longest to shortest side from growing.
- **Snapping** -- cut planes land on multiples of ``snap`` (the refinement
  factor), so split fine boxes stay coarsen-compatible for restriction.

``allow_multi_axis=True`` enables the paper's future-work extension
("if the box is instead cut along more axes, it could lead to finer
partitioning granularity and hence better work assignments"): when the
longest-axis cut cannot get close to the target work, other axes are
considered as well.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.partition.workmodel import WorkFunction, WorkModel
from repro.util.errors import PartitionError
from repro.util.geometry import Box

__all__ = ["SplitConstraints", "split_to_target", "split_row_to_target", "BoxRow"]

#: Object-free box currency of the columnar partitioners: plain
#: ``(lower, upper, level)`` tuples, hashable for the work-row memo.
BoxRow = tuple[tuple[int, ...], tuple[int, ...], int]


@dataclass(frozen=True, slots=True)
class SplitConstraints:
    """Knobs of the box-splitting step."""

    min_box_size: int = 2
    snap: int = 2
    allow_multi_axis: bool = False

    def __post_init__(self) -> None:
        if self.min_box_size < 1:
            raise PartitionError(
                f"min_box_size must be >= 1, got {self.min_box_size}"
            )
        if self.snap < 1:
            raise PartitionError(f"snap must be >= 1, got {self.snap}")


def _candidate_cut_coords(
    lo_ax: int,
    up_ax: int,
    target_work: float,
    box_work: float,
    c: SplitConstraints,
) -> int | None:
    """Largest admissible cut in ``[lo_ax, up_ax)`` whose low piece's work
    <= target -- the coordinate-level core shared by the Box and row paths.

    Returns an absolute cut coordinate, or ``None`` when the axis admits no
    cut satisfying the min-size and snap constraints.
    """
    extent = up_ax - lo_ax
    if extent < 2 * c.min_box_size:
        return None
    work_per_plane = box_work / extent
    want = int(target_work / work_per_plane)  # planes in the low piece
    # Clamp to the admissible band, then snap the absolute coordinate down.
    want = max(c.min_box_size, min(want, extent - c.min_box_size))
    cut = lo_ax + want
    if c.snap > 1:
        snapped = (cut // c.snap) * c.snap
        # Snapping down may violate the low piece's min size; snap up then.
        if snapped - lo_ax < c.min_box_size:
            snapped = -(-cut // c.snap) * c.snap
        cut = snapped
    if not (lo_ax + c.min_box_size <= cut <= up_ax - c.min_box_size):
        return None
    return cut


def _candidate_cut(
    box: Box, axis: int, target_work: float, box_work: float, c: SplitConstraints
) -> int | None:
    """Largest admissible cut on ``axis`` of ``box`` (object-path wrapper)."""
    return _candidate_cut_coords(
        box.lower[axis], box.upper[axis], target_work, box_work, c
    )


def split_to_target(
    box: Box,
    target_work: float,
    work_of: WorkFunction | WorkModel,
    constraints: SplitConstraints | None = None,
    _depth: int = 0,
) -> tuple[Box, list[Box]] | None:
    """Split ``box`` so the first returned piece's work is as close to (and
    preferably at most) ``target_work`` as the constraints allow; the
    second element is the list of remainder boxes (one for a single cut,
    several in multi-axis mode).  ``work_of`` may be a legacy per-box
    callable or a :class:`~repro.partition.workmodel.WorkModel`, whose
    per-box memo makes the repeated work probes here O(1).

    With ``allow_multi_axis`` the piece is *recursively* re-cut along its
    own longest axis while its work still exceeds the target -- single cuts
    along the longest axis already have the finest per-plane granularity,
    so the extension's value is sub-plane pieces, exactly the "finer
    partitioning granularity" of the paper's future-work note.

    Returns ``None`` when no admissible split exists (the box is at or near
    the minimum size) -- the caller then assigns the box whole, accepting
    imbalance (paper: "the total work load W_k that is assigned to processor
    k may differ from L_k thus leading to a 'slight' load imbalance").
    """
    c = constraints or SplitConstraints()
    if target_work < 0:
        raise PartitionError(f"negative target work {target_work}")
    box_work = work_of(box)
    if box_work <= 0:
        raise PartitionError(f"box {box} has non-positive work {box_work}")

    cut = _candidate_cut(box, box.longest_axis, target_work, box_work, c)
    if cut is None:
        return None
    lo, hi = box.split(box.longest_axis, cut)
    if (
        c.allow_multi_axis
        and work_of(lo) > target_work
        and _depth < 3 * box.ndim
    ):
        deeper = split_to_target(lo, target_work, work_of, c, _depth + 1)
        if deeper is not None:
            piece, rest = deeper
            # Accept the recursive cut only when it actually lands closer.
            if abs(work_of(piece) - target_work) < abs(
                work_of(lo) - target_work
            ):
                return piece, rest + [hi]
    return lo, [hi]


def split_row_to_target(
    row: BoxRow,
    target_work: float,
    model: WorkModel,
    constraints: SplitConstraints | None = None,
    _depth: int = 0,
) -> tuple[BoxRow, list[BoxRow]] | None:
    """Row-based twin of :func:`split_to_target` for the columnar path.

    Operates on plain ``(lower, upper, level)`` tuples so the array-sliced
    partitioners never materialize :class:`Box` objects while splitting.
    Same cut selection, same integer arithmetic, same accept-if-closer
    recursion -- the produced coordinates are identical to the object path
    (the byte-identity tests pin this).  ``model`` must be a
    :class:`~repro.partition.workmodel.WorkModel`; its ``work_row`` memo
    makes the repeated work probes O(1).
    """
    c = constraints or SplitConstraints()
    if target_work < 0:
        raise PartitionError(f"negative target work {target_work}")
    lower, upper, level = row
    box_work = model.work_row(lower, upper, level)
    if box_work <= 0:
        raise PartitionError(f"box {row} has non-positive work {box_work}")

    shape = [u - l for l, u in zip(lower, upper)]
    axis = shape.index(max(shape))  # first max == Box.longest_axis
    cut = _candidate_cut_coords(
        lower[axis], upper[axis], target_work, box_work, c
    )
    if cut is None:
        return None
    lo_up = list(upper)
    lo_up[axis] = cut
    hi_lo = list(lower)
    hi_lo[axis] = cut
    lo: BoxRow = (lower, tuple(lo_up), level)
    hi: BoxRow = (tuple(hi_lo), upper, level)
    ndim = len(lower)
    if (
        c.allow_multi_axis
        and model.work_row(*lo) > target_work
        and _depth < 3 * ndim
    ):
        deeper = split_row_to_target(lo, target_work, model, c, _depth + 1)
        if deeper is not None:
            piece, rest = deeper
            # Accept the recursive cut only when it actually lands closer.
            if abs(model.work_row(*piece) - target_work) < abs(
                model.work_row(*lo) - target_work
            ):
                return piece, rest + [hi]
    return lo, [hi]
