"""Vectorized per-box work model -- the single source of box weights.

Every partitioner, :meth:`PartitionResult.loads`, the partition metrics
and both runtime loops used to walk Python ``work_of`` callables box by
box (``sum(work_of(b) for b in boxes)``), re-deriving the same weights
many times per repartition.  The AMReX load-balancing literature treats
per-box weights as one precomputed vector handed to interchangeable
strategies; :class:`WorkModel` is that vector, plus the caching that
keeps box *splitting* cheap.

Contract
--------
- :meth:`WorkModel.vector` returns the per-box work of a box sequence as
  one read-only ``float64`` array, computed vectorized over the stacked
  box corner arrays and memoized per sequence object (``BoxList`` is
  immutable, so identity caching is safe; plain lists must not be mutated
  after the call).
- :meth:`WorkModel.work` (also ``model(box)``) prices a single box with a
  per-box memo, so the repeated ``work(piece)`` probes of constrained
  splitting never recompute; fresh split pieces are priced incrementally
  in O(1) instead of invalidating any list-level result.
- :meth:`WorkModel.total` reduces the vector with *sequential* (left to
  right) summation, bit-identical to the legacy
  ``sum(work_of(b) for b in boxes)`` it replaces -- partitioner targets,
  and therefore assignments, are unchanged by the migration.
- Legacy :data:`WorkFunction` callables keep working everywhere through
  :class:`CallableWorkModel` (see :func:`as_work_model`); a ``WorkModel``
  *is* a ``WorkFunction``, so code that still calls ``work_of(box)``
  needs no change.

The default model is the Berger-Oliger weight
``cells * refine_factor ** level`` (finer grids have more cells *and*
subcycle more steps per coarse step, paper section 3.1).  Subclass and
override :meth:`compute` / :meth:`work` for application-specific weights
(e.g. particle-weighted, per the AMReX dual-grid studies).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Sequence

import numpy as np

from repro.util.errors import PartitionError
from repro.util.geometry import Box, BoxArray, BoxList

__all__ = ["WorkFunction", "WorkModel", "CallableWorkModel", "as_work_model"]

#: Work of one box, in abstract work units (legacy per-box protocol).
WorkFunction = Callable[[Box], float]

#: Vector results memoized per model; FIFO-bounded so a long run over many
#: epochs cannot grow without bound.
_MAX_CACHED_LISTS = 32


class WorkModel:
    """Berger-Oliger work, vectorized: ``cells * refine_factor ** level``."""

    def __init__(self, refine_factor: int = 2):
        if refine_factor < 1:
            raise PartitionError(
                f"refine_factor must be >= 1, got {refine_factor}"
            )
        self.refine_factor = int(refine_factor)
        self._box_cache: dict[Box, float] = {}
        self._row_cache: dict[tuple, float] = {}
        # id -> (pinned sequence, vector); pinning the sequence keeps its
        # id from being reused while the entry lives.
        self._list_cache: OrderedDict[int, tuple[object, np.ndarray]] = (
            OrderedDict()
        )

    @property
    def name(self) -> str:
        return f"cells*{self.refine_factor}^level"

    # ------------------------------------------------------------------
    # Vector path
    # ------------------------------------------------------------------
    def compute(self, boxes: Sequence[Box]) -> np.ndarray:
        """Uncached per-box work vector (override point for custom models).

        Columnar inputs (:class:`~repro.util.geometry.BoxList` /
        :class:`~repro.util.geometry.BoxArray`) are priced straight off
        their cached ``int64`` columns -- no per-box gathering at all;
        plain box sequences gather corner/level arrays in one pass first.
        Either way the arithmetic is NumPy and the values bit-identical.
        """
        if isinstance(boxes, BoxList):
            return self.compute_columns(boxes.array)
        if isinstance(boxes, BoxArray):
            return self.compute_columns(boxes)
        if len(boxes) == 0:
            return np.zeros(0)
        lowers = np.array([b.lower for b in boxes], dtype=np.int64)
        uppers = np.array([b.upper for b in boxes], dtype=np.int64)
        levels = np.array([b.level for b in boxes], dtype=np.int64)
        cells = np.prod(uppers - lowers, axis=1)
        return (cells * self.refine_factor**levels).astype(np.float64)

    def compute_columns(self, arr: BoxArray) -> np.ndarray:
        """Work vector straight from struct-of-arrays columns."""
        if len(arr) == 0:
            return np.zeros(0)
        cells = arr.num_cells()
        return (cells * self.refine_factor**arr.level).astype(np.float64)

    def vector(self, boxes: Sequence[Box]) -> np.ndarray:
        """Per-box work of ``boxes`` as one read-only float64 array.

        Memoized on the sequence object's identity -- pass the same
        ``BoxList`` twice and the second call is a dict lookup.  Do not
        mutate a plain list after handing it in.
        """
        key = id(boxes)
        hit = self._list_cache.get(key)
        if hit is not None and hit[0] is boxes:
            return hit[1]
        vec = self.compute(boxes)
        vec.setflags(write=False)
        self._list_cache[key] = (boxes, vec)
        while len(self._list_cache) > _MAX_CACHED_LISTS:
            self._list_cache.popitem(last=False)
        return vec

    def total(self, boxes: Sequence[Box]) -> float:
        """Total work, summed left to right (matches the legacy
        ``sum(work_of(b) for b in boxes)`` bit for bit)."""
        return float(sum(self.vector(boxes).tolist()))

    # ------------------------------------------------------------------
    # Single-box path (splitting, adapters)
    # ------------------------------------------------------------------
    def work(self, box: Box) -> float:
        """Work of one box, memoized (split pieces are priced once)."""
        w = self._box_cache.get(box)
        if w is None:
            w = self._work_one(box)
            self._box_cache[box] = w
        return w

    def _work_one(self, box: Box) -> float:
        return float(box.num_cells * self.refine_factor**box.level)

    def work_row(
        self,
        lower: tuple[int, ...],
        upper: tuple[int, ...],
        level: int,
    ) -> float:
        """Work of one box given as plain ``(lower, upper, level)`` tuples.

        The object-free twin of :meth:`work` for the columnar splitters:
        same Python-int arithmetic (bit-identical to pricing the Box), own
        memo keyed on the row tuple so repeated split probes stay O(1).
        """
        key = (lower, upper, level)
        w = self._row_cache.get(key)
        if w is None:
            n = 1
            for lo, up in zip(lower, upper):
                n *= up - lo
            w = float(n * self.refine_factor**level)
            self._row_cache[key] = w
        return w

    # A WorkModel is itself a valid WorkFunction.
    __call__ = work

    def clear_cache(self) -> None:
        """Drop all memoized results (rarely needed; caches are bounded)."""
        self._box_cache.clear()
        self._row_cache.clear()
        self._list_cache.clear()


class CallableWorkModel(WorkModel):
    """Adapter giving a legacy :data:`WorkFunction` the vector interface.

    The vector is necessarily built by calling the wrapped function once
    per box (in sequence order, so results are bit-identical to the code
    it replaces), but the per-box memo still removes the repeated calls
    the legacy path paid during splitting and load accounting.
    """

    def __init__(self, fn: WorkFunction, refine_factor: int = 2):
        super().__init__(refine_factor)
        self.fn = fn

    @property
    def name(self) -> str:
        return getattr(self.fn, "__name__", type(self.fn).__name__)

    def compute(self, boxes: Sequence[Box]) -> np.ndarray:
        fn = self.fn
        return np.array([fn(b) for b in boxes], dtype=np.float64)

    def _work_one(self, box: Box) -> float:
        return float(self.fn(box))

    def work_row(
        self,
        lower: tuple[int, ...],
        upper: tuple[int, ...],
        level: int,
    ) -> float:
        # Legacy callables only understand Box objects; materialize one
        # (through the shared per-box memo, so each row is priced once).
        return self.work(Box(lower, upper, level))


def as_work_model(
    work_of: "WorkFunction | WorkModel | None",
    refine_factor: int = 2,
) -> WorkModel:
    """Coerce any accepted work argument to a :class:`WorkModel`.

    ``None`` yields the default Berger-Oliger model; an existing model
    passes through (preserving its caches); any other callable is wrapped
    in a :class:`CallableWorkModel`.
    """
    if work_of is None:
        return WorkModel(refine_factor)
    if isinstance(work_of, WorkModel):
        return work_of
    if not callable(work_of):
        raise PartitionError(
            f"work_of must be callable or a WorkModel, got {work_of!r}"
        )
    return CallableWorkModel(work_of, refine_factor)
