"""ACEComposite: GrACE's default space-filling-curve partitioner.

The baseline the paper compares against: "the default space-filling curve
based partitioning scheme provided by GrACE.  This latter scheme assumes
homogeneous processors and performs an equal distribution of the workload
on the processors."

The hierarchy's boxes are linearized along a Hilbert curve (the composite
ordering GrACE's HDDA maintains) and dealt out as contiguous curve spans of
(approximately) equal work, one span per processor, splitting boxes at span
boundaries under the same constraints as the heterogeneous partitioner.
Contiguous spans preserve locality -- the scheme's strength -- but the equal
targets ignore capacity, which is exactly what the paper's experiments
expose on loaded clusters.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.partition.base import (
    Partitioner,
    PartitionResult,
    WorkFunction,
    WorkModel,
    as_work_model,
)
from repro.partition.splitting import SplitConstraints, split_to_target
from repro.util.geometry import BoxList
from repro.util.sfc import sfc_order_boxes

__all__ = ["ACEComposite", "assign_curve_spans"]


def assign_curve_spans(
    ordered: list,
    targets: np.ndarray,
    work_of: WorkFunction | WorkModel,
    constraints: SplitConstraints,
    result: PartitionResult,
) -> None:
    """Deal an SFC-ordered box list into contiguous per-rank spans.

    Each rank receives boxes from the current curve position until its
    ``targets`` entry is filled; boxes straddling a span boundary are split
    under ``constraints`` (remainders stay at the current curve position).
    When a boundary cannot be carved, the shortfall carries into the next
    rank's span so the global sum is preserved.  Mutates ``result``.

    Box works come from the model's vector in one shot; split remainders
    are priced incrementally through the model's per-box cache, keeping a
    ``works`` list aligned with the (mutating) curve position list.
    """
    model = as_work_model(work_of)
    num_ranks = len(targets)
    pending = ordered
    works = model.compute(pending).tolist()
    rank = 0
    remaining = targets[0]
    i = 0
    while i < len(pending):
        box = pending[i]
        w = works[i]
        last_rank = rank == num_ranks - 1
        if last_rank or w <= remaining + 1e-9:
            result.assignment.append((box, rank))
            remaining -= w
            i += 1
            if not last_rank and remaining <= 0:
                rank += 1
                remaining += targets[rank]
            continue
        split = (
            split_to_target(box, remaining, model, constraints)
            if remaining > 0
            else None
        )
        if split is None:
            rank += 1
            remaining += targets[rank]
            continue
        piece, rest = split
        result.num_splits += len(rest)
        result.assignment.append((piece, rank))
        remaining -= model.work(piece)
        # Remainders stay at the current curve position.
        pending[i : i + 1] = rest
        works[i : i + 1] = [model.work(r) for r in rest]
        if remaining <= 0 and rank < num_ranks - 1:
            rank += 1
            remaining += targets[rank]


class ACEComposite(Partitioner):
    """Equal-work SFC-span partitioner (capacity-blind baseline).

    Parameters
    ----------
    constraints:
        Box-splitting constraints shared with ACEHeterogeneous.
    curve:
        Space-filling curve for the composite ordering.
    """

    name = "ACEComposite"

    def __init__(
        self,
        constraints: SplitConstraints | None = None,
        curve: str = "hilbert",
    ):
        self.constraints = constraints or SplitConstraints()
        self.curve = curve

    def partition(
        self,
        boxes: BoxList,
        capacities: Sequence[float],
        work_of: WorkFunction | WorkModel | None = None,
    ) -> PartitionResult:
        # Capacities are accepted (interface parity) but only their count
        # matters: the default scheme assumes homogeneity.
        caps = self._check_inputs(boxes, capacities)
        num_ranks = len(caps)
        model = as_work_model(work_of)
        total = model.total(boxes)
        targets = np.full(num_ranks, total / num_ranks)
        result = PartitionResult(targets=targets, work_model=model)
        if len(boxes) == 0:
            return result

        ordered = list(sfc_order_boxes(boxes, curve=self.curve))
        assign_curve_spans(ordered, targets, model, self.constraints, result)
        result.validate_covers(boxes)
        return result
