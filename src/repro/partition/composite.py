"""ACEComposite: GrACE's default space-filling-curve partitioner.

The baseline the paper compares against: "the default space-filling curve
based partitioning scheme provided by GrACE.  This latter scheme assumes
homogeneous processors and performs an equal distribution of the workload
on the processors."

The hierarchy's boxes are linearized along a Hilbert curve (the composite
ordering GrACE's HDDA maintains) and dealt out as contiguous curve spans of
(approximately) equal work, one span per processor, splitting boxes at span
boundaries under the same constraints as the heterogeneous partitioner.
Contiguous spans preserve locality -- the scheme's strength -- but the equal
targets ignore capacity, which is exactly what the paper's experiments
expose on loaded clusters.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.partition.base import (
    Partitioner,
    PartitionResult,
    WorkFunction,
    WorkModel,
    as_work_model,
)
from repro.partition.splitting import (
    SplitConstraints,
    split_row_to_target,
    split_to_target,
)
from repro.util.geometry import BoxArray, BoxList
from repro.util.sfc import sfc_order_boxes

__all__ = ["ACEComposite", "assign_curve_spans", "assign_curve_spans_columnar"]


def assign_curve_spans(
    ordered: list,
    targets: np.ndarray,
    work_of: WorkFunction | WorkModel,
    constraints: SplitConstraints,
    result: PartitionResult,
) -> None:
    """Deal an SFC-ordered box list into contiguous per-rank spans.

    Each rank receives boxes from the current curve position until its
    ``targets`` entry is filled; boxes straddling a span boundary are split
    under ``constraints`` (remainders stay at the current curve position).
    When a boundary cannot be carved, the shortfall carries into the next
    rank's span so the global sum is preserved.  Mutates ``result``.

    Box works come from the model's vector in one shot; split remainders
    are priced incrementally through the model's per-box cache, keeping a
    ``works`` list aligned with the (mutating) curve position list.
    """
    model = as_work_model(work_of)
    num_ranks = len(targets)
    pending = ordered
    works = model.compute(pending).tolist()
    rank = 0
    remaining = targets[0]
    i = 0
    while i < len(pending):
        box = pending[i]
        w = works[i]
        last_rank = rank == num_ranks - 1
        if last_rank or w <= remaining + 1e-9:
            result.assignment.append((box, rank))
            remaining -= w
            i += 1
            if not last_rank and remaining <= 0:
                rank += 1
                remaining += targets[rank]
            continue
        split = (
            split_to_target(box, remaining, model, constraints)
            if remaining > 0
            else None
        )
        if split is None:
            rank += 1
            remaining += targets[rank]
            continue
        piece, rest = split
        result.num_splits += len(rest)
        result.assignment.append((piece, rank))
        remaining -= model.work(piece)
        # Remainders stay at the current curve position.
        pending[i : i + 1] = rest
        works[i : i + 1] = [model.work(r) for r in rest]
        if remaining <= 0 and rank < num_ranks - 1:
            rank += 1
            remaining += targets[rank]


def assign_curve_spans_columnar(
    ordered: BoxList,
    targets: np.ndarray,
    work_of: WorkFunction | WorkModel,
    constraints: SplitConstraints,
    result: PartitionResult,
) -> None:
    """Columnar :func:`assign_curve_spans`: array slices in, columns out.

    Walks the same sequential span logic (identical float accumulation,
    identical split decisions -- the byte-identity tests pin both against
    the object path) but reads box metadata from the ordered list's
    cached columns and emits the assignment via
    :meth:`PartitionResult.set_columns`, so no per-box Python objects are
    created for unsplit boxes.  Split remainders ride a small deque of
    ``(lower, upper, level)`` rows at the current curve position, exactly
    where the object path re-inserted them.
    """
    model = as_work_model(work_of)
    arr = ordered.array
    works = model.vector(ordered)
    n = len(works)
    num_ranks = len(targets)
    rank = 0
    remaining = targets[0]
    # Output: contiguous runs of base rows interleaved with explicit split
    # rows, in exact assignment order.  Runs keep the bulk of the output as
    # array slices; split rows are O(num_ranks), not O(n).  Ranks are
    # run-length encoded for the same reason: whole spans land at once.
    segments: list[tuple] = []  # ("run", i0, i1) | ("row", row)
    rank_runs: list[list[int]] = []  # [rank, count]
    run_start = 0
    front: deque = deque()  # (row, work) split remainders at curve position
    i = 0

    def flush_run(stop: int) -> None:
        nonlocal run_start
        if stop > run_start:
            segments.append(("run", run_start, stop))
        run_start = stop

    def emit(r: int, count: int = 1) -> None:
        if rank_runs and rank_runs[-1][0] == r:
            rank_runs[-1][1] += count
        else:
            rank_runs.append([r, count])

    while front or i < n:
        if rank == num_ranks - 1:
            # The last rank drains the curve: front rows first (they sit
            # at the current position), then the rest of the bulk run.
            while front:
                row, _ = front.popleft()
                segments.append(("row", row))
                emit(rank)
            if i < n:
                emit(rank, n - i)
                i = n
            break
        if front:
            row, w = front[0]
            if w <= remaining + 1e-9:
                front.popleft()
                segments.append(("row", row))
                emit(rank)
                remaining -= w
                if remaining <= 0:
                    rank += 1
                    remaining += targets[rank]
                continue
        else:
            # Bulk boxes: scan whole spans per event instead of per box.
            accepted, remaining, event = _scan_span(works, i, remaining)
            if accepted:
                emit(rank, accepted)
                i += accepted  # stays inside the current run
            if event == "advance":
                rank += 1
                remaining += targets[rank]
                continue
            if event == "end":
                continue
            row = arr.row(i)
        split = (
            split_row_to_target(row, remaining, model, constraints)
            if remaining > 0
            else None
        )
        if split is None:
            rank += 1
            remaining += targets[rank]
            continue
        piece, rest = split
        result.num_splits += len(rest)
        if front:
            front.popleft()
        else:
            flush_run(i)
            i += 1
            run_start = i
        segments.append(("row", piece))
        emit(rank)
        remaining -= model.work_row(*piece)
        # Remainders stay at the current curve position.
        front.extendleft(
            (r, model.work_row(*r)) for r in reversed(rest)
        )
        if remaining <= 0 and rank < num_ranks - 1:
            rank += 1
            remaining += targets[rank]
    flush_run(n)

    lowers: list[np.ndarray] = []
    uppers: list[np.ndarray] = []
    levels: list[np.ndarray] = []
    for seg in segments:
        if seg[0] == "run":
            _, i0, i1 = seg
            lowers.append(arr.lower[i0:i1])
            uppers.append(arr.upper[i0:i1])
            levels.append(arr.level[i0:i1])
        else:
            lo, up, lvl = seg[1]
            lowers.append(np.array([lo], dtype=np.int64))
            uppers.append(np.array([up], dtype=np.int64))
            levels.append(np.array([lvl], dtype=np.int64))
    assigned = BoxArray(
        np.concatenate(lowers) if lowers else arr.lower[:0],
        np.concatenate(uppers) if uppers else arr.upper[:0],
        np.concatenate(levels) if levels else arr.level[:0],
    )
    if rank_runs:
        out_ranks = np.repeat(
            np.array([r for r, _ in rank_runs], dtype=np.intp),
            np.array([c for _, c in rank_runs]),
        )
    else:
        out_ranks = np.zeros(0, dtype=np.intp)
    result.set_columns(BoxList.from_array(assigned), out_ranks)


def _scan_span(
    works: np.ndarray, i: int, remaining: float, chunk: int = 4096
) -> tuple[int, float, str]:
    """Count bulk boxes the scalar walk would accept before its next event.

    Returns ``(accepted, remaining, event)``: ``accepted`` boxes starting
    at ``i`` go to the current rank, ``remaining`` is the remainder after
    them, and ``event`` is why the scan stopped -- ``"advance"`` (the
    remainder hit zero; caller moves to the next rank, carrying the
    deficit), ``"reject"`` (box ``i + accepted`` exceeds the remainder;
    caller tries to split it) or ``"end"`` (curve exhausted).

    Bitwise-faithful to the per-box loop: the running remainder is a pure
    left-fold of IEEE additions (``x - w == x + (-w)`` exactly), which is
    precisely what ``np.cumsum`` over ``[remaining, -w0, -w1, ...]``
    computes, so every accept comparison sees the identical float the
    scalar walk would have seen.
    """
    n = len(works)
    accepted = 0
    while i < n:
        w = works[i : i + chunk]
        prefix = np.cumsum(np.concatenate(([remaining], -w)))
        accept = w <= prefix[:-1] + 1e-9
        hits = np.flatnonzero(~accept)
        reject_at = int(hits[0]) if hits.size else len(w)
        hits = np.flatnonzero(accept[:reject_at] & (prefix[1 : reject_at + 1] <= 0))
        if hits.size:
            k = int(hits[0])
            return accepted + k + 1, float(prefix[k + 1]), "advance"
        if reject_at < len(w):
            return accepted + reject_at, float(prefix[reject_at]), "reject"
        accepted += len(w)
        i += len(w)
        remaining = float(prefix[-1])
    return accepted, remaining, "end"


class ACEComposite(Partitioner):
    """Equal-work SFC-span partitioner (capacity-blind baseline).

    Parameters
    ----------
    constraints:
        Box-splitting constraints shared with ACEHeterogeneous.
    curve:
        Space-filling curve for the composite ordering.
    """

    name = "ACEComposite"

    def __init__(
        self,
        constraints: SplitConstraints | None = None,
        curve: str = "hilbert",
    ):
        self.constraints = constraints or SplitConstraints()
        self.curve = curve

    def partition(
        self,
        boxes: BoxList,
        capacities: Sequence[float],
        work_of: WorkFunction | WorkModel | None = None,
    ) -> PartitionResult:
        # Capacities are accepted (interface parity) but only their count
        # matters: the default scheme assumes homogeneity.
        caps = self._check_inputs(boxes, capacities)
        num_ranks = len(caps)
        model = as_work_model(work_of)
        total = model.total(boxes)
        targets = np.full(num_ranks, total / num_ranks)
        result = PartitionResult(targets=targets, work_model=model)
        if len(boxes) == 0:
            return result

        ordered = sfc_order_boxes(boxes, curve=self.curve)
        assign_curve_spans_columnar(
            ordered, targets, model, self.constraints, result
        )
        result.validate_covers(boxes)
        return result
