"""Per-level decomposition: partition each refinement level independently.

The SAMR partitioning literature (Steensland et al.'s characterization
study, reference [17]) distinguishes *composite* decompositions -- one
distribution of the whole hierarchy, what ACEHeterogeneous and
ACEComposite compute -- from *level-based* decompositions that balance
every refinement level separately.  Level-based schemes guarantee that
each level's work is spread across all processors (no processor idles
during any level's subcycled updates, important under strict per-level
synchronization), at the cost of more inter-level communication (a fine
patch's parent region usually lands on a different owner).

:class:`LevelPartitioner` wraps any inner partitioner and applies it to
each level's boxes in isolation; the characterization panel quantifies
the trade against composite schemes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.partition.base import (
    Partitioner,
    PartitionResult,
    WorkFunction,
    WorkModel,
    as_work_model,
)
from repro.util.geometry import BoxArray, BoxList

__all__ = ["LevelPartitioner"]


class LevelPartitioner(Partitioner):
    """Applies an inner partitioner to every refinement level separately."""

    def __init__(self, inner: Partitioner):
        self.inner = inner
        self.name = f"LevelWise[{inner.name}]"

    def partition(
        self,
        boxes: BoxList,
        capacities: Sequence[float],
        work_of: WorkFunction | WorkModel | None = None,
    ) -> PartitionResult:
        caps = self._check_inputs(boxes, capacities)
        model = as_work_model(work_of)
        total = model.total(boxes)
        result = PartitionResult(targets=caps * total, work_model=model)
        splits = 0
        subs: list[PartitionResult] = []
        for level in boxes.levels:
            level_boxes = boxes.at_level(level)
            sub = self.inner.partition(level_boxes, caps, model)
            subs.append(sub)
            splits += sub.num_splits
        result.num_splits = splits
        if subs:
            # Merge the per-level results column-wise (level order == the
            # object path's ``assignment.extend`` order); no pair lists.
            merged = BoxArray.concatenate([s.boxes().array for s in subs])
            ranks = np.concatenate([s.rank_vector() for s in subs])
            result.set_columns(BoxList.from_array(merged), ranks)
        result.validate_covers(boxes)
        return result
