"""Graph-based partitioning (the related-work quadrant of ParMETIS/Zoltan).

The paper's taxonomy (section 2) cites graph partitioners -- Karypis et
al.'s ParMETIS [18], Hendrickson & Devine's Zoltan [21] -- as the dynamic-
application/static-system state of the art.  :class:`GraphPartitioner`
implements that approach over the SAMR box graph, extended with
heterogeneous capacity targets so it can compete in this framework:

1. Build the **box connectivity graph**: one node per bounding box
   (weight = work), edges between boxes that would exchange ghost data,
   weighted by the exchange volume (shared-face cells, plus inter-level
   prolongation overlap).
2. **Recursive weighted bisection**: split the rank set in two, divide the
   target capacity accordingly, and grow one side of the graph by
   boundary-first BFS until its work matches its capacity share --
   minimizing the cut heuristically by always absorbing the frontier node
   with the largest connectivity into the growing part.
3. Recurse on both halves.

No box splitting is performed (graph partitioners move whole objects), so
granularity comes from the regrid -- comparing against ACEHeterogeneous
isolates what constrained splitting buys over pure graph methods.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from repro.partition.base import (
    Partitioner,
    PartitionResult,
    WorkFunction,
    WorkModel,
    as_work_model,
)
from repro.util.geometry import Box, BoxList

__all__ = ["build_box_graph", "GraphPartitioner"]


def build_box_graph(
    boxes: BoxList,
    work_of: WorkFunction | WorkModel,
    ghost_width: int = 1,
    refine_factor: int = 2,
) -> nx.Graph:
    """Connectivity graph of a hierarchy's bounding boxes.

    Node attributes: ``work`` (priced in one vectorized pass).  Edge
    attribute ``volume``: cells that would cross between the two boxes in
    one ghost exchange (both directions), including coarse-fine
    prolongation overlap.
    """
    g = nx.Graph()
    box_list = list(boxes)
    works = as_work_model(work_of).vector(boxes).tolist()
    for i, b in enumerate(box_list):
        g.add_node(i, box=b, work=works[i])
    by_level: dict[int, list[tuple[int, Box]]] = {}
    for i, b in enumerate(box_list):
        by_level.setdefault(b.level, []).append((i, b))

    def bump(i: int, j: int, cells: int) -> None:
        if cells <= 0 or i == j:
            return
        if g.has_edge(i, j):
            g[i][j]["volume"] += cells
        else:
            g.add_edge(i, j, volume=cells)

    for level, members in by_level.items():
        # Intra-level ghost adjacency.
        for ai in range(len(members)):
            i, a = members[ai]
            grown = a.grow(ghost_width) if ghost_width else a
            for bj in range(ai + 1, len(members)):
                j, b = members[bj]
                inter = grown.intersection(b)
                if inter is not None:
                    bump(i, j, 2 * inter.num_cells)
        # Inter-level prolongation overlap.
        parents = by_level.get(level - 1, ()) if level > 0 else ()
        if not parents:
            continue
        for i, fine in members:
            footprint = (
                fine.grow(ghost_width) if ghost_width else fine
            ).coarsen(refine_factor)
            for j, parent in parents:
                inter = parent.intersection(footprint)
                if inter is not None:
                    bump(i, j, inter.num_cells)
    return g


def _grow_part(
    g: nx.Graph, nodes: list[int], target_work: float
) -> tuple[list[int], list[int]]:
    """Carve a connected-ish subset with ~``target_work`` out of ``nodes``.

    Greedy boundary-first growth: seed with the heaviest node, then
    repeatedly absorb the frontier node with the strongest connection to
    the growing part (falling back to the heaviest remaining node when the
    frontier is empty), until the target is reached.
    """
    remaining = set(nodes)
    seed = max(remaining, key=lambda n: g.nodes[n]["work"])
    part = [seed]
    remaining.discard(seed)
    acc = g.nodes[seed]["work"]
    while remaining and acc < target_work:
        frontier: dict[int, float] = {}
        for p in part:
            for nbr in g.neighbors(p):
                if nbr in remaining:
                    frontier[nbr] = (
                        frontier.get(nbr, 0.0) + g[p][nbr]["volume"]
                    )
        if frontier:
            # Prefer the most-connected candidate; break ties on work so
            # growth fills the target quickly and deterministically.
            nxt = max(
                frontier,
                key=lambda n: (frontier[n], g.nodes[n]["work"], -n),
            )
        else:
            nxt = max(remaining, key=lambda n: (g.nodes[n]["work"], -n))
        w = g.nodes[nxt]["work"]
        # Stop before a gross overshoot (better handled by the other side).
        if acc + w > target_work and acc > 0.5 * target_work:
            overshoot = acc + w - target_work
            undershoot = target_work - acc
            if overshoot > undershoot:
                break
        part.append(nxt)
        remaining.discard(nxt)
        acc += w
    return part, sorted(remaining)


class GraphPartitioner(Partitioner):
    """Recursive weighted bisection over the box connectivity graph."""

    name = "GraphPartitioner"

    def __init__(self, ghost_width: int = 1, refine_factor: int = 2):
        self.ghost_width = ghost_width
        self.refine_factor = refine_factor

    def partition(
        self,
        boxes: BoxList,
        capacities: Sequence[float],
        work_of: WorkFunction | WorkModel | None = None,
    ) -> PartitionResult:
        caps = self._check_inputs(boxes, capacities)
        model = as_work_model(work_of)
        total = model.total(boxes)
        result = PartitionResult(targets=caps * total, work_model=model)
        if len(boxes) == 0:
            return result
        g = build_box_graph(
            boxes, model, self.ghost_width, self.refine_factor
        )
        assignment: dict[int, int] = {}

        def bisect(nodes: list[int], ranks: list[int]) -> None:
            if not nodes:
                return
            if len(ranks) == 1:
                for n in nodes:
                    assignment[n] = ranks[0]
                return
            half = len(ranks) // 2
            left_ranks, right_ranks = ranks[:half], ranks[half:]
            cap_left = float(sum(caps[r] for r in left_ranks))
            cap_right = float(sum(caps[r] for r in right_ranks))
            work_here = sum(g.nodes[n]["work"] for n in nodes)
            share = cap_left / max(cap_left + cap_right, 1e-300)
            left, right = _grow_part(g, nodes, share * work_here)
            bisect(left, left_ranks)
            bisect(right, right_ranks)

        # Process ranks in capacity order so recursive halves are balanced.
        rank_order = sorted(range(len(caps)), key=lambda r: -caps[r])
        bisect(sorted(g.nodes), rank_order)
        for n, rank in sorted(assignment.items()):
            result.assignment.append((g.nodes[n]["box"], rank))
        result.validate_covers(boxes)
        return result
