"""Graph-based partitioning (the related-work quadrant of ParMETIS/Zoltan).

The paper's taxonomy (section 2) cites graph partitioners -- Karypis et
al.'s ParMETIS [18], Hendrickson & Devine's Zoltan [21] -- as the dynamic-
application/static-system state of the art.  :class:`GraphPartitioner`
implements that approach over the SAMR box graph, extended with
heterogeneous capacity targets so it can compete in this framework:

1. Build the **box connectivity graph**: one node per bounding box
   (weight = work), edges between boxes that would exchange ghost data,
   weighted by the exchange volume (shared-face cells, plus inter-level
   prolongation overlap).
2. **Recursive weighted bisection**: split the rank set in two, divide the
   target capacity accordingly, and grow one side of the graph by
   boundary-first BFS until its work matches its capacity share --
   minimizing the cut heuristically by always absorbing the frontier node
   with the largest connectivity into the growing part.
3. Recurse on both halves.

No box splitting is performed (graph partitioners move whole objects), so
granularity comes from the regrid -- comparing against ACEHeterogeneous
isolates what constrained splitting buys over pure graph methods.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.partition.base import (
    Partitioner,
    PartitionResult,
    WorkFunction,
    WorkModel,
    as_work_model,
)
from repro.util.geometry import BoxList

__all__ = ["build_box_graph", "GraphPartitioner"]


def build_box_graph(
    boxes: BoxList,
    work_of: WorkFunction | WorkModel,
    ghost_width: int = 1,
    refine_factor: int = 2,
) -> nx.Graph:
    """Connectivity graph of a hierarchy's bounding boxes.

    Node ``i`` is row ``i`` of the box list; node attribute ``work`` is
    priced in one vectorized pass.  Edge attribute ``volume``: cells that
    would cross between the two boxes in one ghost exchange (both
    directions), including coarse-fine prolongation overlap.

    Edges are generated over the list's columns: per level, candidate
    pairs are pruned with an axis-0 sweep (sorted lower corners + binary
    search, the same trick as ``BoxArray.is_disjoint``) and the survivors'
    exchange volumes computed in one broadcast -- the volumes are exact
    integers, identical to the old per-pair ``Box.intersection`` walk.
    """
    g = nx.Graph()
    bl = boxes if isinstance(boxes, BoxList) else BoxList(boxes)
    arr = bl.array
    works = as_work_model(work_of).vector(bl).tolist()
    n = len(arr)
    g.add_nodes_from((i, {"work": works[i]}) for i in range(n))

    gw = int(ghost_width)
    lower = arr.lower
    upper = arr.upper
    levels = arr.level
    edges: list[tuple[int, int, dict]] = []

    for lvl in np.unique(levels).tolist():
        pos = np.flatnonzero(levels == lvl)
        m = pos.size
        lo = lower[pos]
        up = upper[pos]
        # Intra-level ghost adjacency.  The earlier box of each pair is
        # the grown operand (grow(a) & b, as the object path had it);
        # pruning uses a symmetric +gw slack on axis 0, a superset of the
        # true pairs, and the exact extent test drops the rest.
        if m > 1:
            order = np.argsort(lo[:, 0], kind="stable")
            slo = lo[order]
            sup = up[order]
            ends = np.searchsorted(slo[:, 0], sup[:, 0] + gw, side="left")
            starts = np.arange(m) + 1
            counts = np.maximum(ends - starts, 0)
            tot = int(counts.sum())
            if tot:
                ii = np.repeat(np.arange(m), counts)
                offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
                jj = (
                    np.arange(tot)
                    - np.repeat(offsets, counts)
                    + np.repeat(starts, counts)
                )
                oi = order[ii]
                oj = order[jj]
                a = np.minimum(oi, oj)  # earlier member: the grown side
                b = np.maximum(oi, oj)
                inter_lo = np.maximum(lo[a] - gw, lo[b])
                inter_up = np.minimum(up[a] + gw, up[b])
                ext = inter_up - inter_lo
                ok = (ext > 0).all(axis=1)
                if bool(ok.any()):
                    cells = np.prod(ext[ok], axis=1)
                    edges.extend(
                        (i, j, {"volume": v})
                        for i, j, v in zip(
                            pos[a[ok]].tolist(),
                            pos[b[ok]].tolist(),
                            (2 * cells).tolist(),
                        )
                    )
        # Inter-level prolongation overlap: each fine box's grown
        # footprint, coarsened one level, against the parent level.
        if lvl > 0 and m:
            parents_pos = np.flatnonzero(levels == lvl - 1)
            if parents_pos.size:
                rf = int(refine_factor)
                fp_lo = np.floor_divide(lo - gw, rf)
                fp_up = -np.floor_divide(-(up + gw), rf)  # ceil division
                p_lo = lower[parents_pos]
                p_up = upper[parents_pos]
                porder = np.argsort(p_lo[:, 0], kind="stable")
                sp_lo0 = p_lo[porder, 0]
                hi = np.searchsorted(sp_lo0, fp_up[:, 0], side="left")
                tot = int(hi.sum())
                if tot:
                    fi = np.repeat(np.arange(m), hi)
                    offsets = np.concatenate(([0], np.cumsum(hi)[:-1]))
                    pj = porder[np.arange(tot) - np.repeat(offsets, hi)]
                    inter_lo = np.maximum(p_lo[pj], fp_lo[fi])
                    inter_up = np.minimum(p_up[pj], fp_up[fi])
                    ext = inter_up - inter_lo
                    ok = (ext > 0).all(axis=1)
                    if bool(ok.any()):
                        cells = np.prod(ext[ok], axis=1)
                        edges.extend(
                            (i, j, {"volume": v})
                            for i, j, v in zip(
                                pos[fi[ok]].tolist(),
                                parents_pos[pj[ok]].tolist(),
                                cells.tolist(),
                            )
                        )
    g.add_edges_from(edges)
    return g


def _grow_part(
    g: nx.Graph, nodes: list[int], target_work: float
) -> tuple[list[int], list[int]]:
    """Carve a connected-ish subset with ~``target_work`` out of ``nodes``.

    Greedy boundary-first growth: seed with the heaviest node, then
    repeatedly absorb the frontier node with the strongest connection to
    the growing part (falling back to the heaviest remaining node when the
    frontier is empty), until the target is reached.
    """
    remaining = set(nodes)
    seed = max(remaining, key=lambda n: g.nodes[n]["work"])
    part = [seed]
    remaining.discard(seed)
    acc = g.nodes[seed]["work"]
    while remaining and acc < target_work:
        frontier: dict[int, float] = {}
        for p in part:
            for nbr in g.neighbors(p):
                if nbr in remaining:
                    frontier[nbr] = (
                        frontier.get(nbr, 0.0) + g[p][nbr]["volume"]
                    )
        if frontier:
            # Prefer the most-connected candidate; break ties on work so
            # growth fills the target quickly and deterministically.
            nxt = max(
                frontier,
                key=lambda n: (frontier[n], g.nodes[n]["work"], -n),
            )
        else:
            nxt = max(remaining, key=lambda n: (g.nodes[n]["work"], -n))
        w = g.nodes[nxt]["work"]
        # Stop before a gross overshoot (better handled by the other side).
        if acc + w > target_work and acc > 0.5 * target_work:
            overshoot = acc + w - target_work
            undershoot = target_work - acc
            if overshoot > undershoot:
                break
        part.append(nxt)
        remaining.discard(nxt)
        acc += w
    return part, sorted(remaining)


class GraphPartitioner(Partitioner):
    """Recursive weighted bisection over the box connectivity graph."""

    name = "GraphPartitioner"

    def __init__(self, ghost_width: int = 1, refine_factor: int = 2):
        self.ghost_width = ghost_width
        self.refine_factor = refine_factor

    def partition(
        self,
        boxes: BoxList,
        capacities: Sequence[float],
        work_of: WorkFunction | WorkModel | None = None,
    ) -> PartitionResult:
        caps = self._check_inputs(boxes, capacities)
        model = as_work_model(work_of)
        total = model.total(boxes)
        result = PartitionResult(targets=caps * total, work_model=model)
        if len(boxes) == 0:
            return result
        g = build_box_graph(
            boxes, model, self.ghost_width, self.refine_factor
        )
        assignment: dict[int, int] = {}

        def bisect(nodes: list[int], ranks: list[int]) -> None:
            if not nodes:
                return
            if len(ranks) == 1:
                for n in nodes:
                    assignment[n] = ranks[0]
                return
            half = len(ranks) // 2
            left_ranks, right_ranks = ranks[:half], ranks[half:]
            cap_left = float(sum(caps[r] for r in left_ranks))
            cap_right = float(sum(caps[r] for r in right_ranks))
            work_here = sum(g.nodes[n]["work"] for n in nodes)
            share = cap_left / max(cap_left + cap_right, 1e-300)
            left, right = _grow_part(g, nodes, share * work_here)
            bisect(left, left_ranks)
            bisect(right, right_ranks)

        # Process ranks in capacity order so recursive halves are balanced.
        rank_order = sorted(range(len(caps)), key=lambda r: -caps[r])
        bisect(sorted(g.nodes), rank_order)
        # Node i is row i of the input list, so the assignment is the
        # input columns plus a rank per row -- no object materialization.
        ranks = np.empty(len(boxes), dtype=np.intp)
        for node, rank in assignment.items():
            ranks[node] = rank
        result.set_columns(boxes, ranks)
        result.validate_covers(boxes)
        return result
