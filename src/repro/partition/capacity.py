"""The relative-capacity metric (paper section 5.2).

For node *k* with CPU availability ``P_k``, free memory ``M_k`` and link
bandwidth ``B_k`` (as provided by the resource monitor), each resource is
first normalized to its cluster-wide share::

    P_hat_k = P_k / sum_i P_i      (and likewise M_hat, B_hat)

and the relative capacity is the weighted sum::

    C_k = w_p * P_hat_k + w_m * M_hat_k + w_b * B_hat_k,
    w_p + w_m + w_b = 1   =>   sum_k C_k = 1.

The weights reflect the application's computational, memory and
communication requirements; the paper's experiments use equal weights
(1/3 each) and flag weight choice as future work -- the weight-ablation
benchmark explores it.

If the total work to be assigned is ``L``, node *k* should receive
``L_k = C_k * L``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.monitor.service import MonitorSnapshot
from repro.util.errors import PartitionError

__all__ = ["CapacityWeights", "CapacityCalculator"]


@dataclass(frozen=True, slots=True)
class CapacityWeights:
    """Application-dependent resource weights (w_p, w_m, w_b).

    Must be non-negative and sum to 1.  ``equal()`` reproduces the paper's
    experimental setting; the named alternates describe application types
    for the ablation study.
    """

    w_p: float = 1.0 / 3.0
    w_m: float = 1.0 / 3.0
    w_b: float = 1.0 / 3.0

    def __post_init__(self) -> None:
        for name, w in (("w_p", self.w_p), ("w_m", self.w_m), ("w_b", self.w_b)):
            if w < 0:
                raise PartitionError(f"{name} must be >= 0, got {w}")
        total = self.w_p + self.w_m + self.w_b
        if abs(total - 1.0) > 1e-9:
            raise PartitionError(
                f"weights must sum to 1, got {total} "
                f"(w_p={self.w_p}, w_m={self.w_m}, w_b={self.w_b})"
            )

    @classmethod
    def equal(cls) -> "CapacityWeights":
        """The paper's setting: all three resources equally important."""
        return cls()

    @classmethod
    def compute_bound(cls) -> "CapacityWeights":
        """CPU-dominated application profile."""
        return cls(0.8, 0.1, 0.1)

    @classmethod
    def memory_bound(cls) -> "CapacityWeights":
        """Memory-dominated application profile."""
        return cls(0.1, 0.8, 0.1)

    @classmethod
    def comm_bound(cls) -> "CapacityWeights":
        """Communication-dominated application profile."""
        return cls(0.1, 0.1, 0.8)


class CapacityCalculator:
    """Computes relative capacities from monitor snapshots."""

    def __init__(self, weights: CapacityWeights | None = None):
        self.weights = weights if weights is not None else CapacityWeights.equal()

    @staticmethod
    def _normalize(values: np.ndarray) -> np.ndarray:
        """Per-node share of the cluster total; uniform if the total is 0
        (e.g. every node out of free memory -- no information to act on)."""
        values = np.asarray(values, dtype=float)
        if (values < 0).any():
            raise PartitionError("resource availabilities must be >= 0")
        total = values.sum()
        n = len(values)
        if n == 0:
            raise PartitionError("no nodes to normalize over")
        if total <= 0:
            return np.full(n, 1.0 / n)
        return values / total

    def relative_capacities(
        self,
        snapshot: MonitorSnapshot,
        live: np.ndarray | None = None,
    ) -> np.ndarray:
        """C_k for every node; non-negative and summing to 1.

        ``live`` (optional boolean mask) restricts the normalization to the
        surviving rank set: dead nodes get exactly zero capacity and the
        remaining shares renormalize over live nodes only.  ``None`` (or an
        all-true mask) is the original fixed-rank-set computation.
        """
        if live is not None:
            live = np.asarray(live, dtype=bool)
            if live.shape != (len(snapshot.cpu),):
                raise PartitionError(
                    f"live mask has shape {live.shape}, snapshot covers "
                    f"{len(snapshot.cpu)} nodes"
                )
            if not live.any():
                raise PartitionError(
                    "no live nodes: cannot renormalize capacities"
                )
            if not live.all():
                p_hat = self._normalize(
                    np.where(live, snapshot.cpu, 0.0)[live]
                )
                m_hat = self._normalize(
                    np.where(live, snapshot.memory_mb, 0.0)[live]
                )
                b_hat = self._normalize(
                    np.where(live, snapshot.bandwidth_mbps, 0.0)[live]
                )
                w = self.weights
                c_live = w.w_p * p_hat + w.w_m * m_hat + w.w_b * b_hat
                c = np.zeros(len(live))
                c[live] = c_live / c_live.sum()
                return c
        p_hat = self._normalize(snapshot.cpu)
        m_hat = self._normalize(snapshot.memory_mb)
        b_hat = self._normalize(snapshot.bandwidth_mbps)
        w = self.weights
        c = w.w_p * p_hat + w.w_m * m_hat + w.w_b * b_hat
        # Weights and shares each sum to 1, so c sums to 1 up to rounding.
        return c / c.sum()

    def work_targets(
        self,
        snapshot: MonitorSnapshot,
        total_work: float,
        live: np.ndarray | None = None,
    ) -> np.ndarray:
        """L_k = C_k * L for every node."""
        if total_work < 0:
            raise PartitionError(f"negative total work {total_work}")
        return self.relative_capacities(snapshot, live) * total_work
