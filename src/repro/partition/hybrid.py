"""SFCHybrid: capacity-proportional spans on the space-filling curve.

An extension beyond the paper combining the strengths of its two schemes:
like ACEComposite, boxes are dealt out as *contiguous* spans of the
Hilbert-ordered list (locality: each rank's data is one curve segment, so
ghost neighbours are usually on the same or the adjacent rank); like
ACEHeterogeneous, span sizes are proportional to the relative capacities
rather than equal.

This is the natural "fix" GrACE's own partitioner would receive for
heterogeneous clusters, and the panel ablation measures what the paper's
sorted smallest-box-first assignment gains or loses against it.
"""

from __future__ import annotations

from typing import Sequence

from repro.partition.base import (
    Partitioner,
    PartitionResult,
    WorkFunction,
    WorkModel,
    as_work_model,
)
from repro.partition.composite import assign_curve_spans_columnar
from repro.partition.splitting import SplitConstraints
from repro.util.geometry import BoxList
from repro.util.sfc import sfc_order_boxes

__all__ = ["SFCHybrid"]


class SFCHybrid(Partitioner):
    """Capacity-weighted contiguous spans along a space-filling curve."""

    name = "SFCHybrid"

    def __init__(
        self,
        constraints: SplitConstraints | None = None,
        curve: str = "hilbert",
    ):
        self.constraints = constraints or SplitConstraints()
        self.curve = curve

    def partition(
        self,
        boxes: BoxList,
        capacities: Sequence[float],
        work_of: WorkFunction | WorkModel | None = None,
    ) -> PartitionResult:
        caps = self._check_inputs(boxes, capacities)
        model = as_work_model(work_of)
        total = model.total(boxes)
        targets = caps * total  # the one change vs ACEComposite
        result = PartitionResult(targets=targets, work_model=model)
        if len(boxes) == 0:
            return result
        ordered = sfc_order_boxes(boxes, curve=self.curve)
        assign_curve_spans_columnar(
            ordered, targets, model, self.constraints, result
        )
        result.validate_covers(boxes)
        return result
