"""Partitioner interface and result record."""

from __future__ import annotations

import abc
import functools
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.telemetry.spans import NULL_TRACER
from repro.util.errors import PartitionError
from repro.util.geometry import Box, BoxList

__all__ = ["WorkFunction", "default_work", "PartitionResult", "Partitioner"]

#: Work of one box, in abstract work units.
WorkFunction = Callable[[Box], float]


def default_work(box: Box, refine_factor: int = 2) -> float:
    """Berger-Oliger work model: cells times time-subcycling factor.

    Finer grids both have more cells *and* take more steps per coarse step,
    which is why the coarse level's load "cannot be ignored" but fine levels
    dominate (paper section 3.1).
    """
    return float(box.num_cells * refine_factor**box.level)


@dataclass(slots=True)
class PartitionResult:
    """Outcome of one partitioning call.

    Attributes
    ----------
    assignment:
        ``(box, rank)`` pairs covering the (possibly split) input boxes.
    targets:
        Ideal per-rank loads ``L_k`` the partitioner aimed for.
    num_splits:
        How many box splits were performed.
    """

    assignment: list[tuple[Box, int]] = field(default_factory=list)
    targets: np.ndarray = field(default_factory=lambda: np.zeros(0))
    num_splits: int = 0

    @property
    def num_ranks(self) -> int:
        return len(self.targets)

    def owners(self) -> dict[Box, int]:
        """Box -> rank mapping (boxes are unique after partitioning)."""
        return dict(self.assignment)

    def boxes(self) -> BoxList:
        return BoxList(b for b, _ in self.assignment)

    def loads(self, work_of: WorkFunction | None = None) -> np.ndarray:
        """Realized per-rank work W_k."""
        work_of = work_of or default_work
        out = np.zeros(self.num_ranks)
        for box, rank in self.assignment:
            out[rank] += work_of(box)
        return out

    def boxes_of(self, rank: int) -> BoxList:
        return BoxList(b for b, r in self.assignment if r == rank)

    def validate_covers(self, original: BoxList) -> None:
        """Check the assignment tiles exactly the input boxes.

        Total cells per level must match and assigned boxes must be
        disjoint; raises :class:`PartitionError` otherwise.
        """
        got = self.boxes()
        for level in set(original.levels) | set(got.levels):
            if got.at_level(level).total_cells != original.at_level(level).total_cells:
                raise PartitionError(
                    f"assignment lost cells at level {level}: "
                    f"{got.at_level(level).total_cells} != "
                    f"{original.at_level(level).total_cells}"
                )
        if not got.is_disjoint():
            raise PartitionError("assignment produced overlapping boxes")


def _traced_partition(impl: Callable) -> Callable:
    """Wrap a subclass's ``partition`` in a telemetry span.

    With the default :data:`~repro.telemetry.spans.NULL_TRACER` the wrapper
    costs one attribute lookup and one no-op call; with an enabled tracer
    every partition call -- including inner calls made by composite
    partitioners -- records its wall time, box/split counts and realized
    makespan of the decomposition.
    """

    @functools.wraps(impl)
    def partition(self, boxes, capacities, work_of=None):
        tracer = self.tracer
        if not tracer.enabled:
            return impl(self, boxes, capacities, work_of)
        with tracer.span(
            "partition", partitioner=self.name, num_boxes=len(boxes)
        ) as span:
            result = impl(self, boxes, capacities, work_of)
            span.set(
                num_assigned=len(result.assignment),
                num_splits=result.num_splits,
                num_ranks=result.num_ranks,
            )
        metrics = tracer.metrics
        metrics.counter("partition_calls", partitioner=self.name).inc()
        if result.num_splits:
            metrics.counter("boxes_split").inc(result.num_splits)
            tracer.event(
                "split", partitioner=self.name, count=result.num_splits
            )
        return result

    partition._telemetry_wrapped = True  # type: ignore[attr-defined]
    return partition


class Partitioner(abc.ABC):
    """Common interface: distribute a bounding-box list over ranks with
    given relative capacities.

    Subclasses implement :meth:`partition`; the base class transparently
    wraps each implementation in a telemetry span driven by the
    partitioner's ``tracer`` attribute (the shared no-op tracer unless the
    runtime attaches a real one).
    """

    #: human-readable name used in experiment reports
    name: str = "abstract"

    #: telemetry sink; the runtime replaces this when tracing is enabled
    tracer = NULL_TRACER

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        impl = cls.__dict__.get("partition")
        if impl is not None and not getattr(impl, "_telemetry_wrapped", False):
            cls.partition = _traced_partition(impl)

    @abc.abstractmethod
    def partition(
        self,
        boxes: BoxList,
        capacities: Sequence[float],
        work_of: WorkFunction | None = None,
    ) -> PartitionResult:
        """Distribute ``boxes`` over ``len(capacities)`` ranks.

        ``capacities`` are relative (summing to ~1); ``work_of`` defaults to
        :func:`default_work`.
        """

    def set_tracer(self, tracer) -> None:
        """Attach ``tracer`` to this partitioner and nested partitioners.

        Composite schemes (levelwise, hybrid) delegate to inner
        partitioners held as attributes; walking ``vars(self)`` attaches
        the tracer to the whole tree so inner partition calls show up as
        nested spans.
        """
        self.tracer = tracer
        for value in vars(self).values():
            if isinstance(value, Partitioner):
                value.set_tracer(tracer)
            elif isinstance(value, (list, tuple, dict)):
                items = value.values() if isinstance(value, dict) else value
                for item in items:
                    if isinstance(item, Partitioner):
                        item.set_tracer(tracer)

    @staticmethod
    def _check_inputs(
        boxes: BoxList, capacities: Sequence[float]
    ) -> np.ndarray:
        caps = np.asarray(capacities, dtype=float)
        if caps.ndim != 1 or len(caps) == 0:
            raise PartitionError("capacities must be a non-empty 1-D sequence")
        if (caps < 0).any():
            raise PartitionError("capacities must be non-negative")
        if caps.sum() <= 0:
            raise PartitionError("total capacity must be positive")
        return caps / caps.sum()
