"""Partitioner interface and result record."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.util.errors import PartitionError
from repro.util.geometry import Box, BoxList

__all__ = ["WorkFunction", "default_work", "PartitionResult", "Partitioner"]

#: Work of one box, in abstract work units.
WorkFunction = Callable[[Box], float]


def default_work(box: Box, refine_factor: int = 2) -> float:
    """Berger-Oliger work model: cells times time-subcycling factor.

    Finer grids both have more cells *and* take more steps per coarse step,
    which is why the coarse level's load "cannot be ignored" but fine levels
    dominate (paper section 3.1).
    """
    return float(box.num_cells * refine_factor**box.level)


@dataclass(slots=True)
class PartitionResult:
    """Outcome of one partitioning call.

    Attributes
    ----------
    assignment:
        ``(box, rank)`` pairs covering the (possibly split) input boxes.
    targets:
        Ideal per-rank loads ``L_k`` the partitioner aimed for.
    num_splits:
        How many box splits were performed.
    """

    assignment: list[tuple[Box, int]] = field(default_factory=list)
    targets: np.ndarray = field(default_factory=lambda: np.zeros(0))
    num_splits: int = 0

    @property
    def num_ranks(self) -> int:
        return len(self.targets)

    def owners(self) -> dict[Box, int]:
        """Box -> rank mapping (boxes are unique after partitioning)."""
        return dict(self.assignment)

    def boxes(self) -> BoxList:
        return BoxList(b for b, _ in self.assignment)

    def loads(self, work_of: WorkFunction | None = None) -> np.ndarray:
        """Realized per-rank work W_k."""
        work_of = work_of or default_work
        out = np.zeros(self.num_ranks)
        for box, rank in self.assignment:
            out[rank] += work_of(box)
        return out

    def boxes_of(self, rank: int) -> BoxList:
        return BoxList(b for b, r in self.assignment if r == rank)

    def validate_covers(self, original: BoxList) -> None:
        """Check the assignment tiles exactly the input boxes.

        Total cells per level must match and assigned boxes must be
        disjoint; raises :class:`PartitionError` otherwise.
        """
        got = self.boxes()
        for level in set(original.levels) | set(got.levels):
            if got.at_level(level).total_cells != original.at_level(level).total_cells:
                raise PartitionError(
                    f"assignment lost cells at level {level}: "
                    f"{got.at_level(level).total_cells} != "
                    f"{original.at_level(level).total_cells}"
                )
        if not got.is_disjoint():
            raise PartitionError("assignment produced overlapping boxes")


class Partitioner(abc.ABC):
    """Common interface: distribute a bounding-box list over ranks with
    given relative capacities."""

    #: human-readable name used in experiment reports
    name: str = "abstract"

    @abc.abstractmethod
    def partition(
        self,
        boxes: BoxList,
        capacities: Sequence[float],
        work_of: WorkFunction | None = None,
    ) -> PartitionResult:
        """Distribute ``boxes`` over ``len(capacities)`` ranks.

        ``capacities`` are relative (summing to ~1); ``work_of`` defaults to
        :func:`default_work`.
        """

    @staticmethod
    def _check_inputs(
        boxes: BoxList, capacities: Sequence[float]
    ) -> np.ndarray:
        caps = np.asarray(capacities, dtype=float)
        if caps.ndim != 1 or len(caps) == 0:
            raise PartitionError("capacities must be a non-empty 1-D sequence")
        if (caps < 0).any():
            raise PartitionError("capacities must be non-negative")
        if caps.sum() <= 0:
            raise PartitionError("total capacity must be positive")
        return caps / caps.sum()
