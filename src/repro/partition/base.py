"""Partitioner interface and result record."""

from __future__ import annotations

import abc
import functools
from typing import Callable, Sequence

import numpy as np

from repro.partition.workmodel import (
    WorkFunction,
    WorkModel,
    as_work_model,
)
from repro.telemetry.spans import NULL_TRACER
from repro.util.errors import PartitionError
from repro.util.geometry import Box, BoxList

__all__ = [
    "WorkFunction",
    "WorkModel",
    "as_work_model",
    "default_work",
    "PartitionResult",
    "Partitioner",
]


def default_work(box: Box, refine_factor: int = 2) -> float:
    """Berger-Oliger work model: cells times time-subcycling factor.

    Finer grids both have more cells *and* take more steps per coarse step,
    which is why the coarse level's load "cannot be ignored" but fine levels
    dominate (paper section 3.1).  This is the per-box form of the default
    :class:`~repro.partition.workmodel.WorkModel`; hot paths use the
    model's cached vector instead of calling this in a loop.
    """
    return float(box.num_cells * refine_factor**box.level)


class PartitionResult:
    """Outcome of one partitioning call.

    The assignment exists in one (or both) of two forms:

    - **pairs** -- the legacy ``list[(Box, rank)]`` exposed as
      :attr:`assignment`; mutable, and what object-path callers build.
    - **columns** -- a :class:`~repro.util.geometry.BoxList` plus an
      aligned rank array, installed by the columnar partitioners via
      :meth:`set_columns`.  The pair list then materializes lazily on
      first :attr:`assignment` access, so a repartition that only reads
      :meth:`loads` / :meth:`rank_vector` / :meth:`boxes` never builds
      per-box Python objects.

    Attributes
    ----------
    assignment:
        ``(box, rank)`` pairs covering the (possibly split) input boxes.
    targets:
        Ideal per-rank loads ``L_k`` the partitioner aimed for.
    num_splits:
        How many box splits were performed.
    work_model:
        The :class:`~repro.partition.workmodel.WorkModel` the partitioner
        priced boxes with; :meth:`loads` and :meth:`work_vector` default
        to it so load accounting reuses the partitioner's cached vectors.
    """

    __slots__ = (
        "_assignment",
        "targets",
        "num_splits",
        "work_model",
        "_ranks",
        "_boxes",
    )

    def __init__(
        self,
        assignment: list[tuple[Box, int]] | None = None,
        targets: np.ndarray | None = None,
        num_splits: int = 0,
        work_model: WorkModel | None = None,
    ) -> None:
        self._assignment: list[tuple[Box, int]] | None = (
            [] if assignment is None else assignment
        )
        self.targets: np.ndarray = (
            np.zeros(0) if targets is None else targets
        )
        self.num_splits = num_splits
        self.work_model = work_model
        self._ranks: np.ndarray | None = None
        self._boxes: BoxList | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionResult({self.num_assigned()} boxes, "
            f"{self.num_ranks} ranks, {self.num_splits} splits)"
        )

    def set_columns(self, boxes: "BoxList | object", ranks: np.ndarray) -> None:
        """Install the assignment as columnar data.

        ``boxes`` is a :class:`~repro.util.geometry.BoxList` (or
        ``BoxArray``, wrapped transparently) and ``ranks`` an aligned
        integer array.  The ``(box, rank)`` pair list materializes lazily
        if some caller still reads :attr:`assignment`.
        """
        from repro.util.geometry import BoxArray

        if isinstance(boxes, BoxArray):
            boxes = BoxList.from_array(boxes)
        ranks = np.ascontiguousarray(ranks, dtype=np.intp)
        if len(ranks) != len(boxes):
            raise PartitionError(
                f"rank vector length {len(ranks)} != box count {len(boxes)}"
            )
        ranks.setflags(write=False)
        self._assignment = None
        self._boxes = boxes
        self._ranks = ranks

    @property
    def assignment(self) -> list[tuple[Box, int]]:
        """``(box, rank)`` pairs; built lazily from the columns."""
        pairs = self._assignment
        if pairs is None:
            pairs = list(zip(self._boxes, self._ranks.tolist()))
            self._assignment = pairs
        return pairs

    @assignment.setter
    def assignment(self, pairs: list[tuple[Box, int]]) -> None:
        self._assignment = pairs
        self._ranks = None
        self._boxes = None

    def num_assigned(self) -> int:
        """Number of assigned boxes, without materializing pair objects."""
        if self._assignment is not None:
            return len(self._assignment)
        return len(self._boxes) if self._boxes is not None else 0

    @property
    def num_ranks(self) -> int:
        return len(self.targets)

    def owners(self) -> dict[Box, int]:
        """Box -> rank mapping (boxes are unique after partitioning)."""
        return dict(self.assignment)

    def boxes(self) -> BoxList:
        """The assigned boxes (memoized once the assignment is final)."""
        boxes = self._boxes
        if boxes is None or len(boxes) != self.num_assigned():
            boxes = BoxList(b for b, _ in self.assignment)
            self._boxes = boxes
        return boxes

    def _model(self, work_of: WorkFunction | WorkModel | None) -> WorkModel:
        if work_of is None and self.work_model is not None:
            return self.work_model
        return as_work_model(work_of)

    def rank_vector(self) -> np.ndarray:
        """Assigned rank per box, aligned with :attr:`assignment`."""
        ranks = self._ranks
        if ranks is None or len(ranks) != self.num_assigned():
            ranks = np.fromiter(
                (r for _, r in self.assignment),
                dtype=np.intp,
                count=len(self.assignment),
            )
            ranks.setflags(write=False)
            self._ranks = ranks
        return ranks

    def work_vector(
        self, work_of: WorkFunction | WorkModel | None = None
    ) -> np.ndarray:
        """Per-box work aligned with :attr:`assignment` (cached vector)."""
        return self._model(work_of).vector(self.boxes())

    def loads(
        self, work_of: WorkFunction | WorkModel | None = None
    ) -> np.ndarray:
        """Realized per-rank work W_k, from the cached work vector."""
        if not self.num_assigned():
            return np.zeros(self.num_ranks)
        return np.bincount(
            self.rank_vector(),
            weights=self.work_vector(work_of),
            minlength=self.num_ranks,
        )

    def boxes_of(self, rank: int) -> BoxList:
        if self._assignment is None:
            idx = np.flatnonzero(self._ranks == rank)
            return self._boxes.take(idx)
        return BoxList(b for b, r in self.assignment if r == rank)

    def validate_covers(self, original: BoxList) -> None:
        """Check the assignment tiles exactly the input boxes.

        Total cells per level must match and assigned boxes must be
        disjoint; raises :class:`PartitionError` otherwise.  Runs on the
        cached column views of both lists -- no per-box objects.
        """
        got = self.boxes()
        got_cells = got.cells_by_level()
        orig_cells = original.cells_by_level()
        for level in sorted(set(got_cells) | set(orig_cells)):
            if got_cells.get(level, 0) != orig_cells.get(level, 0):
                raise PartitionError(
                    f"assignment lost cells at level {level}: "
                    f"{got_cells.get(level, 0)} != "
                    f"{orig_cells.get(level, 0)}"
                )
        if not got.is_disjoint():
            raise PartitionError("assignment produced overlapping boxes")


def _traced_partition(impl: Callable) -> Callable:
    """Wrap a subclass's ``partition`` in a telemetry span.

    With the default :data:`~repro.telemetry.spans.NULL_TRACER` the wrapper
    costs one attribute lookup and one no-op call; with an enabled tracer
    every partition call -- including inner calls made by composite
    partitioners -- records its wall time, box/split counts and realized
    makespan of the decomposition.
    """

    @functools.wraps(impl)
    def partition(self, boxes, capacities, work_of=None):
        tracer = self.tracer
        if not tracer.enabled:
            return impl(self, boxes, capacities, work_of)
        with tracer.span(
            "partition", partitioner=self.name, num_boxes=len(boxes)
        ) as span:
            result = impl(self, boxes, capacities, work_of)
            span.set(
                num_assigned=result.num_assigned(),
                num_splits=result.num_splits,
                num_ranks=result.num_ranks,
            )
        metrics = tracer.metrics
        metrics.counter("partition_calls", partitioner=self.name).inc()
        if result.num_splits:
            metrics.counter("boxes_split").inc(result.num_splits)
            tracer.event(
                "split", partitioner=self.name, count=result.num_splits
            )
        return result

    partition._telemetry_wrapped = True  # type: ignore[attr-defined]
    return partition


class Partitioner(abc.ABC):
    """Common interface: distribute a bounding-box list over ranks with
    given relative capacities.

    Subclasses implement :meth:`partition`; the base class transparently
    wraps each implementation in a telemetry span driven by the
    partitioner's ``tracer`` attribute (the shared no-op tracer unless the
    runtime attaches a real one).
    """

    #: human-readable name used in experiment reports
    name: str = "abstract"

    #: telemetry sink; the runtime replaces this when tracing is enabled
    tracer = NULL_TRACER

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        impl = cls.__dict__.get("partition")
        if impl is not None and not getattr(impl, "_telemetry_wrapped", False):
            cls.partition = _traced_partition(impl)

    @abc.abstractmethod
    def partition(
        self,
        boxes: BoxList,
        capacities: Sequence[float],
        work_of: WorkFunction | WorkModel | None = None,
    ) -> PartitionResult:
        """Distribute ``boxes`` over ``len(capacities)`` ranks.

        ``capacities`` are relative (summing to ~1); ``work_of`` may be a
        :class:`~repro.partition.workmodel.WorkModel` (preferred: its
        cached vector prices the whole box list at once), a legacy per-box
        callable (adapted transparently), or ``None`` for the default
        Berger-Oliger model.
        """

    def set_tracer(self, tracer) -> None:
        """Attach ``tracer`` to this partitioner and nested partitioners.

        Composite schemes (levelwise, hybrid) delegate to inner
        partitioners held as attributes; walking ``vars(self)`` attaches
        the tracer to the whole tree so inner partition calls show up as
        nested spans.
        """
        self.tracer = tracer
        for value in vars(self).values():
            if isinstance(value, Partitioner):
                value.set_tracer(tracer)
            elif isinstance(value, (list, tuple, dict)):
                items = value.values() if isinstance(value, dict) else value
                for item in items:
                    if isinstance(item, Partitioner):
                        item.set_tracer(tracer)

    @staticmethod
    def _check_inputs(
        boxes: BoxList, capacities: Sequence[float]
    ) -> np.ndarray:
        caps = np.asarray(capacities, dtype=float)
        if caps.ndim != 1 or len(caps) == 0:
            raise PartitionError("capacities must be a non-empty 1-D sequence")
        if (caps < 0).any():
            raise PartitionError("capacities must be non-negative")
        if caps.sum() <= 0:
            raise PartitionError("total capacity must be positive")
        return caps / caps.sum()
