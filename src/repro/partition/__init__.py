"""Partitioning and load balancing -- the paper's core contribution.

- :mod:`repro.partition.capacity` -- the relative-capacity metric
  ``C_k = w_p P_k + w_m M_k + w_b B_k`` over normalized CPU / memory /
  bandwidth availabilities (section 5.2);
- :mod:`repro.partition.splitting` -- constrained box splitting: always
  along the longest axis (aspect-ratio control), never below the minimum
  box size, optionally snapped to refinement-aligned planes;
- :mod:`repro.partition.heterogeneous` -- **ACEHeterogeneous**, the
  system-sensitive partitioner (section 5.3);
- :mod:`repro.partition.composite` -- **ACEComposite**, GrACE's default
  SFC-based equal-work partitioner (the paper's baseline);
- :mod:`repro.partition.greedy` -- a capacity-weighted LPT baseline used
  in ablations;
- :mod:`repro.partition.metrics` -- the load-imbalance metric
  ``I_k = |W_k - L_k| / L_k * 100`` (section 6.2.2, eq. 2).
"""

from repro.partition.base import Partitioner, PartitionResult
from repro.partition.capacity import CapacityCalculator, CapacityWeights
from repro.partition.composite import ACEComposite
from repro.partition.graphpart import GraphPartitioner, build_box_graph
from repro.partition.greedy import GreedyLPT
from repro.partition.heterogeneous import ACEHeterogeneous
from repro.partition.hybrid import SFCHybrid
from repro.partition.levelwise import LevelPartitioner
from repro.partition.metrics import (
    imbalance_pct,
    load_imbalance,
    makespan_estimate,
)
from repro.partition.splitting import SplitConstraints
from repro.partition.workmodel import (
    CallableWorkModel,
    WorkFunction,
    WorkModel,
    as_work_model,
)

__all__ = [
    "Partitioner",
    "PartitionResult",
    "CapacityCalculator",
    "CapacityWeights",
    "ACEHeterogeneous",
    "ACEComposite",
    "GreedyLPT",
    "SFCHybrid",
    "GraphPartitioner",
    "build_box_graph",
    "LevelPartitioner",
    "SplitConstraints",
    "WorkFunction",
    "WorkModel",
    "CallableWorkModel",
    "as_work_model",
    "imbalance_pct",
    "load_imbalance",
    "makespan_estimate",
]
