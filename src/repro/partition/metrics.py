"""Partition-quality metrics.

``load_imbalance`` is the paper's eq. (2): for rank *k* with realized work
``W_k`` and ideal capacity-proportional load ``L_k``,

    I_k = |W_k - L_k| / L_k * 100  [%].

``makespan_estimate`` prices a partition against effective node speeds:
the slowest rank's compute time dominates a bulk-synchronous iteration.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.partition.base import PartitionResult, WorkFunction, WorkModel
from repro.util.errors import PartitionError
from repro.util.geometry import BoxArray, BoxList

__all__ = [
    "imbalance_pct",
    "load_imbalance",
    "makespan_estimate",
    "redistribution_volume",
    "redistribution_volume_columns",
]


def redistribution_volume_columns(
    prev_boxes: BoxList | BoxArray | None,
    prev_ranks: np.ndarray | None,
    new_boxes: BoxList | BoxArray | None,
    new_ranks: np.ndarray | None,
    bytes_per_cell: float = 8.0,
) -> dict[tuple[int, int], float]:
    """Columnar :func:`redistribution_volume`: box columns in, dict out.

    Candidate overlap pairs are generated per level with an axis-0 sweep
    (sorted previous lower corners + binary search, the same pruning as
    ``BoxArray.is_disjoint``) and their intersection volumes computed in
    one broadcast.  The surviving pairs are then accumulated into the
    ``(old_rank, new_rank)`` dict *in the object walk's order* -- new box
    major, previous-list position minor -- so both the per-key float sums
    and the dict's key insertion order (which
    :meth:`~repro.comm.simmpi.SimMpi.exchange_time` iterates) are
    byte-identical to the pair-based path.
    """
    volumes: dict[tuple[int, int], float] = {}
    if prev_boxes is None or new_boxes is None:
        return volumes
    parr = prev_boxes.array if isinstance(prev_boxes, BoxList) else prev_boxes
    narr = new_boxes.array if isinstance(new_boxes, BoxList) else new_boxes
    if len(parr) == 0 or len(narr) == 0:
        return volumes
    pranks = np.ascontiguousarray(prev_ranks, dtype=np.int64)
    nranks = np.ascontiguousarray(new_ranks, dtype=np.int64)
    pair_new: list[np.ndarray] = []
    pair_prev: list[np.ndarray] = []
    pair_cells: list[np.ndarray] = []
    for lvl in np.unique(narr.level).tolist():
        ppos = np.flatnonzero(parr.level == lvl)
        if not ppos.size:
            continue
        npos = np.flatnonzero(narr.level == lvl)
        plo = parr.lower[ppos]
        pup = parr.upper[ppos]
        nlo = narr.lower[npos]
        nup = narr.upper[npos]
        # Prune on axis 0: previous boxes sorted by lower corner; each new
        # box can only intersect the prefix with p_lo0 < n_up0.  The exact
        # extent test below drops the false positives.
        porder = np.argsort(plo[:, 0], kind="stable")
        hi = np.searchsorted(plo[porder, 0], nup[:, 0], side="left")
        tot = int(hi.sum())
        if not tot:
            continue
        ni = np.repeat(np.arange(len(npos)), hi)
        offsets = np.concatenate(([0], np.cumsum(hi)[:-1]))
        pj = porder[np.arange(tot) - np.repeat(offsets, hi)]
        inter_lo = np.maximum(plo[pj], nlo[ni])
        inter_up = np.minimum(pup[pj], nup[ni])
        ext = inter_up - inter_lo
        gi = npos[ni]
        gj = ppos[pj]
        ok = (ext > 0).all(axis=1) & (pranks[gj] != nranks[gi])
        if not bool(ok.any()):
            continue
        pair_new.append(gi[ok])
        pair_prev.append(gj[ok])
        pair_cells.append(np.prod(ext[ok], axis=1))
    if not pair_new:
        return volumes
    gi = np.concatenate(pair_new)
    gj = np.concatenate(pair_prev)
    cells = np.concatenate(pair_cells)
    order = np.lexsort((gj, gi))  # new-box major, previous position minor
    for old_rank, new_rank, c in zip(
        pranks[gj[order]].tolist(),
        nranks[gi[order]].tolist(),
        cells[order].tolist(),
    ):
        key = (old_rank, new_rank)
        volumes[key] = volumes.get(key, 0.0) + c * bytes_per_cell
    return volumes


def redistribution_volume(
    prev_assignment: Sequence[tuple],
    new_assignment: Sequence[tuple],
    bytes_per_cell: float = 8.0,
) -> dict[tuple[int, int], float]:
    """Bytes that must move between ranks to realize a new assignment.

    Computed geometrically: for every cell of the new assignment that was
    previously owned by a different rank, its payload crosses the
    ``(old_owner, new_owner)`` link.  This captures re-split boxes correctly
    (block identity changes, but only the cells whose *owner* changed
    actually travel), which is what redistribution costs on a real cluster.
    Cells with no previous owner (newly refined regions) are free -- their
    data is prolonged locally from the parent level.

    The pair lists are lowered to columns and routed through
    :func:`redistribution_volume_columns`; result (values, key order,
    accumulation order) is identical to the historical per-pair walk.
    """
    if not len(prev_assignment) or not len(new_assignment):
        return {}
    prev_boxes = BoxList(b for b, _ in prev_assignment)
    new_boxes = BoxList(b for b, _ in new_assignment)
    prev_ranks = np.fromiter(
        (r for _, r in prev_assignment),
        dtype=np.int64,
        count=len(prev_boxes),
    )
    new_ranks = np.fromiter(
        (r for _, r in new_assignment),
        dtype=np.int64,
        count=len(new_boxes),
    )
    return redistribution_volume_columns(
        prev_boxes, prev_ranks, new_boxes, new_ranks, bytes_per_cell
    )


def imbalance_pct(
    loads: Sequence[float], targets: Sequence[float]
) -> np.ndarray:
    """Eq. (2) on raw vectors: ``|W_k - L_k| / L_k * 100`` elementwise.

    A zero-target rank is perfectly balanced only when idle (0 %), and
    infinitely imbalanced otherwise.  Both runtimes and
    :func:`load_imbalance` derive their imbalance figures from this one
    vectorized form.
    """
    loads = np.asarray(loads, dtype=float)
    targets = np.asarray(targets, dtype=float)
    out = np.zeros(len(targets))
    pos = targets > 0
    out[pos] = np.abs(loads[pos] - targets[pos]) / targets[pos] * 100.0
    out[~pos & (loads != 0)] = float("inf")
    return out


def load_imbalance(
    result: PartitionResult,
    work_of: WorkFunction | WorkModel | None = None,
    targets: Sequence[float] | None = None,
) -> np.ndarray:
    """Per-rank percentage imbalance I_k.

    By default measured against the result's own targets; pass ``targets``
    to measure against external ideals -- the paper's fig. 10 judges *both*
    schemes against the capacity-proportional loads ``L_k = C_k * L``, which
    is what makes the capacity-blind default score badly on a loaded
    cluster even though it met its own equal-share goals.
    """
    targets = result.targets if targets is None else np.asarray(targets, float)
    if len(targets) == 0:
        raise PartitionError("result has no targets")
    if len(targets) != result.num_ranks:
        raise PartitionError(
            f"{len(targets)} targets for {result.num_ranks} ranks"
        )
    return imbalance_pct(result.loads(work_of), targets)


def makespan_estimate(
    result: PartitionResult,
    effective_speeds: Sequence[float],
    work_of: WorkFunction | WorkModel | None = None,
) -> float:
    """Seconds the slowest rank needs to chew through its assigned work."""
    speeds = np.asarray(effective_speeds, dtype=float)
    if len(speeds) != result.num_ranks:
        raise PartitionError(
            f"{len(speeds)} speeds for {result.num_ranks} ranks"
        )
    if (speeds <= 0).any():
        raise PartitionError("effective speeds must be positive")
    loads = result.loads(work_of)
    return float((loads / speeds).max())
