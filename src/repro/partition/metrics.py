"""Partition-quality metrics.

``load_imbalance`` is the paper's eq. (2): for rank *k* with realized work
``W_k`` and ideal capacity-proportional load ``L_k``,

    I_k = |W_k - L_k| / L_k * 100  [%].

``makespan_estimate`` prices a partition against effective node speeds:
the slowest rank's compute time dominates a bulk-synchronous iteration.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.partition.base import PartitionResult, WorkFunction, WorkModel
from repro.util.errors import PartitionError

__all__ = [
    "imbalance_pct",
    "load_imbalance",
    "makespan_estimate",
    "redistribution_volume",
]


def redistribution_volume(
    prev_assignment: Sequence[tuple],
    new_assignment: Sequence[tuple],
    bytes_per_cell: float = 8.0,
) -> dict[tuple[int, int], float]:
    """Bytes that must move between ranks to realize a new assignment.

    Computed geometrically: for every cell of the new assignment that was
    previously owned by a different rank, its payload crosses the
    ``(old_owner, new_owner)`` link.  This captures re-split boxes correctly
    (block identity changes, but only the cells whose *owner* changed
    actually travel), which is what redistribution costs on a real cluster.
    Cells with no previous owner (newly refined regions) are free -- their
    data is prolonged locally from the parent level.
    """
    volumes: dict[tuple[int, int], float] = {}
    prev_by_level: dict[int, list[tuple]] = {}
    for box, rank in prev_assignment:
        prev_by_level.setdefault(box.level, []).append((box, rank))
    for box, new_rank in new_assignment:
        for old_box, old_rank in prev_by_level.get(box.level, ()):
            if old_rank == new_rank:
                continue
            inter = box.intersection(old_box)
            if inter is not None:
                key = (old_rank, new_rank)
                volumes[key] = (
                    volumes.get(key, 0.0) + inter.num_cells * bytes_per_cell
                )
    return volumes


def imbalance_pct(
    loads: Sequence[float], targets: Sequence[float]
) -> np.ndarray:
    """Eq. (2) on raw vectors: ``|W_k - L_k| / L_k * 100`` elementwise.

    A zero-target rank is perfectly balanced only when idle (0 %), and
    infinitely imbalanced otherwise.  Both runtimes and
    :func:`load_imbalance` derive their imbalance figures from this one
    vectorized form.
    """
    loads = np.asarray(loads, dtype=float)
    targets = np.asarray(targets, dtype=float)
    out = np.zeros(len(targets))
    pos = targets > 0
    out[pos] = np.abs(loads[pos] - targets[pos]) / targets[pos] * 100.0
    out[~pos & (loads != 0)] = float("inf")
    return out


def load_imbalance(
    result: PartitionResult,
    work_of: WorkFunction | WorkModel | None = None,
    targets: Sequence[float] | None = None,
) -> np.ndarray:
    """Per-rank percentage imbalance I_k.

    By default measured against the result's own targets; pass ``targets``
    to measure against external ideals -- the paper's fig. 10 judges *both*
    schemes against the capacity-proportional loads ``L_k = C_k * L``, which
    is what makes the capacity-blind default score badly on a loaded
    cluster even though it met its own equal-share goals.
    """
    targets = result.targets if targets is None else np.asarray(targets, float)
    if len(targets) == 0:
        raise PartitionError("result has no targets")
    if len(targets) != result.num_ranks:
        raise PartitionError(
            f"{len(targets)} targets for {result.num_ranks} ranks"
        )
    return imbalance_pct(result.loads(work_of), targets)


def makespan_estimate(
    result: PartitionResult,
    effective_speeds: Sequence[float],
    work_of: WorkFunction | WorkModel | None = None,
) -> float:
    """Seconds the slowest rank needs to chew through its assigned work."""
    speeds = np.asarray(effective_speeds, dtype=float)
    if len(speeds) != result.num_ranks:
        raise PartitionError(
            f"{len(speeds)} speeds for {result.num_ranks} ranks"
        )
    if (speeds <= 0).any():
        raise PartitionError("effective speeds must be positive")
    loads = result.loads(work_of)
    return float((loads / speeds).max())
