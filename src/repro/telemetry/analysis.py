"""Runtime health: per-iteration snapshots and anomaly detection.

The tracer records *what happened*; this module decides *whether it was
healthy*.  :class:`HealthMonitor` subscribes to a live :class:`Tracer`
through its span-close observer hook (or replays an exported JSONL trace)
and derives one :class:`HealthSnapshot` per iteration of each traced run:

- residual load imbalance against the paper's 40 % bound (section 4: the
  partitioning framework keeps imbalance "within 40 %" on a loaded
  heterogeneous cluster);
- per-node capacity drift between consecutive sensings;
- sensing staleness -- simulated seconds since the monitor last probed;
- probe-overhead fraction -- cumulative sensing cost over elapsed time
  (the ~0.5 s/node NWS query cost of section 6.1.4);
- migration churn per iteration;
- a per-phase time breakdown (compute / ghost-exchange / sync).

Snapshots feed pluggable anomaly detectors.  Two families ship:
:class:`ThresholdRule` (a predicate on one snapshot field) and
:class:`RollingZScore` (iteration-duration spikes against a rolling
window).  Detected anomalies become structured :class:`HealthEvent`
records, which the monitor also emits into the trace as instant
``health.<kind>`` events so every exporter -- JSONL, Chrome trace, the
HTML dashboard -- carries them.

Everything is pure stdlib; like the rest of the telemetry package this
module must stay importable anywhere.  A :class:`HealthMonitor` that is
never attached costs nothing, and attaching one does not perturb the
simulation: analysis is read-only over closed spans.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.telemetry.spans import NullTracer, Span, Tracer

__all__ = [
    "PAPER_IMBALANCE_BOUND_PCT",
    "HealthSnapshot",
    "HealthEvent",
    "AnomalyDetector",
    "ThresholdRule",
    "RollingZScore",
    "default_detectors",
    "HealthMonitor",
    "analyze_records",
    "fault_summary",
]

#: The paper's residual-imbalance bound: the heterogeneous partitioner
#: keeps per-rank imbalance within 40 % on a loaded cluster (section 4).
PAPER_IMBALANCE_BOUND_PCT = 40.0

#: Phase names folded into a snapshot's per-phase breakdown.
_RANK_PHASES = ("compute", "ghost-exchange", "sync")


@dataclass(slots=True)
class HealthSnapshot:
    """Derived health state at the end of one iteration.

    ``None`` fields mean the trace did not carry the signal (e.g. an
    iteration before the first repartition has no imbalance yet).
    """

    pid: int
    run_label: str
    iteration: int
    start_sim: float
    end_sim: float
    duration_s: float
    epoch: int | None = None
    imbalance_pct: float | None = None
    max_imbalance_pct: float | None = None
    staleness_s: float | None = None
    probe_overhead_fraction: float = 0.0
    sensing_seconds_total: float = 0.0
    migration_bytes: float = 0.0
    migration_seconds: float = 0.0
    capacities: tuple[float, ...] | None = None
    capacity_drift: float | None = None
    phase_seconds: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "run_label": self.run_label,
            "iteration": self.iteration,
            "epoch": self.epoch,
            "start_sim": self.start_sim,
            "end_sim": self.end_sim,
            "duration_s": self.duration_s,
            "imbalance_pct": self.imbalance_pct,
            "max_imbalance_pct": self.max_imbalance_pct,
            "staleness_s": self.staleness_s,
            "probe_overhead_fraction": self.probe_overhead_fraction,
            "sensing_seconds_total": self.sensing_seconds_total,
            "migration_bytes": self.migration_bytes,
            "migration_seconds": self.migration_seconds,
            "capacities": (
                None if self.capacities is None else list(self.capacities)
            ),
            "capacity_drift": self.capacity_drift,
            "phase_seconds": dict(self.phase_seconds),
        }


@dataclass(slots=True)
class HealthEvent:
    """One detected anomaly (or notable condition)."""

    kind: str  # e.g. "imbalance_bound", "duration_spike"
    severity: str  # "info" | "warning" | "critical"
    message: str
    pid: int
    iteration: int
    sim_time: float
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
            "pid": self.pid,
            "iteration": self.iteration,
            "sim_time": self.sim_time,
            "attributes": dict(self.attributes),
        }


class AnomalyDetector:
    """Base detector: sees each run's snapshots in iteration order.

    Subclasses override :meth:`observe`; stateful detectors also override
    :meth:`reset`, which the monitor calls once per traced run so rolling
    state never leaks across runs.
    """

    def reset(self) -> None:
        pass

    def observe(self, snapshot: HealthSnapshot) -> list[HealthEvent]:
        raise NotImplementedError


class ThresholdRule(AnomalyDetector):
    """Flag snapshots whose ``field`` exceeds (or dips below) a bound.

    Parameters
    ----------
    field_name:
        Attribute of :class:`HealthSnapshot` to test; ``None`` values
        never fire.
    threshold:
        The bound.
    kind / severity / message:
        Event identity; ``message`` may use ``{value}`` and
        ``{threshold}`` placeholders.
    above:
        ``True`` (default) fires on ``value > threshold``; ``False`` on
        ``value < threshold``.
    warmup:
        Skip snapshots whose iteration index is below this.  Cumulative
        ratios (probe-overhead fraction) are trivially extreme in the
        first iterations; a warmup keeps them from crying wolf at t=0.
    """

    def __init__(
        self,
        field_name: str,
        threshold: float,
        kind: str,
        severity: str = "warning",
        message: str | None = None,
        above: bool = True,
        warmup: int = 0,
    ):
        self.field_name = field_name
        self.threshold = float(threshold)
        self.kind = kind
        self.severity = severity
        self.above = above
        self.warmup = warmup
        self.message = message or (
            f"{field_name} {'above' if above else 'below'} "
            f"{{threshold:g}} (got {{value:.3g}})"
        )

    def observe(self, snapshot: HealthSnapshot) -> list[HealthEvent]:
        if snapshot.iteration < self.warmup:
            return []
        value = getattr(snapshot, self.field_name, None)
        if value is None:
            return []
        value = float(value)
        fired = value > self.threshold if self.above else value < self.threshold
        if not fired:
            return []
        return [
            HealthEvent(
                kind=self.kind,
                severity=self.severity,
                message=self.message.format(
                    value=value, threshold=self.threshold
                ),
                pid=snapshot.pid,
                iteration=snapshot.iteration,
                sim_time=snapshot.end_sim,
                attributes={
                    "field": self.field_name,
                    "value": value,
                    "threshold": self.threshold,
                },
            )
        ]


class RollingZScore(AnomalyDetector):
    """Spike detector: z-score of a field against a rolling window.

    Defaults target iteration duration -- a sudden slowdown means the
    decomposition no longer matches the cluster (external load landed, a
    node degraded) before the imbalance metric can even be recomputed at
    the next regrid.

    Two guards keep a deterministic simulation from false-positives:

    - the sigma used is floored at ``rel_floor`` of the rolling mean, so
      a zero-variance window (identical iterations) cannot produce
      astronomic z-scores for sub-percent wiggles;
    - when snapshots carry an ``epoch`` (the runtime stamps one per
      repartition), the window resets on epoch change -- a regrid
      legitimately shifts iteration cost, and comparing across the shift
      would flag every regrid as an anomaly.
    """

    def __init__(
        self,
        field_name: str = "duration_s",
        window: int = 8,
        z_threshold: float = 3.0,
        min_history: int = 3,
        rel_floor: float = 0.05,
        kind: str | None = None,
        severity: str = "warning",
        reset_on_epoch: bool = True,
    ):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if min_history < 2:
            raise ValueError(f"min_history must be >= 2, got {min_history}")
        self.field_name = field_name
        self.window = window
        self.z_threshold = float(z_threshold)
        self.min_history = min_history
        self.rel_floor = float(rel_floor)
        self.kind = kind or f"{field_name}_spike"
        self.severity = severity
        self.reset_on_epoch = reset_on_epoch
        self._history: list[float] = []
        self._epoch: int | None = None

    def reset(self) -> None:
        self._history = []
        self._epoch = None

    def observe(self, snapshot: HealthSnapshot) -> list[HealthEvent]:
        value = getattr(snapshot, self.field_name, None)
        if value is None:
            return []
        if self.reset_on_epoch and snapshot.epoch != self._epoch:
            self._epoch = snapshot.epoch
            self._history = []
        value = float(value)
        events: list[HealthEvent] = []
        history = self._history
        if len(history) >= self.min_history:
            mean = sum(history) / len(history)
            var = sum((x - mean) ** 2 for x in history) / len(history)
            sigma = max(math.sqrt(var), abs(mean) * self.rel_floor, 1e-12)
            z = (value - mean) / sigma
            if abs(z) >= self.z_threshold:
                direction = "spike" if z > 0 else "drop"
                events.append(
                    HealthEvent(
                        kind=self.kind,
                        severity=self.severity,
                        message=(
                            f"{self.field_name} {direction}: {value:.4g} is "
                            f"{z:+.1f} sigma from rolling mean {mean:.4g}"
                        ),
                        pid=snapshot.pid,
                        iteration=snapshot.iteration,
                        sim_time=snapshot.end_sim,
                        attributes={
                            "field": self.field_name,
                            "value": value,
                            "zscore": z,
                            "window_mean": mean,
                            "window_sigma": sigma,
                        },
                    )
                )
        history.append(value)
        if len(history) > self.window:
            history.pop(0)
        return events


def default_detectors() -> list[AnomalyDetector]:
    """The stock detector suite, fresh instances each call.

    - mean residual imbalance beyond the paper's 40 % bound (critical --
      the partitioner is no longer delivering its core guarantee);
    - probe overhead above 15 % of elapsed time (the sensing frequency is
      mis-tuned, Table III territory);
    - capacity drift above 0.25 between sensings (the cluster moved a lot
      while we were not looking);
    - iteration-duration spikes at 3 sigma over a rolling window.
    """
    return [
        ThresholdRule(
            "imbalance_pct",
            PAPER_IMBALANCE_BOUND_PCT,
            kind="imbalance_bound",
            severity="critical",
            message=(
                "mean residual imbalance {value:.1f}% exceeds the paper's "
                "{threshold:.0f}% bound"
            ),
        ),
        ThresholdRule(
            "probe_overhead_fraction",
            0.15,
            kind="probe_overhead",
            severity="warning",
            warmup=5,  # the fraction is cumulative; t=0 is always extreme
            message=(
                "sensing overhead is {value:.1%} of elapsed time "
                "(bound {threshold:.0%}); lower the sensing frequency"
            ),
        ),
        ThresholdRule(
            "capacity_drift",
            0.25,
            kind="capacity_drift",
            severity="warning",
            message=(
                "relative capacities moved {value:.2f} (L-inf) between "
                "sensings (bound {threshold:.2f}); sense more often"
            ),
        ),
        RollingZScore("duration_s", kind="duration_spike"),
    ]


# ----------------------------------------------------------------------
def fault_summary(events: Iterable[Any]) -> dict[str, Any]:
    """Aggregate ``fault.*`` / ``recovery.*`` instant events.

    Accepts live :class:`~repro.telemetry.spans.TraceEvent` objects or
    parsed JSONL record dicts (anything with ``name``/``attributes``), so
    the same counters back the attached monitor, the dashboard and the
    ``repro chaos`` report.  ``time_to_recover_s`` collects the per-event
    latency that ``recovery.complete`` carries: simulated seconds from
    detecting the dead rank set to running repartitioned over survivors
    (restore I/O and evacuation included, replayed steps excluded).
    """
    counts: dict[str, int] = {}
    recover_times: list[float] = []
    for ev in events:
        if isinstance(ev, dict):
            if ev.get("type", "event") != "event":
                continue
            name = str(ev.get("name", ""))
            attrs = ev.get("attributes") or {}
        else:
            name = getattr(ev, "name", "")
            attrs = getattr(ev, "attributes", None) or {}
        if not name.startswith(("fault.", "recovery.")):
            continue
        counts[name] = counts.get(name, 0) + 1
        if name == "recovery.complete":
            latency = attrs.get("recovery_seconds")
            if latency is not None:
                recover_times.append(float(latency))
    num_faults = sum(n for k, n in counts.items() if k.startswith("fault."))
    num_recoveries = sum(
        n for k, n in counts.items() if k.startswith("recovery.")
    )
    return {
        "counts": counts,
        "num_fault_events": num_faults,
        "num_recovery_events": num_recoveries,
        "time_to_recover_s": recover_times,
        "mean_time_to_recover_s": (
            sum(recover_times) / len(recover_times) if recover_times else None
        ),
    }


def _attr_float(attrs: dict[str, Any], *names: str) -> float | None:
    for name in names:
        value = attrs.get(name)
        if value is not None:
            try:
                return float(value)
            except (TypeError, ValueError):
                return None
    return None


class _RunAccumulator:
    """Raw per-run span buffers, grouped as they close."""

    __slots__ = ("label", "iterations", "senses", "migrations", "phases")

    def __init__(self, label: str):
        self.label = label
        self.iterations: list[Span] = []
        self.senses: list[Span] = []
        self.migrations: list[Span] = []
        self.phases: list[Span] = []


def _analyze_run(pid: int, acc: _RunAccumulator) -> list[HealthSnapshot]:
    """Fold one run's buffered spans into iteration snapshots.

    Order-independent: spans are matched by simulated time, not arrival
    order, so a live tracer feed and a re-sorted JSONL replay produce the
    same snapshots.
    """
    iterations = sorted(acc.iterations, key=lambda s: s.start_sim)
    if not iterations:
        return []
    senses = sorted(acc.senses, key=lambda s: s.end_sim or s.start_sim)
    migrations = sorted(acc.migrations, key=lambda s: s.end_sim or s.start_sim)
    starts = [s.start_sim for s in iterations]

    snapshots: list[HealthSnapshot] = []
    for idx, span in enumerate(iterations):
        attrs = span.attributes
        iteration = attrs.get("iteration", attrs.get("step", idx))
        epoch = attrs.get("epoch")
        snapshots.append(
            HealthSnapshot(
                pid=pid,
                run_label=acc.label,
                iteration=int(iteration),
                epoch=None if epoch is None else int(epoch),
                start_sim=span.start_sim,
                end_sim=span.end_sim if span.end_sim is not None else span.start_sim,
                duration_s=span.sim_duration,
                imbalance_pct=_attr_float(attrs, "imbalance_pct"),
                max_imbalance_pct=_attr_float(attrs, "max_imbalance_pct"),
                staleness_s=_attr_float(attrs, "staleness_s"),
            )
        )

    # Per-phase breakdown: each rank-phase span lands in the iteration
    # whose [start, end) interval contains its start time.
    for span in acc.phases:
        slot = bisect_right(starts, span.start_sim) - 1
        if slot < 0:
            continue
        snap = snapshots[slot]
        snap.phase_seconds[span.name] = (
            snap.phase_seconds.get(span.name, 0.0) + span.sim_duration
        )

    # Migration churn: bytes/seconds of every migrate span up to (and
    # including) each iteration's end, charged to the first iteration that
    # ends at-or-after the migration (migrations precede the iteration
    # they enable).
    mig_idx = 0
    sense_idx = 0
    sensing_total = 0.0
    last_caps: tuple[float, ...] | None = None
    prev_caps: tuple[float, ...] | None = None
    last_sense_time: float | None = None
    for snap in snapshots:
        while (
            mig_idx < len(migrations)
            and (migrations[mig_idx].end_sim or 0.0) <= snap.end_sim
        ):
            mig = migrations[mig_idx]
            snap.migration_bytes += _attr_float(mig.attributes, "bytes") or 0.0
            snap.migration_seconds += (
                _attr_float(mig.attributes, "sim_seconds") or mig.sim_duration
            )
            mig_idx += 1
        while (
            sense_idx < len(senses)
            and (senses[sense_idx].end_sim or 0.0) <= snap.end_sim
        ):
            sense = senses[sense_idx]
            sensing_total += (
                _attr_float(sense.attributes, "overhead_seconds")
                or sense.sim_duration
            )
            caps = sense.attributes.get("capacities")
            if caps is not None:
                try:
                    caps = tuple(float(c) for c in caps)
                except (TypeError, ValueError):
                    caps = None
            if caps is not None:
                prev_caps, last_caps = last_caps, caps
            last_sense_time = sense.end_sim
            sense_idx += 1
        snap.sensing_seconds_total = sensing_total
        if snap.end_sim > 0:
            snap.probe_overhead_fraction = sensing_total / snap.end_sim
        snap.capacities = last_caps
        if last_caps is not None and prev_caps is not None and (
            len(last_caps) == len(prev_caps)
        ):
            snap.capacity_drift = max(
                abs(a - b) for a, b in zip(last_caps, prev_caps)
            )
        if snap.staleness_s is None and last_sense_time is not None:
            snap.staleness_s = max(snap.end_sim - last_sense_time, 0.0)
    return snapshots


class HealthMonitor:
    """Subscribes to a tracer and turns its spans into health signals.

    Usage::

        tracer = Tracer()
        health = HealthMonitor()
        health.attach(tracer)
        SamrRuntime(..., tracer=tracer).run()
        health.snapshots   # one per iteration, every traced run
        health.events      # detected anomalies (also in tracer.events)

    The monitor buffers each run's spans as they close and analyzes the
    run when its root ``run`` span closes, emitting one ``health.<kind>``
    instant event into the trace per anomaly.  Analysis is read-only and
    happens outside simulated time, so attaching a monitor never changes
    simulation results.
    """

    def __init__(
        self,
        detectors: Sequence[AnomalyDetector] | None = None,
        imbalance_bound_pct: float = PAPER_IMBALANCE_BOUND_PCT,
    ):
        self.detectors: list[AnomalyDetector] = (
            list(detectors) if detectors is not None else default_detectors()
        )
        self.imbalance_bound_pct = imbalance_bound_pct
        self.snapshots: list[HealthSnapshot] = []
        self.events: list[HealthEvent] = []
        self._tracer: Tracer | None = None
        self._runs: dict[int, _RunAccumulator] = {}

    # -- subscription ---------------------------------------------------
    def attach(self, tracer: Tracer | NullTracer) -> "HealthMonitor":
        """Start observing ``tracer`` (no-op tracers are ignored)."""
        if tracer.enabled:
            self._tracer = tracer  # type: ignore[assignment]
            tracer.add_observer(self._on_span_close)
        return self

    def detach(self) -> None:
        if self._tracer is not None:
            self._tracer.remove_observer(self._on_span_close)
            self._tracer = None

    # -- span routing ---------------------------------------------------
    def _accumulator(self, pid: int) -> _RunAccumulator:
        acc = self._runs.get(pid)
        if acc is None:
            label = ""
            if self._tracer is not None:
                label = self._tracer.run_labels.get(pid, "")
            acc = self._runs[pid] = _RunAccumulator(label)
        return acc

    def _on_span_close(self, span: Span) -> None:
        name = span.name
        if name == "run":
            self._finish_run(span.pid)
            return
        if name == "iteration":
            self._accumulator(span.pid).iterations.append(span)
        elif name == "sense":
            self._accumulator(span.pid).senses.append(span)
        elif name == "migrate":
            self._accumulator(span.pid).migrations.append(span)
        elif name in _RANK_PHASES:
            self._accumulator(span.pid).phases.append(span)

    def _finish_run(self, pid: int) -> None:
        acc = self._runs.pop(pid, None)
        if acc is None:
            return
        snapshots = _analyze_run(pid, acc)
        self.snapshots.extend(snapshots)
        for detector in self.detectors:
            detector.reset()
        run_events: list[HealthEvent] = []
        for snap in snapshots:
            for detector in self.detectors:
                run_events.extend(detector.observe(snap))
        self.events.extend(run_events)
        if self._tracer is not None:
            for event in run_events:
                self._tracer.event(
                    f"health.{event.kind}",
                    severity=event.severity,
                    message=event.message,
                    iteration=event.iteration,
                    sim_time=event.sim_time,
                    **{
                        k: v
                        for k, v in event.attributes.items()
                        if isinstance(v, (int, float, str, bool))
                    },
                )

    # -- draining -------------------------------------------------------
    def finish(self) -> None:
        """Analyze any runs whose ``run`` span never closed (crashes)."""
        for pid in sorted(self._runs):
            self._finish_run(pid)

    def worst_imbalance(self) -> float:
        vals = [
            s.imbalance_pct
            for s in self.snapshots
            if s.imbalance_pct is not None
        ]
        return max(vals) if vals else 0.0

    def summary(self) -> dict[str, Any]:
        """Aggregate health view (what ``repro report`` prints)."""
        by_severity: dict[str, int] = {}
        for event in self.events:
            by_severity[event.severity] = by_severity.get(event.severity, 0) + 1
        faults = fault_summary(
            self._tracer.events if self._tracer is not None else ()
        )
        return {
            "num_snapshots": len(self.snapshots),
            "num_events": len(self.events),
            "events_by_severity": by_severity,
            "worst_imbalance_pct": self.worst_imbalance(),
            "imbalance_bound_pct": self.imbalance_bound_pct,
            "num_fault_events": faults["num_fault_events"],
            "num_recovery_events": faults["num_recovery_events"],
            "mean_time_to_recover_s": faults["mean_time_to_recover_s"],
        }


# ----------------------------------------------------------------------
def _span_from_record(record: dict[str, Any]) -> Span:
    return Span(
        name=record["name"],
        span_id=int(record.get("span_id", 0)),
        parent_id=record.get("parent_id"),
        pid=int(record.get("pid", 0)),
        start_wall=float(record.get("start_wall") or 0.0),
        start_sim=float(record.get("start_sim") or 0.0),
        end_wall=record.get("end_wall"),
        end_sim=(
            None if record.get("end_sim") is None else float(record["end_sim"])
        ),
        rank=record.get("rank"),
        attributes=dict(record.get("attributes") or {}),
    )


def analyze_records(
    records: Iterable[dict[str, Any]],
    detectors: Callable[[], Sequence[AnomalyDetector]] | None = None,
    run_labels: dict[int, str] | None = None,
) -> tuple[list[HealthSnapshot], list[HealthEvent]]:
    """Offline analysis of an exported JSONL trace (parsed records).

    Routes the same machinery the live monitor uses, so a dashboard built
    from a trace file shows exactly what an attached monitor saw.
    ``detectors`` is a factory (fresh state per call) defaulting to
    :func:`default_detectors`.
    """
    factory = detectors or default_detectors
    runs: dict[int, _RunAccumulator] = {}
    labels = run_labels or {}
    for record in records:
        if record.get("type") != "span":
            continue
        span = _span_from_record(record)
        if span.name == "run":
            pid = span.pid
            acc = runs.setdefault(pid, _RunAccumulator(labels.get(pid, "")))
            if not acc.label:
                acc.label = str(span.attributes.get("partitioner", ""))
            continue
        acc = runs.setdefault(
            span.pid, _RunAccumulator(labels.get(span.pid, ""))
        )
        if span.name == "iteration":
            acc.iterations.append(span)
        elif span.name == "sense":
            acc.senses.append(span)
        elif span.name == "migrate":
            acc.migrations.append(span)
        elif span.name in _RANK_PHASES:
            acc.phases.append(span)
    snapshots: list[HealthSnapshot] = []
    events: list[HealthEvent] = []
    for pid in sorted(runs):
        run_snapshots = _analyze_run(pid, runs[pid])
        snapshots.extend(run_snapshots)
        suite = list(factory())
        for detector in suite:
            detector.reset()
        for snap in run_snapshots:
            for detector in suite:
                events.extend(detector.observe(snap))
    return snapshots, events
