"""Structured tracing: nested phase spans over two clocks.

A :class:`Tracer` records what the adaptive runtime *does* -- sense,
capacity, partition, migrate, ghost-exchange, compute, sync -- as nested
:class:`Span` records.  Every span carries two durations:

- **wall clock** (``time.perf_counter``): what the framework itself costs
  on the host running the simulation -- partitioner CPU time, monitor
  bookkeeping;
- **simulated cluster clock** (the :class:`~repro.cluster.events.SimClock`
  the tracer is bound to): what the phase costs the modelled application --
  probe overhead, migration transfer time, iteration makespan.

Spans also carry structured attributes (node id, epoch, bytes, imbalance)
and an optional ``rank``, which the Chrome-trace exporter turns into one
track per simulated rank.

The default tracer everywhere is :data:`NULL_TRACER`, whose ``span()``
returns one shared no-op context manager -- hot paths pay one attribute
lookup and one method call, nothing else, and behaviour is bit-identical
to uninstrumented code.  An enabled tracer is either passed explicitly to
the runtime classes or installed for a block via :func:`activate` (how the
``repro trace`` CLI instruments experiment builders it does not own).

Consumers that want to *interpret* the trace while it is being recorded
(the health monitor in :mod:`repro.telemetry.analysis`) subscribe through
:meth:`Tracer.add_observer`: every span is delivered to each observer
exactly once, at the moment it closes.  With no observers registered the
close path pays a single truthiness check on an empty list.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.telemetry.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullMetricsRegistry,
)

__all__ = [
    "Span",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_active_tracer",
    "activate",
]

#: Phase names the runtime instrumentation emits (informational; spans may
#: use any name).
PHASES = (
    "run",
    "sense",
    "capacity",
    "partition",
    "split",
    "migrate",
    "ghost-exchange",
    "compute",
    "sync",
    "iteration",
)


@dataclass(slots=True)
class Span:
    """One completed (or in-flight) phase."""

    name: str
    span_id: int
    parent_id: int | None
    pid: int  # run/process group (one per `Tracer.begin_run`)
    start_wall: float
    start_sim: float
    end_wall: float | None = None
    end_sim: float | None = None
    rank: int | None = None  # simulated rank; None = runtime control track
    attributes: dict[str, Any] = field(default_factory=dict)

    def set(self, **attrs: Any) -> None:
        """Attach structured attributes to the span."""
        self.attributes.update(attrs)

    @property
    def wall_duration(self) -> float:
        return 0.0 if self.end_wall is None else self.end_wall - self.start_wall

    @property
    def sim_duration(self) -> float:
        return 0.0 if self.end_sim is None else self.end_sim - self.start_sim

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "rank": self.rank,
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "start_sim": self.start_sim,
            "end_sim": self.end_sim,
            "attributes": self.attributes,
        }


@dataclass(slots=True)
class TraceEvent:
    """An instant (zero-duration) event, e.g. "load generator attached"."""

    name: str
    wall: float
    sim: float
    pid: int
    rank: int | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "event",
            "name": self.name,
            "pid": self.pid,
            "rank": self.rank,
            "wall": self.wall,
            "sim": self.sim,
            "attributes": self.attributes,
        }


class _ActiveSpan:
    """Context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def set(self, **attrs: Any) -> None:
        self.span.set(**attrs)

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._finish(self.span)
        return False


class Tracer:
    """Collects spans and events; owns a :class:`MetricsRegistry`.

    Parameters
    ----------
    sim_clock:
        Zero-argument callable returning the current simulated time.  The
        runtime binds its cluster's clock at the start of each run via
        :meth:`begin_run`; unbound tracers record simulated time 0.
    metrics:
        Registry to record quantitative telemetry into (a fresh
        :class:`MetricsRegistry` by default).
    wall_clock:
        Host-time source, injectable for deterministic tests.
    """

    enabled = True

    def __init__(
        self,
        sim_clock: Callable[[], float] | None = None,
        metrics: MetricsRegistry | None = None,
        wall_clock: Callable[[], float] = time.perf_counter,
    ):
        self._sim_clock = sim_clock
        self._wall = wall_clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self._stack: list[Span] = []
        self._next_id = 1
        self.pid = 0
        self.run_labels: dict[int, str] = {}
        self._observers: list[Callable[[Span], None]] = []

    # ------------------------------------------------------------------
    def _sim_now(self) -> float:
        return self._sim_clock() if self._sim_clock is not None else 0.0

    def bind_sim_clock(self, sim_clock: Callable[[], float] | None) -> None:
        """Point the simulated-time column at a (new) clock source."""
        self._sim_clock = sim_clock

    def begin_run(
        self,
        label: str,
        sim_clock: Callable[[], float] | None = None,
    ) -> int:
        """Open a new process group (one experiment may trace many runs).

        Returns the group's ``pid``; subsequent spans land in it.  Chrome
        exporters show each group as its own named process, so runs whose
        simulated clocks all start at zero do not overlap on screen.
        """
        self.pid += 1
        self.run_labels[self.pid] = label
        if sim_clock is not None:
            self._sim_clock = sim_clock
        return self.pid

    # ------------------------------------------------------------------
    def add_observer(self, callback: Callable[[Span], None]) -> None:
        """Deliver every span to ``callback`` the moment it closes.

        Observers fire after the span's end times are stamped and after it
        lands in :attr:`spans`, so a callback sees the finished record.  A
        callback may call :meth:`event` (health monitors annotate the trace
        this way) but must not open spans, which would corrupt the stack.
        """
        if callback not in self._observers:
            self._observers.append(callback)

    def remove_observer(self, callback: Callable[[Span], None]) -> None:
        """Unsubscribe; unknown callbacks are ignored."""
        try:
            self._observers.remove(callback)
        except ValueError:
            pass

    def _notify(self, span: Span) -> None:
        # Iterate a snapshot: a callback may unsubscribe itself (or others)
        # mid-notify, and mutating the live list would skip the observer
        # registered after it for this span.
        for callback in tuple(self._observers):
            callback(span)

    # ------------------------------------------------------------------
    def span(self, name: str, rank: int | None = None, **attrs: Any) -> _ActiveSpan:
        """Open a nested span; use as a context manager."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent,
            pid=self.pid,
            start_wall=self._wall(),
            start_sim=self._sim_now(),
            rank=rank,
            attributes=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(span)
        return _ActiveSpan(self, span)

    def _finish(self, span: Span) -> None:
        span.end_wall = self._wall()
        span.end_sim = self._sim_now()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # tolerate out-of-order exits
            self._stack.remove(span)
        self.spans.append(span)
        if self._observers:
            self._notify(span)

    def add_span(
        self,
        name: str,
        start_sim: float,
        end_sim: float,
        rank: int | None = None,
        **attrs: Any,
    ) -> Span:
        """Record a completed span over *simulated* time directly.

        The runtime prices a whole iteration at once, then knows exactly
        when each rank's compute/ghost-exchange phase started and ended on
        the simulated clock -- those intervals arrive here rather than
        through enter/exit pairs.  Wall time is a point (now) since no host
        work corresponds to the interval.
        """
        now = self._wall()
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent,
            pid=self.pid,
            start_wall=now,
            start_sim=float(start_sim),
            end_wall=now,
            end_sim=float(end_sim),
            rank=rank,
            attributes=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(span)
        if self._observers:
            self._notify(span)
        return span

    def event(self, name: str, rank: int | None = None, **attrs: Any) -> None:
        """Record an instant event at the current clocks."""
        self.events.append(
            TraceEvent(
                name=name,
                wall=self._wall(),
                sim=self._sim_now(),
                pid=self.pid,
                rank=rank,
                attributes=dict(attrs),
            )
        )

    # ------------------------------------------------------------------
    def spans_named(self, name: str) -> Iterator[Span]:
        return (s for s in self.spans if s.name == name)

    def __len__(self) -> int:
        return len(self.spans)


class _NullSpan:
    """Shared no-op span/context-manager."""

    __slots__ = ()

    name = "null"
    span_id = 0
    parent_id = None
    pid = 0
    rank = None
    attributes: dict[str, Any] = {}
    wall_duration = 0.0
    sim_duration = 0.0

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Do-nothing tracer: the default wherever a tracer is injectable.

    All methods return shared singletons or ``None``; no allocation happens
    per call, so leaving instrumentation in place costs hot paths nothing.
    """

    enabled = False
    pid = 0
    spans: tuple = ()
    events: tuple = ()
    run_labels: dict[int, str] = {}
    metrics: NullMetricsRegistry = NULL_REGISTRY

    def bind_sim_clock(self, sim_clock: Callable[[], float] | None) -> None:
        pass

    def add_observer(self, callback: Callable[[Span], None]) -> None:
        pass

    def remove_observer(self, callback: Callable[[Span], None]) -> None:
        pass

    def begin_run(
        self, label: str, sim_clock: Callable[[], float] | None = None
    ) -> int:
        return 0

    def span(self, name: str, rank: int | None = None, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def add_span(
        self,
        name: str,
        start_sim: float,
        end_sim: float,
        rank: int | None = None,
        **attrs: Any,
    ) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, rank: int | None = None, **attrs: Any) -> None:
        pass

    def spans_named(self, name: str) -> Iterator[Span]:
        return iter(())

    def __len__(self) -> int:
        return 0


#: Process-wide shared no-op tracer.
NULL_TRACER = NullTracer()

# Active-tracer stack: `activate` pushes an enabled tracer for a block so
# code that builds its own runtimes (experiment builders, examples) picks
# it up without plumbing a parameter through every signature.
_ACTIVE: list[Tracer | NullTracer] = [NULL_TRACER]


def get_active_tracer() -> Tracer | NullTracer:
    """The innermost tracer installed by :func:`activate` (default no-op)."""
    return _ACTIVE[-1]


class _Activation:
    __slots__ = ("_tracer",)

    def __init__(self, tracer: Tracer | NullTracer):
        self._tracer = tracer

    def __enter__(self) -> Tracer | NullTracer:
        _ACTIVE.append(self._tracer)
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        _ACTIVE.pop()
        return False


def activate(tracer: Tracer | NullTracer) -> _Activation:
    """Install ``tracer`` as the ambient default within a ``with`` block."""
    return _Activation(tracer)
