"""Metrics registry: counters, gauges and histograms for the runtime.

The registry is the quantitative half of the telemetry subsystem (the
tracer in :mod:`repro.telemetry.spans` is the structural half).  The
runtime instrumentation records, per run: probe cost and sensing count,
migration bytes and seconds, boxes split, residual imbalance, per-node
utilization and iteration durations.  Everything is pure stdlib -- no
numpy -- so the package stays a zero-required-dependency leaf that any
layer of the system may import.

Disabled telemetry must cost nothing on hot paths, so the module also
provides :data:`NULL_REGISTRY`, whose ``counter``/``gauge``/``histogram``
accessors hand back shared no-op instruments.
"""

from __future__ import annotations

import math
import re
from typing import Any, Iterator

from repro.util.errors import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "openmetrics_selfcheck",
]

#: Histograms keep at most this many raw observations for percentile
#: estimation; beyond it only the running aggregates stay exact.
HISTOGRAM_SAMPLE_CAP = 4096


def _label_key(labels: dict[str, Any]) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing total (e.g. migration bytes)."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, Any]):
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += float(amount)

    def snapshot(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """Last-written value (e.g. a node's current utilization)."""

    __slots__ = ("name", "labels", "value", "num_updates")

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, Any]):
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0
        self.num_updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.num_updates += 1

    def snapshot(self) -> dict[str, Any]:
        return {"value": self.value, "updates": self.num_updates}


class Histogram:
    """Distribution of observations (e.g. per-iteration seconds).

    Running count/sum/min/max are always exact; percentiles come from the
    first :data:`HISTOGRAM_SAMPLE_CAP` raw samples (runs in this codebase
    are far smaller than the cap, so in practice they are exact too).
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max", "_samples")

    kind = "histogram"

    def __init__(self, name: str, labels: dict[str, Any]):
        self.name = name
        self.labels = dict(labels)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < HISTOGRAM_SAMPLE_CAP:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def values(self) -> tuple[float, ...]:
        """The retained raw samples, in observation order.

        Consumers that need the actual distribution -- the health
        monitor's rolling statistics, the dashboard's charts -- read it
        from here rather than re-deriving it from percentile calls.
        """
        return tuple(self._samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples."""
        if not 0.0 <= q <= 100.0:
            raise TelemetryError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    def snapshot(self) -> dict[str, Any]:
        if not self.count:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class MetricsRegistry:
    """Creates and caches instruments keyed by (kind, name, labels).

    Asking twice for the same instrument returns the same object, so call
    sites never need to hold references across phases::

        registry.counter("migration_bytes").inc(volume)
        registry.gauge("node_utilization", node=3).set(0.97)
        registry.histogram("iteration_seconds").observe(cost.total)
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, str] = {}

    def _get(self, cls, name: str, labels: dict[str, Any]):
        known = self._kinds.get(name)
        if known is not None and known != cls.kind:
            raise TelemetryError(
                f"metric {name!r} already registered as a {known}, "
                f"cannot re-register as a {cls.kind}"
            )
        key = (cls.kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[key] = metric
            self._kinds[name] = cls.kind
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def series(self, name: str) -> list[Counter | Gauge | Histogram]:
        """All instruments registered under ``name`` (one per label set).

        A read-only lookup: unlike the accessors it never creates the
        instrument, so observers can poll without polluting the registry.
        """
        return [m for m in self._metrics.values() if m.name == name]

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Nested ``{name: {kind, series: [{labels, ...stats}]}}`` view."""
        out: dict[str, Any] = {}
        for metric in self._metrics.values():
            entry = out.setdefault(
                metric.name, {"kind": metric.kind, "series": []}
            )
            entry["series"].append(
                {"labels": dict(metric.labels), **metric.snapshot()}
            )
        return out

    def rows(self) -> list[dict[str, Any]]:
        """Flat rows (one per instrument) for CSV export or DataFrames."""
        rows = []
        for metric in self._metrics.values():
            row: dict[str, Any] = {"name": metric.name, "kind": metric.kind}
            row.update({f"label_{k}": v for k, v in metric.labels.items()})
            row.update(metric.snapshot())
            rows.append(row)
        return rows

    def to_openmetrics(self) -> str:
        """Render the registry in OpenMetrics text exposition format.

        Counters become counter families (the ``_total`` sample suffix is
        enforced), gauges become gauges, and histograms are exposed as
        summaries (``_count``/``_sum`` plus p50/p95/max quantile samples)
        since we retain raw samples rather than fixed buckets.  Dots in
        internal metric names (``comm.bytes_total``) are mapped to
        underscores per the exposition-format name charset.  The output
        terminates with ``# EOF`` and round-trips through
        :func:`openmetrics_selfcheck`.
        """
        families: dict[str, list[Counter | Gauge | Histogram]] = {}
        kinds: dict[str, str] = {}
        for metric in self._metrics.values():
            family = _openmetrics_name(metric.name)
            if metric.kind == "counter" and family.endswith("_total"):
                family = family[: -len("_total")]
            families.setdefault(family, []).append(metric)
            kinds[family] = metric.kind
        lines: list[str] = []
        for family in sorted(families):
            kind = kinds[family]
            om_type = {"counter": "counter", "gauge": "gauge", "histogram": "summary"}[
                kind
            ]
            lines.append(f"# TYPE {family} {om_type}")
            for metric in families[family]:
                labels = _openmetrics_labels(metric.labels)
                if kind == "counter":
                    value = _format_value(metric.value)
                    lines.append(f"{family}_total{labels} {value}")
                elif kind == "gauge":
                    lines.append(f"{family}{labels} {_format_value(metric.value)}")
                else:
                    lines.append(f"{family}_count{labels} {metric.count}")
                    lines.append(f"{family}_sum{labels} {_format_value(metric.total)}")
                    for q, qlabel in ((50, "0.5"), (95, "0.95"), (100, "1")):
                        qlabels = _openmetrics_labels(
                            {**metric.labels, "quantile": qlabel}
                        )
                        lines.append(
                            f"{family}{qlabels} {_format_value(metric.percentile(q))}"
                        )
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


# OpenMetrics exposition-format helpers ------------------------------------

#: Legal OpenMetrics metric-family name.
_OM_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
#: Legal OpenMetrics label name.
_OM_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: One exposition sample line: name, optional {labels}, value.
_OM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>\S+)$"
)


def _openmetrics_name(name: str) -> str:
    """Map an internal metric name onto the exposition-format charset."""
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not sanitized or not _OM_NAME_RE.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _openmetrics_labels(labels: dict[str, Any]) -> str:
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        name = re.sub(r"[^a-zA-Z0-9_]", "_", str(key))
        if not _OM_LABEL_RE.match(name):
            name = "_" + name
        value = (
            str(labels[key])
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )
        parts.append(f'{name}="{value}"')
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def openmetrics_selfcheck(text: str) -> list[str]:
    """Validate OpenMetrics exposition text; returns a list of problems.

    An empty list means the text passed.  This is a structural check of
    the subset this module emits -- name/label charset, ``# TYPE``
    declarations preceding their samples, counter samples ending in
    ``_total``, parseable values, no duplicate samples, and a final
    ``# EOF`` -- not a full spec validator.
    """
    problems: list[str] = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        problems.append("missing '# EOF' terminator as the final line")
    declared: dict[str, str] = {}
    seen_samples: set[str] = set()
    for lineno, line in enumerate(lines, start=1):
        if line == "# EOF":
            if lineno != len(lines):
                problems.append(f"line {lineno}: '# EOF' before end of text")
            continue
        if line.startswith("# TYPE "):
            fields = line.split(" ")
            if len(fields) != 4:
                problems.append(f"line {lineno}: malformed TYPE line {line!r}")
                continue
            family, om_type = fields[2], fields[3]
            if not _OM_NAME_RE.match(family):
                problems.append(f"line {lineno}: bad family name {family!r}")
            if om_type not in ("counter", "gauge", "summary", "histogram", "unknown"):
                problems.append(f"line {lineno}: unknown metric type {om_type!r}")
            if family in declared:
                problems.append(f"line {lineno}: duplicate TYPE for {family!r}")
            declared[family] = om_type
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT lines: tolerated, not emitted
        match = _OM_SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        family = _sample_family(name, declared)
        if family is None:
            problems.append(
                f"line {lineno}: sample {name!r} has no preceding TYPE declaration"
            )
        elif declared[family] == "counter" and not name.endswith("_total"):
            problems.append(
                f"line {lineno}: counter sample {name!r} must end with '_total'"
            )
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                problems.append(f"line {lineno}: unparseable value {value!r}")
        sample_id = name + (match.group("labels") or "")
        if sample_id in seen_samples:
            problems.append(f"line {lineno}: duplicate sample {sample_id!r}")
        seen_samples.add(sample_id)
    return problems


def _sample_family(name: str, declared: dict[str, str]) -> str | None:
    """Resolve a sample name back to its declared metric family."""
    if name in declared:
        return name
    for suffix in ("_total", "_count", "_sum", "_bucket", "_created"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if base in declared:
                return base
    return None


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()

    name = "null"
    labels: dict[str, Any] = {}
    kind = "null"
    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0
    num_updates = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def values(self) -> tuple[float, ...]:
        return ()

    def snapshot(self) -> dict[str, Any]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """No-op registry: every accessor returns the shared null instrument."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def series(self, name: str) -> list[_NullInstrument]:
        return []

    def __iter__(self) -> Iterator[_NullInstrument]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def summary(self) -> dict[str, Any]:
        return {}

    def rows(self) -> list[dict[str, Any]]:
        return []

    def to_openmetrics(self) -> str:
        return "# EOF\n"


#: Process-wide shared no-op registry.
NULL_REGISTRY = NullMetricsRegistry()
