"""Metrics registry: counters, gauges and histograms for the runtime.

The registry is the quantitative half of the telemetry subsystem (the
tracer in :mod:`repro.telemetry.spans` is the structural half).  The
runtime instrumentation records, per run: probe cost and sensing count,
migration bytes and seconds, boxes split, residual imbalance, per-node
utilization and iteration durations.  Everything is pure stdlib -- no
numpy -- so the package stays a zero-required-dependency leaf that any
layer of the system may import.

Disabled telemetry must cost nothing on hot paths, so the module also
provides :data:`NULL_REGISTRY`, whose ``counter``/``gauge``/``histogram``
accessors hand back shared no-op instruments.
"""

from __future__ import annotations

import math
from typing import Any, Iterator

from repro.util.errors import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
]

#: Histograms keep at most this many raw observations for percentile
#: estimation; beyond it only the running aggregates stay exact.
HISTOGRAM_SAMPLE_CAP = 4096


def _label_key(labels: dict[str, Any]) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing total (e.g. migration bytes)."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, Any]):
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += float(amount)

    def snapshot(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """Last-written value (e.g. a node's current utilization)."""

    __slots__ = ("name", "labels", "value", "num_updates")

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, Any]):
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0
        self.num_updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.num_updates += 1

    def snapshot(self) -> dict[str, Any]:
        return {"value": self.value, "updates": self.num_updates}


class Histogram:
    """Distribution of observations (e.g. per-iteration seconds).

    Running count/sum/min/max are always exact; percentiles come from the
    first :data:`HISTOGRAM_SAMPLE_CAP` raw samples (runs in this codebase
    are far smaller than the cap, so in practice they are exact too).
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max", "_samples")

    kind = "histogram"

    def __init__(self, name: str, labels: dict[str, Any]):
        self.name = name
        self.labels = dict(labels)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < HISTOGRAM_SAMPLE_CAP:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def values(self) -> tuple[float, ...]:
        """The retained raw samples, in observation order.

        Consumers that need the actual distribution -- the health
        monitor's rolling statistics, the dashboard's charts -- read it
        from here rather than re-deriving it from percentile calls.
        """
        return tuple(self._samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples."""
        if not 0.0 <= q <= 100.0:
            raise TelemetryError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    def snapshot(self) -> dict[str, Any]:
        if not self.count:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class MetricsRegistry:
    """Creates and caches instruments keyed by (kind, name, labels).

    Asking twice for the same instrument returns the same object, so call
    sites never need to hold references across phases::

        registry.counter("migration_bytes").inc(volume)
        registry.gauge("node_utilization", node=3).set(0.97)
        registry.histogram("iteration_seconds").observe(cost.total)
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, str] = {}

    def _get(self, cls, name: str, labels: dict[str, Any]):
        known = self._kinds.get(name)
        if known is not None and known != cls.kind:
            raise TelemetryError(
                f"metric {name!r} already registered as a {known}, "
                f"cannot re-register as a {cls.kind}"
            )
        key = (cls.kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[key] = metric
            self._kinds[name] = cls.kind
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def series(self, name: str) -> list[Counter | Gauge | Histogram]:
        """All instruments registered under ``name`` (one per label set).

        A read-only lookup: unlike the accessors it never creates the
        instrument, so observers can poll without polluting the registry.
        """
        return [m for m in self._metrics.values() if m.name == name]

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Nested ``{name: {kind, series: [{labels, ...stats}]}}`` view."""
        out: dict[str, Any] = {}
        for metric in self._metrics.values():
            entry = out.setdefault(
                metric.name, {"kind": metric.kind, "series": []}
            )
            entry["series"].append(
                {"labels": dict(metric.labels), **metric.snapshot()}
            )
        return out

    def rows(self) -> list[dict[str, Any]]:
        """Flat rows (one per instrument) for CSV export or DataFrames."""
        rows = []
        for metric in self._metrics.values():
            row: dict[str, Any] = {"name": metric.name, "kind": metric.kind}
            row.update({f"label_{k}": v for k, v in metric.labels.items()})
            row.update(metric.snapshot())
            rows.append(row)
        return rows


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()

    name = "null"
    labels: dict[str, Any] = {}
    kind = "null"
    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0
    num_updates = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def values(self) -> tuple[float, ...]:
        return ()

    def snapshot(self) -> dict[str, Any]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """No-op registry: every accessor returns the shared null instrument."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def series(self, name: str) -> list[_NullInstrument]:
        return []

    def __iter__(self) -> Iterator[_NullInstrument]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def summary(self) -> dict[str, Any]:
        return {}

    def rows(self) -> list[dict[str, Any]]:
        return []


#: Process-wide shared no-op registry.
NULL_REGISTRY = NullMetricsRegistry()
