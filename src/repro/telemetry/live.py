"""Live campaign observability: cross-process telemetry shipping.

Campaign cells execute in fork workers whose tracers die with the
process, so the richest observability in the repo -- critical-path
analysis, comm matrices, flamegraphs -- used to stop at the campaign
boundary.  This module is the bridge:

- :func:`deterministic_tracer` builds the tracer a worker runs its cell
  under: wall readings pinned to ``0.0`` so every derived artifact is a
  pure function of the cell spec (the campaign determinism guarantee
  extends from result records to trace artifacts).
- :func:`write_cell_bundle` persists a per-cell **artifact bundle**
  (span/event JSONL, collapsed-stack flamegraph, critical-path/profile
  summary JSON) into ``artifacts/<cell-key>/`` of the campaign
  directory, each file published atomically.  The bundle doubles as the
  execution-history store the learned-cost-model roadmap item consumes.
- :class:`TelemetryDigest` / :func:`digest_from_record` compress a
  finished cell into the few hundred bytes the parent folds into its
  campaign-level :class:`~repro.telemetry.metrics.MetricsRegistry`.
- :class:`ProgressLog` is the append-only ``events.jsonl`` progress log
  (epoch wall clock, one JSON object per line, O_APPEND single-line
  writes so concurrent workers interleave without tearing).
- :class:`LiveProgress` folds progress records into completion counts,
  throughput and an ETA -- shared by the SSE route in
  :mod:`repro.campaign.serve` and the ``repro campaign watch`` CLI.
- :func:`registry_from_progress` rebuilds a metrics registry from a
  progress log for the ``GET /metrics`` OpenMetrics endpoint.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.telemetry.export import _jsonable, write_jsonl
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profile import (
    analyze_critical_path,
    comm_profile,
    flamegraph_collapsed,
    registry_from_records,
)
from repro.telemetry.spans import NullTracer, Tracer

__all__ = [
    "EVENTS_NAME",
    "ARTIFACT_FILES",
    "LIVE_EVENT_NAMES",
    "deterministic_tracer",
    "write_cell_bundle",
    "TelemetryDigest",
    "digest_from_record",
    "ProgressLog",
    "LiveProgress",
    "registry_from_progress",
    "format_sse",
]

#: The append-only progress log inside a campaign directory.
EVENTS_NAME = "events.jsonl"

#: Artifact kind -> file name inside ``artifacts/<cell-key>/``.  The kind
#: is also the last URL segment of the serve route
#: ``/campaigns/<id>/cells/<key>/artifacts/<kind>``.
ARTIFACT_FILES = {
    "trace": "trace.jsonl",
    "flamegraph": "flamegraph.txt",
    "profile": "profile.json",
}

#: Content types the HTTP layer serves each artifact kind with.
ARTIFACT_CONTENT_TYPES = {
    "trace": "application/x-ndjson; charset=utf-8",
    "flamegraph": "text/plain; charset=utf-8",
    "profile": "application/json; charset=utf-8",
}

#: Progress-log record names the SSE stream forwards to clients.
LIVE_EVENT_NAMES = frozenset(
    {
        "campaign.started",
        "campaign.completed",
        "live.cell_started",
        "live.cell_finished",
        "live.cell_failed",
    }
)

#: Bundle format version stamped into every ``profile.json``.
BUNDLE_SCHEMA_VERSION = 1


def _zero_wall() -> float:
    return 0.0


def deterministic_tracer() -> Tracer:
    """A tracer whose wall clock always reads ``0.0``.

    Span records carry ``start_wall``/``end_wall`` fields; a worker that
    traced its cell against ``time.perf_counter`` would bake host timing
    into the artifact bundle and break the byte-identity guarantee across
    worker counts and resumes.  Simulated time is untouched -- it is the
    quantity every analysis in :mod:`repro.telemetry.profile` runs on.
    """
    return Tracer(wall_clock=_zero_wall)


# ----------------------------------------------------------------------
# Artifact bundles
# ----------------------------------------------------------------------
def _publish(path: Path, text: str) -> int:
    """Write ``text`` via tmp + rename; return the byte size."""
    data = text.encode("utf-8")
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(data)
    tmp.replace(path)
    return len(data)


def write_cell_bundle(
    tracer: Tracer | NullTracer,
    directory: str | Path,
    cell_key: str | None = None,
) -> dict[str, Any]:
    """Persist one cell's artifact bundle; return a manifest.

    Three files, all derived from the cell tracer's simulated-time span
    stream and therefore byte-identical for byte-identical cell
    executions:

    - ``trace.jsonl``: every span and event (the execution history);
    - ``flamegraph.txt``: collapsed stacks over simulated self time;
    - ``profile.json``: critical path, comm matrices, per-phase totals
      and the offline-reconstructed metrics registry.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    records = [s.to_dict() for s in tracer.spans] + [
        e.to_dict() for e in tracer.events
    ]
    run_labels = dict(tracer.run_labels)

    phases: dict[str, dict[str, Any]] = {}
    for span in tracer.spans:
        agg = phases.setdefault(span.name, {"count": 0, "sim_seconds": 0.0})
        agg["count"] += 1
        agg["sim_seconds"] += span.sim_duration
    # ``registry_from_records`` on a record list (not the live tracer)
    # takes the offline-reconstruction path: a pure function of the span
    # stream, which is what the byte-identity guarantee needs.
    profile_doc = {
        "schema_version": BUNDLE_SCHEMA_VERSION,
        "cell_key": cell_key,
        "critical_path": [
            r.to_dict()
            for r in analyze_critical_path(records, run_labels=run_labels)
        ],
        "comm": [
            p.to_dict() for p in comm_profile(records, run_labels=run_labels)
        ],
        "phases": phases,
        "metrics": registry_from_records(records).summary(),
    }

    manifest: dict[str, Any] = {"files": {}, "total_bytes": 0}
    trace_path = directory / ARTIFACT_FILES["trace"]
    tmp_trace = trace_path.with_name(trace_path.name + ".tmp")
    write_jsonl(tracer, tmp_trace)
    tmp_trace.replace(trace_path)
    sizes = {
        "trace": trace_path.stat().st_size,
        "flamegraph": _publish(
            directory / ARTIFACT_FILES["flamegraph"],
            flamegraph_collapsed(records, run_labels=run_labels),
        ),
        "profile": _publish(
            directory / ARTIFACT_FILES["profile"],
            json.dumps(_jsonable(profile_doc), sort_keys=True, indent=1)
            + "\n",
        ),
    }
    for kind, nbytes in sorted(sizes.items()):
        manifest["files"][kind] = {
            "path": ARTIFACT_FILES[kind],
            "bytes": int(nbytes),
        }
        manifest["total_bytes"] += int(nbytes)
    return manifest


# ----------------------------------------------------------------------
# Telemetry digests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TelemetryDigest:
    """What a worker sends home: the cell's telemetry in a few lines.

    Everything here is simulated-clock or structural -- the parent stamps
    wall timings itself -- so the digest stays deterministic alongside
    the record it summarizes.
    """

    cell_key: str
    scenario: str
    partitioner: str
    seed: int
    sim_seconds: float
    phases: dict[str, float] = field(default_factory=dict)
    health: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    artifacts: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "cell_key": self.cell_key,
            "scenario": self.scenario,
            "partitioner": self.partitioner,
            "seed": self.seed,
            "sim_seconds": self.sim_seconds,
            "phases": dict(self.phases),
            "health": dict(self.health),
            "metrics": dict(self.metrics),
            "artifacts": self.artifacts,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TelemetryDigest":
        return cls(
            cell_key=str(data["cell_key"]),
            scenario=str(data.get("scenario", "")),
            partitioner=str(data.get("partitioner", "")),
            seed=int(data.get("seed", 0)),
            sim_seconds=float(data.get("sim_seconds", 0.0)),
            phases=dict(data.get("phases", {})),
            health=dict(data.get("health", {})),
            metrics=dict(data.get("metrics", {})),
            artifacts=data.get("artifacts"),
        )


def digest_from_record(
    record: dict[str, Any], artifacts: dict[str, Any] | None = None
) -> TelemetryDigest:
    """Build a digest from a ``campaign_cell`` record (+ bundle manifest)."""
    metrics = record.get("metrics", {})
    return TelemetryDigest(
        cell_key=str(record.get("cell_key", "")),
        scenario=str(record.get("scenario", "")),
        partitioner=str(record.get("partitioner", "")),
        seed=int(record.get("seed", 0)),
        sim_seconds=float(metrics.get("total_seconds", 0.0)),
        phases={
            name: float(agg.get("sim_seconds", 0.0))
            for name, agg in record.get("phases", {}).items()
        },
        health=dict(record.get("health", {})),
        metrics={
            k: float(v)
            for k, v in metrics.items()
            if isinstance(v, (int, float))
        },
        artifacts=artifacts,
    )


# ----------------------------------------------------------------------
# The progress log
# ----------------------------------------------------------------------
class ProgressLog:
    """Append-only JSONL progress log shared by orchestrator and workers.

    Record shape matches :meth:`TraceEvent.to_dict` so existing trace
    tooling can read the log, except ``wall`` is the epoch clock
    (``time.time()``): the one clock comparable across the orchestrator
    and every worker process, which is what throughput/ETA need.

    Each append is a single ``write()`` of one newline-terminated line on
    a file opened in append mode, so concurrent writers (pool workers
    announcing ``live.cell_started``) interleave whole lines.  Readers
    skip torn or foreign lines rather than failing.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def append(self, name: str, **attributes: Any) -> dict[str, Any]:
        record = {
            "type": "event",
            "name": name,
            "pid": 0,
            "rank": None,
            "wall": time.time(),
            "sim": 0.0,
            "attributes": _jsonable(attributes),
        }
        line = json.dumps(record, sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
        return record

    def read(self) -> list[dict[str, Any]]:
        records, _ = self.read_from(0)
        return records

    def read_from(self, offset: int) -> tuple[list[dict[str, Any]], int]:
        """Records starting at byte ``offset``; returns (records, new offset).

        A partial final line (a writer mid-append) is left unconsumed so
        the next poll picks it up whole.  Tail-follow loops call this
        repeatedly with the returned offset.
        """
        if not self.path.is_file():
            return [], offset
        with open(self.path, "rb") as fh:
            fh.seek(offset)
            data = fh.read()
        records: list[dict[str, Any]] = []
        consumed = 0
        for raw in data.split(b"\n"):
            end = consumed + len(raw) + 1
            if end > len(data):  # no trailing newline yet: torn tail
                break
            consumed = end
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue
            if isinstance(record, dict) and "name" in record:
                records.append(record)
        return records, offset + consumed


# ----------------------------------------------------------------------
# Progress aggregation (SSE + watch)
# ----------------------------------------------------------------------
class LiveProgress:
    """Folds progress-log records into counts, throughput and an ETA.

    Completion counts come from the ``completed`` attribute the
    orchestrator stamps on every lifecycle event (the ledger's view), so
    a resumed campaign reports cumulative progress, not just the cells
    executed since the last restart.  Throughput is measured over the
    *current* session only -- finish events observed since the latest
    ``campaign.started`` -- because cells finished before an interruption
    say nothing about today's rate.
    """

    def __init__(self, num_cells: int | None = None):
        self.num_cells = num_cells
        self.completed = 0
        self.failed = 0
        self.running = 0
        self.complete = False
        self.last_event: dict[str, Any] | None = None
        self._session_start: float | None = None
        self._session_finishes: list[float] = []

    # ------------------------------------------------------------------
    def observe(self, record: dict[str, Any]) -> bool:
        """Fold one record; returns whether it was a live/lifecycle event."""
        name = record.get("name")
        if name not in LIVE_EVENT_NAMES:
            return False
        attrs = record.get("attributes") or {}
        wall = float(record.get("wall", 0.0) or 0.0)
        if "num_cells" in attrs:
            self.num_cells = int(attrs["num_cells"])
        if "completed" in attrs:
            self.completed = int(attrs["completed"])
        if "failed" in attrs:
            self.failed = int(attrs["failed"])
        if name == "campaign.started":
            self._session_start = wall
            self._session_finishes = []
            self.running = 0
        elif name == "live.cell_started":
            self.running += 1
        elif name == "live.cell_finished":
            self.running = max(0, self.running - 1)
            self._session_finishes.append(wall)
        elif name == "live.cell_failed":
            self.running = max(0, self.running - 1)
        elif name == "campaign.completed":
            self.complete = True
            self.running = 0
        if (
            self.num_cells is not None
            and self.completed >= self.num_cells
            and self.num_cells > 0
        ):
            self.complete = True
        self.last_event = record
        return True

    # ------------------------------------------------------------------
    @property
    def throughput(self) -> float | None:
        """Cells per wall second over the current session, if measurable."""
        if not self._session_finishes:
            return None
        start = self._session_start
        if start is None:
            start = self._session_finishes[0]
        elapsed = self._session_finishes[-1] - start
        if elapsed <= 0.0:
            return None
        return len(self._session_finishes) / elapsed

    @property
    def eta_seconds(self) -> float | None:
        rate = self.throughput
        if rate is None or self.num_cells is None:
            return None
        remaining = max(0, self.num_cells - self.completed)
        return remaining / rate

    def snapshot(self) -> dict[str, Any]:
        return {
            "num_cells": self.num_cells,
            "completed": self.completed,
            "failed": self.failed,
            "running": self.running,
            "complete": self.complete,
            "throughput_cells_per_s": self.throughput,
            "eta_seconds": self.eta_seconds,
        }

    def render_line(self) -> str:
        """One-line terminal rendering for ``repro campaign watch``."""
        total = self.num_cells
        if total:
            width = 24
            filled = int(round(width * min(1.0, self.completed / total)))
            bar = "#" * filled + "." * (width - filled)
            head = f"[{bar}] {self.completed}/{total} cells"
        else:
            head = f"{self.completed} cells"
        parts = [head]
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.running:
            parts.append(f"{self.running} running")
        rate = self.throughput
        if rate is not None:
            parts.append(f"{rate:.2f} cells/s")
        eta = self.eta_seconds
        if eta is not None and not self.complete:
            parts.append(f"ETA {eta:.0f}s")
        if self.complete:
            parts.append("complete")
        return ", ".join(parts)


# ----------------------------------------------------------------------
# OpenMetrics over progress logs
# ----------------------------------------------------------------------
def registry_from_progress(
    records: Iterable[dict[str, Any]],
    registry: MetricsRegistry | None = None,
    campaign: str = "campaign",
) -> MetricsRegistry:
    """Fold a progress log into gauges/histograms for ``GET /metrics``.

    Rebuilt per scrape from the append-only log, so the endpoint needs no
    server-side state to survive restarts: the log *is* the state.
    """
    if registry is None:
        registry = MetricsRegistry()
    progress = LiveProgress()
    events = 0
    for record in records:
        events += 1
        progress.observe(record)
        if record.get("name") != "live.cell_finished":
            continue
        attrs = record.get("attributes") or {}
        if "wall_seconds" in attrs:
            registry.histogram(
                "campaign.cell_wall_seconds", campaign=campaign
            ).observe(float(attrs["wall_seconds"]))
        if "sim_seconds" in attrs:
            registry.histogram(
                "campaign.cell_sim_seconds", campaign=campaign
            ).observe(float(attrs["sim_seconds"]))
    registry.counter("campaign.progress_events", campaign=campaign).inc(
        events
    )
    registry.gauge("campaign.cells", campaign=campaign).set(
        float(progress.num_cells or 0)
    )
    registry.gauge("campaign.cells_completed", campaign=campaign).set(
        float(progress.completed)
    )
    registry.gauge("campaign.cells_failed", campaign=campaign).set(
        float(progress.failed)
    )
    registry.gauge("campaign.cells_running", campaign=campaign).set(
        float(progress.running)
    )
    registry.gauge("campaign.complete", campaign=campaign).set(
        1.0 if progress.complete else 0.0
    )
    return registry


# ----------------------------------------------------------------------
# Server-sent events framing
# ----------------------------------------------------------------------
def format_sse(event: str, payload: Any) -> bytes:
    """One SSE frame: ``event:`` + single-line ``data:`` JSON."""
    data = json.dumps(_jsonable(payload), sort_keys=True)
    return f"event: {event}\ndata: {data}\n\n".encode("utf-8")


def iter_progress_records(
    path: str | Path, offset: int = 0
) -> tuple[list[dict[str, Any]], int]:
    """Convenience tail-follow step used by serve and watch loops."""
    return ProgressLog(path).read_from(offset)
