"""Bench-trajectory diffing: compare ``BENCH_*.json`` files across runs.

``benchmarks/test_telemetry_export.py`` emits ``BENCH_telemetry.json`` on
every run; this module compares two such artifacts -- typically the
committed baseline against a freshly generated one -- and flags
regressions, so CI can watch the performance trajectory across PRs
instead of a human eyeballing JSON diffs.

Three metric classes are compared differently:

- **wall-clock keys** (``*wall_seconds*``): host performance.  A value
  growing past ``(1 + tolerance)`` of the baseline *and* past an absolute
  floor (micro-benchmark noise is real) is a **regression**; shrinking by
  the same margin is an **improvement**.
- **wall-rate keys** (``*per_wall_second*``, ``*wall_speedup*``):
  wall-clock-derived throughputs, where *higher* is better -- the
  regression/improvement directions are inverted and the same relative
  tolerance applies (no absolute floor: rates are already normalized).
- **simulated keys** (everything else numeric): determinism signals.  The
  simulation is seeded, so any change means *behaviour* changed -- those
  are reported as **drift**, never as perf regressions.  This class
  includes the critical-path decomposition (``*.critical_path.*_s``) and
  the communication volumes (``*.comm.*bytes*``) the bench artifact
  carries since the profiling PR.

When the artifact carries a critical-path section, wall-clock
regressions are additionally gated on it: a wall key whose name mentions
no phase contributing at least :data:`ONPATH_MIN_SHARE` of the
critical-path length (nor one of the always-on-path tokens such as
``run`` or ``total``) is **off the critical path** -- a micro-benchmark
that cannot move end-to-end time.  Those are downgraded to the
non-failing ``offpath`` status so they are reported but never fail the
build spuriously.  Artifacts without a critical-path section keep the
old strict behaviour.

Used by ``repro bench-diff OLD NEW`` (exit code 1 with
``--fail-on-regression``, otherwise warnings only, which is how CI runs
it initially).
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Any

from repro.util.errors import TelemetryError

__all__ = ["BenchComparison", "BenchDelta", "RATE_KEYS", "diff_bench",
           "diff_bench_files", "format_diff", "flatten_bench"]

#: Relative slowdown beyond which a wall-clock key is a regression.
DEFAULT_TOLERANCE = 0.20

#: Absolute wall-seconds floor: changes smaller than this are noise no
#: matter the ratio (micro-benchmarks jitter by tens of microseconds).
DEFAULT_ABS_FLOOR_S = 1e-4

#: Relative tolerance for simulated (deterministic) quantities.
SIM_DRIFT_TOLERANCE = 1e-9

#: A phase must carry at least this share of the critical-path length for
#: wall keys naming it to stay failing regressions.
ONPATH_MIN_SHARE = 0.02

#: Wall keys mentioning these are always on the critical path (end-to-end
#: measurements rather than phase micro-benchmarks).  Matched against
#: whole words of the dotted key, so ``runtime.foo`` does not count as
#: ``run``.
_ALWAYS_ONPATH_TOKENS = frozenset({"run", "total", "iteration"})

#: critical_path component -> key tokens it vouches for.
_PATH_COMPONENT_TOKENS = {
    "compute_s": ("compute",),
    "comm_s": ("comm", "exchange", "ghost"),
    "sync_s": ("sync",),
    "barrier_s": ("barrier",),
}

#: Exact flattened keys compared with *inverted* direction (throughputs:
#: higher is better, a drop is the regression).  The generic
#: ``per_wall_second``/``wall_speedup`` substrings in :func:`_is_rate_key`
#: already catch conventionally named rates; registering the
#: ``BENCH_learn.json`` and ``BENCH_explain.json`` throughput keys by
#: name makes the contract explicit and testable -- a rename that loses
#: the substring cannot silently demote a learn-bench regression to
#: non-gating sim drift (``tests/telemetry/test_benchdiff.py`` locks
#: each entry to the regression direction).
RATE_KEYS = frozenset(
    {
        # BENCH_learn.json
        "history.appends_per_wall_second",
        "gate.gate_decisions_per_wall_second",
        "models.capacity_fits_per_wall_second",
        "models.ols_observations_per_wall_second",
        # BENCH_explain.json
        "ledger.appends_per_wall_second",
        "reconcile.decisions_per_wall_second",
        "oracle.replays_per_wall_second",
    }
)


@dataclass(slots=True)
class BenchDelta:
    """One compared metric."""

    key: str
    old: float | None
    new: float | None
    status: str  # "ok" | "regression" | "offpath" | "improvement"
    #           | "drift" | "added" | "removed"
    ratio: float | None = None

    def describe(self) -> str:
        if self.status == "added":
            return f"{self.key}: added (new={self.new:g})"
        if self.status == "removed":
            return f"{self.key}: removed (old={self.old:g})"
        pct = (self.ratio - 1.0) * 100.0 if self.ratio is not None else 0.0
        return (
            f"{self.key}: {self.old:g} -> {self.new:g} ({pct:+.1f}%)"
        )


@dataclass(slots=True)
class BenchComparison:
    """Full diff of two bench artifacts."""

    tolerance: float
    deltas: list[BenchDelta] = field(default_factory=list)

    def _with_status(self, status: str) -> list[BenchDelta]:
        return [d for d in self.deltas if d.status == status]

    @property
    def regressions(self) -> list[BenchDelta]:
        return self._with_status("regression")

    @property
    def offpath_regressions(self) -> list[BenchDelta]:
        """Wall slowdowns in phases off the critical path (non-failing)."""
        return self._with_status("offpath")

    @property
    def improvements(self) -> list[BenchDelta]:
        return self._with_status("improvement")

    @property
    def drifts(self) -> list[BenchDelta]:
        return self._with_status("drift")

    @property
    def ok(self) -> bool:
        return not self.regressions


def flatten_bench(bench: dict[str, Any]) -> dict[str, float]:
    """Flatten a ``BENCH_telemetry.json`` payload to comparable scalars.

    Keys are dotted paths; lists of ``{"partitioner": ...}`` /
    ``{"labels": ...}`` rows are keyed by their identity fields rather
    than positions, so reordering rows never shows up as a change.
    """
    flat: dict[str, float] = {}

    def walk(prefix: str, value: Any) -> None:
        if isinstance(value, bool):
            return
        if isinstance(value, (int, float)):
            flat[prefix] = float(value)
            return
        if isinstance(value, dict):
            for k, v in sorted(value.items()):
                walk(f"{prefix}.{k}" if prefix else str(k), v)
            return
        if isinstance(value, list):
            for i, item in enumerate(value):
                key = str(i)
                if isinstance(item, dict):
                    if "partitioner" in item:
                        key = str(item["partitioner"])
                    elif "labels" in item and item["labels"]:
                        key = ",".join(
                            f"{k}={v}" for k, v in sorted(item["labels"].items())
                        )
                    elif "labels" in item:
                        key = "total"
                walk(f"{prefix}.{key}" if prefix else key, item)

    for top, value in sorted(bench.items()):
        if top in ("schema_version", "python", "repro_version"):
            continue
        walk(top, value)
    # Drop configuration coordinates -- they describe the benchmark, not
    # its outcome, and changing them legitimately changes everything else.
    return {
        k: v
        for k, v in flat.items()
        if ".config." not in k and not k.endswith(".epochs")
    }


def _is_wall_key(key: str) -> bool:
    return "wall_seconds" in key


def _is_rate_key(key: str) -> bool:
    """Wall-derived throughput: higher is better."""
    return (
        key in RATE_KEYS
        or "per_wall_second" in key
        or "wall_speedup" in key
    )


def _onpath_tokens(flat: dict[str, float]) -> frozenset[str] | None:
    """Key tokens vouched for by the artifact's critical-path section.

    Returns ``None`` when the artifact predates critical-path export, in
    which case every wall regression stays failing (strict mode).
    """
    total = sum(
        v for k, v in flat.items() if k.endswith("critical_path.total_s")
    )
    if total <= 0:
        return None
    tokens = set(_ALWAYS_ONPATH_TOKENS)
    for component, names in _PATH_COMPONENT_TOKENS.items():
        share = (
            sum(
                v
                for k, v in flat.items()
                if k.endswith(f"critical_path.{component}")
            )
            / total
        )
        if share >= ONPATH_MIN_SHARE:
            tokens.update(names)
    return frozenset(tokens)


def diff_bench(
    old: dict[str, Any],
    new: dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    abs_floor_s: float = DEFAULT_ABS_FLOOR_S,
) -> BenchComparison:
    """Compare two parsed bench payloads; see the module docstring."""
    if tolerance <= 0:
        raise TelemetryError(f"tolerance must be positive, got {tolerance}")
    old_flat = flatten_bench(old)
    new_flat = flatten_bench(new)
    comparison = BenchComparison(tolerance=tolerance)
    for key in sorted(old_flat.keys() | new_flat.keys()):
        a, b = old_flat.get(key), new_flat.get(key)
        if a is None:
            comparison.deltas.append(
                BenchDelta(key=key, old=None, new=b, status="added")
            )
            continue
        if b is None:
            comparison.deltas.append(
                BenchDelta(key=key, old=a, new=None, status="removed")
            )
            continue
        ratio = (b / a) if a else (float("inf") if b else 1.0)
        status = "ok"
        if _is_rate_key(key):
            if b * (1.0 + tolerance) < a:
                status = "regression"
            elif b > a * (1.0 + tolerance):
                status = "improvement"
        elif _is_wall_key(key):
            if b > a * (1.0 + tolerance) and b - a > abs_floor_s:
                status = "regression"
            elif b < a * (1.0 - tolerance) and a - b > abs_floor_s:
                status = "improvement"
        else:
            denom = max(abs(a), abs(b), 1.0)
            if abs(b - a) / denom > SIM_DRIFT_TOLERANCE:
                status = "drift"
        comparison.deltas.append(
            BenchDelta(key=key, old=a, new=b, status=status, ratio=ratio)
        )
    # Critical-path gating: with a path decomposition in the artifact, a
    # wall regression in a phase that cannot move end-to-end time is
    # reported but does not fail the build.
    onpath = _onpath_tokens(new_flat) or _onpath_tokens(old_flat)
    if onpath is not None:
        for delta in comparison.deltas:
            if delta.status != "regression":
                continue
            words = set(re.split(r"[^a-z0-9]+", delta.key.lower()))
            if not (words & onpath):
                delta.status = "offpath"
    return comparison


def diff_bench_files(
    old_path: str | os.PathLike,
    new_path: str | os.PathLike,
    tolerance: float = DEFAULT_TOLERANCE,
    abs_floor_s: float = DEFAULT_ABS_FLOOR_S,
) -> BenchComparison:
    """Load and compare two bench JSON files."""
    with open(old_path, "r", encoding="utf-8") as fh:
        old = json.load(fh)
    with open(new_path, "r", encoding="utf-8") as fh:
        new = json.load(fh)
    for path, payload in ((old_path, old), (new_path, new)):
        if not isinstance(payload, dict):
            # json.load happily returns lists/strings/numbers; those are
            # still "malformed bench files" to the caller and must raise
            # the same ValueError a JSON syntax error does.
            raise ValueError(
                f"{path}: bench file must contain a JSON object, "
                f"got {type(payload).__name__}"
            )
    return diff_bench(old, new, tolerance=tolerance, abs_floor_s=abs_floor_s)


def format_diff(comparison: BenchComparison, verbose: bool = False) -> str:
    """Human-readable report (what ``repro bench-diff`` prints)."""
    lines: list[str] = []
    reg = comparison.regressions
    offpath = comparison.offpath_regressions
    imp = comparison.improvements
    drift = comparison.drifts
    added = comparison._with_status("added")
    removed = comparison._with_status("removed")
    compared = sum(
        1 for d in comparison.deltas if d.status not in ("added", "removed")
    )
    lines.append(
        f"compared {compared} metrics "
        f"(tolerance {comparison.tolerance:.0%} on wall-clock keys): "
        f"{len(reg)} regressions, {len(offpath)} off critical path, "
        f"{len(imp)} improvements, {len(drift)} behaviour drifts, "
        f"{len(added)} added, {len(removed)} removed"
    )
    for title, rows in (
        ("REGRESSIONS", reg),
        ("slower, but off the critical path (non-failing)", offpath),
        ("improvements", imp),
        ("behaviour drift (simulated quantities changed)", drift),
    ):
        if rows:
            lines.append(f"{title}:")
            lines.extend(f"  {d.describe()}" for d in rows)
    if verbose:
        for title, rows in (("added", added), ("removed", removed)):
            if rows:
                lines.append(f"{title}:")
                lines.extend(f"  {d.describe()}" for d in rows)
    if not reg:
        lines.append("no wall-clock regressions beyond tolerance.")
    return "\n".join(lines)
