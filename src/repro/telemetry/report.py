"""Self-contained HTML observability dashboard.

Renders a :class:`~repro.telemetry.spans.Tracer` (or an exported JSONL
trace file) into **one** HTML file with zero external references -- no
CDN, no scripts, no fonts, no network: inline CSS and inline SVG only, so
the artifact can be archived with a run, attached to CI, or opened from a
cluster head node years later.

Per traced run the dashboard shows:

- a per-rank phase timeline (compute / ghost-exchange / sync per rank,
  sense / migrate on the runtime track) over simulated time, with spans
  on the iteration critical path (from
  :func:`repro.telemetry.profile.analyze_critical_path`) outlined;
- a critical-path panel: phase breakdown of the path, balance headroom
  and the most frequent bottleneck ranks;
- a rank-by-rank communication heatmap (bytes exchanged per directed
  pair, derated links outlined) from the ``comm.exchange`` events;
- the residual-imbalance trajectory with the paper's 40 % bound drawn,
  anomaly markers overlaid;
- the evolution of sensed relative capacities per node;

plus overall stat tiles and the anomaly table from the health analysis in
:mod:`repro.telemetry.analysis` (the dashboard always re-derives health
from the spans it renders, so a trace file needs no side-channel data).

Colors follow a fixed categorical order validated for color-vision
deficiency (adjacent-pair safe in light and dark mode); anomalies use the
reserved status palette and always carry text, never color alone.
"""

from __future__ import annotations

import html
import json
import math
import os
from typing import Any, Iterable, Sequence

from repro.telemetry.analysis import (
    PAPER_IMBALANCE_BOUND_PCT,
    HealthEvent,
    HealthSnapshot,
    analyze_records,
    fault_summary,
)
from repro.telemetry.profile import (
    CommProfile,
    RunCriticalPath,
    analyze_critical_path,
    comm_profile,
)
from repro.telemetry.spans import NullTracer, Tracer

__all__ = ["render_dashboard", "write_dashboard", "load_trace_records"]

#: Cap on timeline rectangles per run: beyond it the tail is dropped and
#: the truncation is stated on the chart (silent truncation would read as
#: "covered everything").
MAX_TIMELINE_RECTS = 4000

#: Nodes drawn individually on the capacity chart (the categorical
#: palette has eight validated slots; more nodes fold into a note).
MAX_CAPACITY_LINES = 8

# Fixed categorical slot order (validated palette; never cycled).
_LIGHT = {
    "compute": "#2a78d6",  # slot 1, blue
    "ghost-exchange": "#eb6834",  # slot 2, orange
    "sync": "#1baf7a",  # slot 3, aqua
    "sense": "#eda100",  # slot 4, yellow
    "migrate": "#e87ba4",  # slot 5, magenta
    "partition": "#4a3aa7",  # slot 7, violet
}
_DARK = {
    "compute": "#3987e5",
    "ghost-exchange": "#d95926",
    "sync": "#199e70",
    "sense": "#c98500",
    "migrate": "#d55181",
    "partition": "#9085e9",
}
_SERIES_LIGHT = (
    "#2a78d6", "#eb6834", "#1baf7a", "#eda100",
    "#e87ba4", "#008300", "#4a3aa7", "#e34948",
)
_SERIES_DARK = (
    "#3987e5", "#d95926", "#199e70", "#c98500",
    "#d55181", "#008300", "#9085e9", "#e66767",
)
_STATUS = {"warning": "#fab219", "critical": "#d03b3b", "info": "#2a78d6"}

_TIMELINE_PHASES = ("compute", "ghost-exchange", "sync", "sense", "migrate")


# ----------------------------------------------------------------------
def load_trace_records(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Parse an exported JSONL trace back into record dicts."""
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _records_of(
    source: Tracer | NullTracer | str | os.PathLike | Iterable[dict[str, Any]],
) -> list[dict[str, Any]]:
    if isinstance(source, (Tracer, NullTracer)):
        return [s.to_dict() for s in source.spans] + [
            e.to_dict() for e in source.events
        ]
    if isinstance(source, (str, os.PathLike)):
        return load_trace_records(source)
    return list(source)


# ----------------------------------------------------------------------
class _Scale:
    """Linear data->pixel mapping."""

    def __init__(self, lo: float, hi: float, px0: float, px1: float):
        self.lo = lo
        self.span = (hi - lo) or 1.0
        self.px0 = px0
        self.px_span = px1 - px0

    def __call__(self, v: float) -> float:
        return self.px0 + (v - self.lo) / self.span * self.px_span


def _esc(text: Any) -> str:
    return html.escape(str(text), quote=True)


def _fmt_seconds(s: float) -> str:
    if s >= 120:
        return f"{s / 60:.1f} min"
    if s >= 1:
        return f"{s:.1f} s"
    return f"{s * 1e3:.1f} ms"


def _fmt_bytes(b: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if b < 1024 or unit == "GiB":
            return f"{b:.1f} {unit}" if unit != "B" else f"{b:.0f} B"
        b /= 1024
    return f"{b:.1f} GiB"


def _ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    if hi <= lo:
        return [lo]
    raw = (hi - lo) / max(n, 1)
    mag = 10 ** int(f"{raw:e}".split("e")[1])
    for step in (1, 2, 2.5, 5, 10):
        if raw <= step * mag:
            raw = step * mag
            break
    first = int(lo / raw) * raw
    out = []
    t = first
    while t <= hi + raw * 1e-9:
        if t >= lo - raw * 1e-9:
            out.append(round(t, 10))
        t += raw
    return out or [lo]


# ----------------------------------------------------------------------
def _critical_keys(cp: RunCriticalPath | None) -> set[tuple]:
    """Identity keys of spans on a run's critical path.

    Keyed by (name, rank, start, end) rounded to nanoseconds -- segment
    boundaries are copied verbatim from the span records, so the rounding
    only guards against float formatting drift, not real ambiguity.
    """
    keys: set[tuple] = set()
    if cp is None:
        return keys
    for it in cp.iterations:
        for seg in it.segments:
            keys.add(
                (
                    seg.phase,
                    seg.rank,
                    round(seg.start_sim, 9),
                    round(seg.end_sim, 9),
                )
            )
    return keys


def _timeline_svg(
    run: dict[str, Any], critical: set[tuple] | None = None
) -> str:
    """Per-rank phase timeline for one run, as an inline SVG.

    Fault-injection and recovery instants (``fault.*`` / ``recovery.*``
    events) are drawn as full-height vertical markers so an outage lines
    up visually with the migration/repartition activity it triggered.
    Spans whose (name, rank, start, end) identity appears in ``critical``
    get the ``crit`` outline: they gate the iteration's wall time.
    """
    critical = critical or set()
    spans = [
        s
        for s in run["spans"]
        if s["name"] in _TIMELINE_PHASES and s.get("end_sim") is not None
    ]
    if not spans:
        return "<p class='muted'>no phase spans recorded for this run</p>"
    t0 = min(s["start_sim"] for s in spans)
    t1 = max(s["end_sim"] for s in spans)
    ranks = sorted(
        {s["rank"] for s in spans if s.get("rank") is not None}
    )
    rows = ["runtime"] + [f"rank {r}" for r in ranks]
    row_of = {None: 0}
    row_of.update({r: i + 1 for i, r in enumerate(ranks)})
    row_h, gap, left, right, top = 16, 4, 72, 12, 8
    width = 920
    height = top + len(rows) * (row_h + gap) + 24
    x = _Scale(t0, t1, left, width - right)
    parts = [
        f"<svg viewBox='0 0 {width} {height}' width='100%' "
        f"role='img' aria-label='per-rank phase timeline' "
        f"xmlns='http://www.w3.org/2000/svg'>"
    ]
    for i, label in enumerate(rows):
        y = top + i * (row_h + gap)
        parts.append(
            f"<text x='{left - 8}' y='{y + row_h - 4}' class='axis' "
            f"text-anchor='end'>{_esc(label)}</text>"
        )
        parts.append(
            f"<line x1='{left}' y1='{y + row_h}' x2='{width - right}' "
            f"y2='{y + row_h}' class='grid'/>"
        )
    truncated = 0
    if len(spans) > MAX_TIMELINE_RECTS:
        truncated = len(spans) - MAX_TIMELINE_RECTS
        spans = spans[:MAX_TIMELINE_RECTS]
    n_crit = 0
    for s in spans:
        y = top + row_of.get(s.get("rank"), 0) * (row_h + gap)
        x0 = x(s["start_sim"])
        w = max(x(s["end_sim"]) - x0, 0.6)
        on_path = (
            s["name"],
            s.get("rank"),
            round(s["start_sim"], 9),
            round(s["end_sim"], 9),
        ) in critical
        tip = (
            f"{s['name']}: {s['end_sim'] - s['start_sim']:.3f} sim s "
            f"@ t={s['start_sim']:.2f}"
        )
        if on_path:
            n_crit += 1
            tip += " [critical path]"
        cls = f"ph-{s['name']} crit" if on_path else f"ph-{s['name']}"
        parts.append(
            f"<rect x='{x0:.2f}' y='{y + 2}' width='{w:.2f}' "
            f"height='{row_h - 4}' rx='1.5' class='{cls}'>"
            f"<title>{_esc(tip)}</title></rect>"
        )
    axis_y = top + len(rows) * (row_h + gap) + 4
    fault_marks = [
        e
        for e in run.get("fault_events", [])
        if t0 <= e.get("sim", 0.0) <= t1
    ]
    for e in fault_marks:
        is_fault = e["name"].startswith("fault.")
        cls = "mark-fault" if is_fault else "mark-recovery"
        node = (e.get("attributes") or {}).get("node")
        tip = f"{e['name']} @ t={e['sim']:.2f}s"
        if node is not None:
            tip += f" (node {node})"
        parts.append(
            f"<line x1='{x(e['sim']):.2f}' y1='{top}' "
            f"x2='{x(e['sim']):.2f}' y2='{axis_y}' class='{cls}'>"
            f"<title>{_esc(tip)}</title></line>"
        )
    for t in _ticks(t0, t1):
        parts.append(
            f"<text x='{x(t):.1f}' y='{axis_y + 10}' class='axis' "
            f"text-anchor='middle'>{t:g}s</text>"
        )
    parts.append("</svg>")
    legend = "".join(
        f"<span class='chip'><i class='sw ph-{p}'></i>{p}</span>"
        for p in _TIMELINE_PHASES
    )
    if n_crit:
        legend += (
            "<span class='chip'><i class='sw sw-crit'></i>"
            "critical path</span>"
        )
    if fault_marks:
        legend += (
            "<span class='chip'><i class='sw sw-fault'></i>fault</span>"
            "<span class='chip'><i class='sw sw-recovery'></i>recovery</span>"
        )
    note = (
        f"<p class='muted'>timeline truncated: {truncated} spans not drawn"
        "</p>"
        if truncated
        else ""
    )
    return f"<div class='legend'>{legend}</div>{''.join(parts)}{note}"


def _line_path(points: Sequence[tuple[float, float]]) -> str:
    return " ".join(f"{px:.2f},{py:.2f}" for px, py in points)


def _imbalance_svg(
    snapshots: list[HealthSnapshot],
    events: list[HealthEvent],
    bound_pct: float = PAPER_IMBALANCE_BOUND_PCT,
) -> str:
    """Imbalance trajectory with the paper bound and anomaly markers."""
    pts = [
        (s.iteration, s.imbalance_pct)
        for s in snapshots
        if s.imbalance_pct is not None
    ]
    if not pts:
        return "<p class='muted'>no imbalance signal in this run's trace</p>"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    width, height = 920, 220
    left, right, top, bottom = 56, 12, 10, 28
    y_max = max(max(ys) * 1.15, bound_pct * 1.25, 1.0)
    x = _Scale(min(xs), max(xs) or 1, left, width - right)
    y = _Scale(0.0, y_max, height - bottom, top)
    parts = [
        f"<svg viewBox='0 0 {width} {height}' width='100%' role='img' "
        f"aria-label='residual imbalance per iteration' "
        f"xmlns='http://www.w3.org/2000/svg'>"
    ]
    for t in _ticks(0.0, y_max, 4):
        parts.append(
            f"<line x1='{left}' y1='{y(t):.1f}' x2='{width - right}' "
            f"y2='{y(t):.1f}' class='grid'/>"
            f"<text x='{left - 6}' y='{y(t) + 4:.1f}' class='axis' "
            f"text-anchor='end'>{t:g}%</text>"
        )
    for t in _ticks(min(xs), max(xs)):
        parts.append(
            f"<text x='{x(t):.1f}' y='{height - 8}' class='axis' "
            f"text-anchor='middle'>{t:g}</text>"
        )
    # The paper's bound, drawn as a reference line with its own label.
    by = y(bound_pct)
    parts.append(
        f"<line x1='{left}' y1='{by:.1f}' x2='{width - right}' "
        f"y2='{by:.1f}' class='bound'/>"
        f"<text x='{width - right}' y='{by - 5:.1f}' class='bound-label' "
        f"text-anchor='end'>{bound_pct:g}% paper bound</text>"
    )
    parts.append(
        f"<polyline fill='none' class='line-imb' "
        f"points='{_line_path([(x(a), y(b)) for a, b in pts])}'/>"
    )
    for a, b in pts:
        parts.append(
            f"<circle cx='{x(a):.1f}' cy='{y(b):.1f}' r='2.5' "
            f"class='dot-imb'><title>"
            f"{_esc(f'iteration {a}: {b:.2f}% mean imbalance')}"
            f"</title></circle>"
        )
    by_iter = {p[0]: p[1] for p in pts}
    for event in events:
        if event.iteration not in by_iter:
            continue
        color = _STATUS.get(event.severity, _STATUS["info"])
        parts.append(
            f"<circle cx='{x(event.iteration):.1f}' "
            f"cy='{y(by_iter[event.iteration]):.1f}' r='5' fill='none' "
            f"stroke='{color}' stroke-width='2'>"
            f"<title>{_esc(f'[{event.severity}] {event.message}')}</title>"
            f"</circle>"
        )
    parts.append("</svg>")
    legend = (
        "<div class='legend'>"
        "<span class='chip'><i class='sw' style='background:var(--s1)'></i>"
        "mean residual imbalance</span>"
        "<span class='chip'><i class='sw ring-warning'></i>anomaly "
        "(warning)</span>"
        "<span class='chip'><i class='sw ring-critical'></i>anomaly "
        "(critical)</span></div>"
    )
    return legend + "".join(parts)


def _capacity_svg(run: dict[str, Any]) -> str:
    """Sensed relative capacities per node over simulated time."""
    senses = [
        s
        for s in run["spans"]
        if s["name"] == "sense"
        and s.get("attributes", {}).get("capacities") is not None
    ]
    series: dict[int, list[tuple[float, float]]] = {}
    for s in sorted(senses, key=lambda r: r.get("end_sim") or 0.0):
        caps = s["attributes"]["capacities"]
        t = s.get("end_sim") or s["start_sim"]
        for node, c in enumerate(caps):
            series.setdefault(node, []).append((t, float(c)))
    if not series:
        return "<p class='muted'>no capacity history in this run's trace</p>"
    shown = sorted(series)[:MAX_CAPACITY_LINES]
    hidden = len(series) - len(shown)
    width, height = 920, 200
    left, right, top, bottom = 56, 12, 10, 28
    all_pts = [p for n in shown for p in series[n]]
    t_lo = min(p[0] for p in all_pts)
    t_hi = max(p[0] for p in all_pts)
    c_hi = max(max(p[1] for p in all_pts) * 1.2, 1e-6)
    x = _Scale(t_lo, t_hi, left, width - right)
    y = _Scale(0.0, c_hi, height - bottom, top)
    parts = [
        f"<svg viewBox='0 0 {width} {height}' width='100%' role='img' "
        f"aria-label='sensed relative capacity per node' "
        f"xmlns='http://www.w3.org/2000/svg'>"
    ]
    for t in _ticks(0.0, c_hi, 3):
        parts.append(
            f"<line x1='{left}' y1='{y(t):.1f}' x2='{width - right}' "
            f"y2='{y(t):.1f}' class='grid'/>"
            f"<text x='{left - 6}' y='{y(t) + 4:.1f}' class='axis' "
            f"text-anchor='end'>{t:.2g}</text>"
        )
    for t in _ticks(t_lo, t_hi):
        parts.append(
            f"<text x='{x(t):.1f}' y='{height - 8}' class='axis' "
            f"text-anchor='middle'>{t:g}s</text>"
        )
    for i, node in enumerate(shown):
        pts = series[node]
        parts.append(
            f"<polyline fill='none' class='cap-{i}' "
            f"points='{_line_path([(x(a), y(b)) for a, b in pts])}'/>"
        )
        for a, b in pts:
            parts.append(
                f"<circle cx='{x(a):.1f}' cy='{y(b):.1f}' r='2.5' "
                f"class='cap-dot-{i}'><title>"
                f"{_esc(f'node {node} @ t={a:.1f}s: C={b:.4f}')}"
                f"</title></circle>"
            )
    parts.append("</svg>")
    legend = "".join(
        f"<span class='chip'><i class='sw cap-sw-{i}'></i>node {node}</span>"
        for i, node in enumerate(shown)
    )
    note = (
        f"<span class='chip muted'>+{hidden} more nodes not drawn</span>"
        if hidden > 0
        else ""
    )
    return f"<div class='legend'>{legend}{note}</div>{''.join(parts)}"


# ----------------------------------------------------------------------
def _comm_heatmap_svg(profile: CommProfile | None) -> str:
    """Rank-by-rank communication heatmap (directed: row=src, col=dst).

    Cell shade scales with sqrt(bytes) so a dominant pair does not wash
    out the rest of the matrix; cells on derated links (effective
    bandwidth below nominal at send time) get the critical outline.
    Every cell carries a text tooltip -- shade is never the only signal.
    """
    if profile is None or profile.total.size == 0:
        return (
            "<p class='muted'>no communication events in this run's trace "
            "(older traces predate comm profiling)</p>"
        )
    matrix = profile.total
    n = matrix.size
    max_bytes = max(
        (matrix.bytes[i][j] for i in range(n) for j in range(n)), default=0.0
    )
    if max_bytes <= 0:
        return "<p class='muted'>communication events carried zero bytes</p>"
    cell = max(12, min(34, int(380 / n)))
    left, top, pad = 64, 22, 8
    width = left + n * cell + pad
    height = top + n * cell + pad + 14
    parts = [
        f"<svg viewBox='0 0 {width} {height}' "
        f"width='{min(width, 560)}' role='img' "
        f"aria-label='rank-by-rank communication volume' "
        f"xmlns='http://www.w3.org/2000/svg'>"
    ]
    parts.append(
        f"<text x='{left + n * cell / 2:.0f}' y='{top - 10}' class='axis' "
        f"text-anchor='middle'>destination rank</text>"
    )
    label_step = max(1, n // 16)
    for r in range(n):
        if r % label_step == 0:
            parts.append(
                f"<text x='{left + r * cell + cell / 2:.1f}' y='{top - 1}' "
                f"class='axis' text-anchor='middle'>{r}</text>"
            )
            parts.append(
                f"<text x='{left - 5}' y='{top + r * cell + cell / 2 + 3:.1f}'"
                f" class='axis' text-anchor='end'>src {r}</text>"
            )
    for src in range(n):
        for dst in range(n):
            b = matrix.bytes[src][dst]
            xp = left + dst * cell
            yp = top + src * cell
            if b <= 0:
                parts.append(
                    f"<rect x='{xp}' y='{yp}' width='{cell - 1}' "
                    f"height='{cell - 1}' class='hm-empty'/>"
                )
                continue
            op = max(0.08, (b / max_bytes) ** 0.5)
            derated = matrix.derated_bytes[src][dst] > 0
            cls = "hm hm-derated" if derated else "hm"
            tip = (
                f"rank {src} -> rank {dst}: {_fmt_bytes(b)}, "
                f"{matrix.seconds[src][dst]:.3f} s, "
                f"{matrix.messages[src][dst]} msgs"
            )
            if derated:
                tip += (
                    f" ({_fmt_bytes(matrix.derated_bytes[src][dst])}"
                    " over a derated link)"
                )
            parts.append(
                f"<rect x='{xp}' y='{yp}' width='{cell - 1}' "
                f"height='{cell - 1}' class='{cls}' "
                f"fill-opacity='{op:.3f}'>"
                f"<title>{_esc(tip)}</title></rect>"
            )
    parts.append("</svg>")
    derated_total = matrix.derated_bytes_total
    phase_note = ", ".join(
        f"{name} {_fmt_bytes(m.bytes_total)}"
        for name, m in sorted(profile.phases.items())
    )
    summary = (
        f"{_fmt_bytes(matrix.bytes_total)} over {profile.events} exchange "
        f"events ({phase_note})"
    )
    if derated_total > 0:
        pct = 100.0 * derated_total / max(matrix.bytes_total, 1e-30)
        summary += (
            f"; {pct:.1f}% of bytes crossed a derated link"
        )
    if profile.pairs_dropped:
        summary += (
            f"; per-pair detail truncated for {profile.pairs_dropped} pairs"
        )
    legend = (
        "<div class='legend'>"
        "<span class='chip'><i class='sw' style='background:var(--s1)'></i>"
        "bytes (sqrt shade)</span>"
        "<span class='chip'><i class='sw sw-derated'></i>derated link</span>"
        f"<span class='chip muted'>{_esc(summary)}</span></div>"
    )
    return legend + "".join(parts)


def _critical_path_panel(cp: RunCriticalPath | None) -> str:
    """Phase breakdown of the run's critical path, plus slack attribution.

    Answers the two introspection questions directly: *which phase/rank
    bounds this run* (the breakdown and bottleneck-rank counts) and
    *would a better partition have helped* (the balance-headroom bound:
    seconds a perfect capacity-proportional split could save, assuming
    uniform per-rank speeds).
    """
    if cp is None or not cp.iterations:
        return (
            "<p class='muted'>no priced iterations in this run's trace"
            "</p>"
        )
    total = cp.total_s or 1.0
    rows = []
    for phase, secs in (
        ("compute", cp.compute_s),
        ("ghost-exchange", cp.comm_s),
        ("sync", cp.sync_s),
        ("barrier (residual)", cp.barrier_s),
    ):
        pct = 100.0 * secs / total
        bar_w = max(0.0, min(100.0, pct))
        sw = phase.split(" ")[0] if phase != "barrier (residual)" else None
        chip = (
            f"<i class='sw ph-{sw}'></i>"
            if sw in ("compute", "ghost-exchange", "sync")
            else "<i class='sw sw-barrier'></i>"
        )
        rows.append(
            "<tr>"
            f"<td>{chip} {_esc(phase)}</td>"
            f"<td>{_fmt_seconds(secs)}</td>"
            f"<td>{pct:.1f}%</td>"
            f"<td><div class='bar'><div class='bar-fill' "
            f"style='width:{bar_w:.1f}%'></div></div></td>"
            "</tr>"
        )
    table = (
        "<table><thead><tr><th>path phase</th><th>time</th><th>share</th>"
        "<th></th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )
    headroom_pct = 100.0 * cp.balance_headroom_s / total
    counts = cp.critical_rank_counts
    top_ranks = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
    bottlenecks = ", ".join(
        f"rank {r} x{c}" for r, c in top_ranks
    ) or "none attributed"
    note = (
        f"<p class='muted'>critical path over {len(cp.iterations)} "
        f"iterations: {_fmt_seconds(cp.total_s)} -- equals the summed "
        "iteration wall time by construction. Bottleneck ranks: "
        f"{_esc(bottlenecks)}. Perfect rebalancing headroom: "
        f"{_fmt_seconds(cp.balance_headroom_s)} ({headroom_pct:.1f}% of "
        "the path; upper bound assuming uniform per-rank speeds).</p>"
    )
    return table + note


# ----------------------------------------------------------------------
def _stat_tiles(
    runs: list[dict[str, Any]],
    snapshots: list[HealthSnapshot],
    events: list[HealthEvent],
) -> str:
    total_sim = sum(r["duration"] for r in runs)
    iterations = len(snapshots)
    imbs = [s.imbalance_pct for s in snapshots if s.imbalance_pct is not None]
    worst_imb = max(imbs) if imbs else 0.0
    mig_bytes = sum(s.migration_bytes for s in snapshots)
    overheads = [
        s.probe_overhead_fraction
        for r in runs
        for s in (r["snapshots"][-1:] if r["snapshots"] else [])
    ]
    probe_frac = max(overheads) if overheads else 0.0
    crit = sum(1 for e in events if e.severity == "critical")
    anomaly_note = (
        f"{len(events)} ({crit} critical)" if events else "none detected"
    )
    over = worst_imb > PAPER_IMBALANCE_BOUND_PCT
    tiles = [
        ("traced runs", str(len(runs)), ""),
        ("simulated time", _fmt_seconds(total_sim), ""),
        ("iterations", str(iterations), ""),
        (
            "worst mean imbalance",
            f"{worst_imb:.1f}%",
            f"bound {PAPER_IMBALANCE_BOUND_PCT:g}%"
            + (" — exceeded" if over else ""),
        ),
        ("probe overhead", f"{probe_frac:.1%}", "of elapsed sim time"),
        ("migration volume", _fmt_bytes(mig_bytes), ""),
        ("anomalies", anomaly_note, ""),
    ]
    cells = "".join(
        f"<div class='tile{' tile-bad' if 'exceeded' in sub else ''}'>"
        f"<div class='tile-label'>{_esc(label)}</div>"
        f"<div class='tile-value'>{_esc(value)}</div>"
        f"<div class='tile-sub'>{_esc(sub)}</div></div>"
        for label, value, sub in tiles
    )
    return f"<div class='tiles'>{cells}</div>"


def _events_table(events: list[HealthEvent]) -> str:
    if not events:
        return (
            "<p class='muted'>no anomalies: every iteration stayed inside "
            "the configured bounds.</p>"
        )
    rows = "".join(
        "<tr>"
        f"<td><span class='badge badge-{_esc(e.severity)}'>"
        f"{_esc(e.severity)}</span></td>"
        f"<td>{_esc(e.kind)}</td><td>{e.pid}</td><td>{e.iteration}</td>"
        f"<td>{e.sim_time:.2f}</td><td>{_esc(e.message)}</td>"
        "</tr>"
        for e in events
    )
    return (
        "<table><thead><tr><th>severity</th><th>kind</th><th>run</th>"
        "<th>iteration</th><th>sim t (s)</th><th>detail</th></tr></thead>"
        f"<tbody>{rows}</tbody></table>"
    )


def _fault_table(fault_events: list[dict[str, Any]]) -> str:
    """Chronological fault / recovery event table (chaos runs only)."""
    rows = []
    for e in sorted(fault_events, key=lambda r: r.get("sim", 0.0)):
        attrs = e.get("attributes") or {}
        is_fault = e["name"].startswith("fault.")
        badge = "critical" if is_fault else "info"
        detail = ", ".join(
            f"{k}={v}"
            for k, v in sorted(attrs.items())
            if isinstance(v, (int, float, str, bool))
        )
        rows.append(
            "<tr>"
            f"<td><span class='badge badge-{badge}'>"
            f"{'fault' if is_fault else 'recovery'}</span></td>"
            f"<td>{_esc(e['name'])}</td><td>{e.get('pid', 0)}</td>"
            f"<td>{e.get('sim', 0.0):.2f}</td><td>{_esc(detail)}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr><th>class</th><th>event</th><th>run</th>"
        "<th>sim t (s)</th><th>detail</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _run_summary_table(runs: list[dict[str, Any]]) -> str:
    rows = []
    for r in runs:
        snaps = r["snapshots"]
        imbs = [s.imbalance_pct for s in snaps if s.imbalance_pct is not None]
        worst = f"{max(imbs):.1f}%" if imbs else "—"
        last = snaps[-1] if snaps else None
        stale = (
            f"{last.staleness_s:.1f}"
            if last is not None and last.staleness_s is not None
            else "—"
        )
        frac = (
            f"{last.probe_overhead_fraction:.1%}" if last is not None else "—"
        )
        rows.append(
            "<tr>"
            f"<td>{r['pid']}</td><td>{_esc(r['label'] or '—')}</td>"
            f"<td>{len(snaps)}</td>"
            f"<td>{_fmt_seconds(r['duration'])}</td>"
            f"<td>{worst}</td><td>{frac}</td><td>{stale}</td>"
            f"<td>{len(r['events'])}</td></tr>"
        )
    return (
        "<table><thead><tr><th>run</th><th>label</th><th>iterations</th>"
        "<th>sim time</th><th>worst imbalance</th><th>probe overhead</th>"
        "<th>final staleness (s)</th><th>anomalies</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _css() -> str:
    light_ph = "".join(
        f".ph-{k}{{fill:{v}}}.sw.ph-{k}{{background:{v}}}"
        for k, v in _LIGHT.items()
    )
    dark_ph = "".join(
        f".ph-{k}{{fill:{v}}}.sw.ph-{k}{{background:{v}}}"
        for k, v in _DARK.items()
    )
    light_cap = "".join(
        f".cap-{i}{{stroke:{c};stroke-width:2}}"
        f".cap-dot-{i}{{fill:{c}}}.cap-sw-{i}{{background:{c}}}"
        for i, c in enumerate(_SERIES_LIGHT)
    )
    dark_cap = "".join(
        f".cap-{i}{{stroke:{c};stroke-width:2}}"
        f".cap-dot-{i}{{fill:{c}}}.cap-sw-{i}{{background:{c}}}"
        for i, c in enumerate(_SERIES_DARK)
    )
    return f"""
:root {{
  color-scheme: light dark;
}}
body {{
  --surface-1:#fcfcfb; --page:#f9f9f7; --ink:#0b0b0b; --ink-2:#52514e;
  --muted:#898781; --grid:#e1e0d9; --axis:#c3c2b7; --s1:#2a78d6;
  --warning:#fab219; --critical:#d03b3b;
  --border:rgba(11,11,11,0.10);
  margin:0; background:var(--page); color:var(--ink);
  font:14px/1.5 system-ui,-apple-system,"Segoe UI",sans-serif;
}}
{light_ph}{light_cap}
@media (prefers-color-scheme: dark) {{
  body {{
    --surface-1:#1a1a19; --page:#0d0d0d; --ink:#ffffff; --ink-2:#c3c2b7;
    --muted:#898781; --grid:#2c2c2a; --axis:#383835; --s1:#3987e5;
    --border:rgba(255,255,255,0.10);
  }}
  {dark_ph}{dark_cap}
}}
main {{ max-width: 1020px; margin: 0 auto; padding: 24px 16px 64px; }}
h1 {{ font-size: 20px; margin: 0 0 2px; }}
h2 {{ font-size: 16px; margin: 28px 0 8px; }}
h3 {{ font-size: 13px; margin: 16px 0 4px; color: var(--ink-2);
     font-weight: 600; }}
.subtitle {{ color: var(--ink-2); margin: 0 0 20px; }}
.card {{ background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; margin: 10px 0; }}
.tiles {{ display: grid; gap: 10px;
  grid-template-columns: repeat(auto-fit, minmax(128px, 1fr)); }}
.tile {{ background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 12px; }}
.tile-label {{ font-size: 11px; color: var(--ink-2);
  text-transform: uppercase; letter-spacing: .04em; }}
.tile-value {{ font-size: 22px; font-weight: 600; margin: 2px 0; }}
.tile-sub {{ font-size: 11px; color: var(--muted); min-height: 1em; }}
.tile-bad .tile-value, .tile-bad .tile-sub {{ color: var(--critical); }}
svg {{ display: block; }}
svg .grid {{ stroke: var(--grid); stroke-width: 1; }}
svg .axis {{ fill: var(--muted); font-size: 10px;
  font-family: system-ui,sans-serif; }}
svg .bound {{ stroke: var(--critical); stroke-width: 1.5;
  stroke-dasharray: 6 4; }}
svg .bound-label {{ fill: var(--critical); font-size: 10px;
  font-family: system-ui,sans-serif; }}
svg .line-imb {{ stroke: var(--s1); stroke-width: 2; }}
svg .dot-imb {{ fill: var(--s1); }}
.legend {{ display: flex; flex-wrap: wrap; gap: 10px;
  margin: 4px 0 6px; }}
.chip {{ display: inline-flex; align-items: center; gap: 5px;
  font-size: 12px; color: var(--ink-2); }}
.sw {{ width: 10px; height: 10px; border-radius: 2px;
  display: inline-block; }}
.ring-warning {{ background: none; border: 2px solid var(--warning);
  border-radius: 50%; }}
.ring-critical {{ background: none; border: 2px solid var(--critical);
  border-radius: 50%; }}
svg .mark-fault {{ stroke: var(--critical); stroke-width: 1.5;
  stroke-dasharray: 3 3; }}
svg .mark-recovery {{ stroke: #008300; stroke-width: 1.5;
  stroke-dasharray: 3 3; }}
.sw-fault {{ background: var(--critical); }}
.sw-recovery {{ background: #008300; }}
svg rect.crit {{ stroke: var(--ink); stroke-width: 1.1; }}
.sw-crit {{ background: none; border: 1.5px solid var(--ink);
  border-radius: 2px; }}
svg .hm {{ fill: var(--s1); }}
svg .hm-empty {{ fill: none; stroke: var(--grid); stroke-width: 0.5; }}
svg .hm-derated {{ stroke: var(--critical); stroke-width: 1.4; }}
.sw-derated {{ background: none; border: 1.5px solid var(--critical);
  border-radius: 2px; }}
.sw-barrier {{ background: var(--axis); }}
.bar {{ background: var(--grid); border-radius: 3px; height: 8px;
  min-width: 120px; }}
.bar-fill {{ background: var(--s1); border-radius: 3px; height: 8px; }}
.bar-cost {{ background: var(--warning); }}
.bar + .bar {{ margin-top: 2px; }}
svg .cal-band {{ fill: var(--s1); opacity: 0.16; }}
svg .cal-line {{ stroke: var(--s1); stroke-width: 2; }}
svg .cal-hit {{ fill: var(--s1); }}
svg .cal-miss {{ fill: var(--critical); }}
.muted {{ color: var(--muted); font-size: 12px; }}
table {{ border-collapse: collapse; width: 100%; font-size: 13px; }}
th, td {{ text-align: left; padding: 5px 10px;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; }}
th {{ color: var(--ink-2); font-weight: 600; font-size: 12px; }}
.badge {{ display: inline-block; padding: 1px 7px; border-radius: 9px;
  font-size: 11px; font-weight: 600; color: #0b0b0b; }}
.badge-warning {{ background: var(--warning); }}
.badge-critical {{ background: var(--critical); color: #ffffff; }}
.badge-info {{ background: var(--s1); color: #ffffff; }}
"""


def _fault_section(fault_events: list[dict[str, Any]]) -> str:
    """Fault/recovery section: omitted entirely on undisturbed runs."""
    if not fault_events:
        return ""
    agg = fault_summary(fault_events)
    ttr = agg["mean_time_to_recover_s"]
    sub = (
        f"{agg['num_fault_events']} fault events, "
        f"{agg['num_recovery_events']} recovery events"
        + (f", mean time-to-recover {_fmt_seconds(ttr)}" if ttr else "")
    )
    return (
        "<h2>Faults and recoveries</h2>"
        f"<p class='muted'>{_esc(sub)}</p>"
        f"<div class='card'>{_fault_table(fault_events)}</div>"
    )


def _decision_rows(
    decision_events: list[dict[str, Any]],
) -> list[dict[str, Any]]:
    """Map ``decision.*`` trace events back to ledger-shaped records.

    Each event mirrors its full ledger row (the ``kind`` rides in the
    event name), so :func:`repro.learn.audit.reconcile` computes the
    same calibration and regret numbers from a trace that
    ``repro explain`` computes from the ledger file.
    """
    rows = []
    for e in decision_events:
        attrs = dict(e.get("attributes") or {})
        kind = str(e.get("name", ""))[len("decision."):]
        rows.append({"kind": kind, **attrs})
    rows.sort(key=lambda r: int(r.get("seq", 0)))
    return rows


def _gate_table(
    gate_rows: list[dict[str, Any]],
    per_decision: list[dict[str, Any]],
) -> str:
    """Accept/skip timeline with predicted-payoff vs migration-cost bars."""
    from repro.learn.audit import decode_float

    if not gate_rows:
        return (
            "<p class='muted'>no gate decisions in this run's trace</p>"
        )
    oracle_by_seq = {int(d["seq"]): d for d in per_decision}
    finite = [
        v
        for r in gate_rows
        for v in (
            decode_float(r.get("payoff_seconds")),
            decode_float(r.get("cost_seconds")),
        )
        if v is not None and math.isfinite(v)
    ]
    scale = max(finite) if finite else 1.0
    scale = scale if scale > 0 else 1.0
    rows = []
    for r in gate_rows:
        payoff = decode_float(r.get("payoff_seconds"))
        cost = decode_float(r.get("cost_seconds")) or 0.0
        accept = bool(r.get("repartition"))
        badge = "info" if accept else "warning"
        if payoff is not None and math.isinf(payoff):
            payoff_label, payoff_w = "∞ (cold)", 100.0
        else:
            payoff_label = _fmt_seconds(payoff or 0.0)
            payoff_w = min(100.0, 100.0 * (payoff or 0.0) / scale)
        cost_w = min(100.0, 100.0 * cost / scale)
        oracle = oracle_by_seq.get(int(r.get("seq", -1)))
        if oracle is None:
            verdict = "—"
        elif oracle["agree"]:
            verdict = "agrees"
        else:
            verdict = (
                f"differs (+{_fmt_seconds(oracle['regret_seconds'])} "
                f"regret)"
            )
        rows.append(
            "<tr>"
            f"<td>{int(r.get('seq', -1))}</td>"
            f"<td>{float(decode_float(r.get('t')) or 0.0):.2f}</td>"
            f"<td><span class='badge badge-{badge}'>"
            f"{'accept' if accept else 'skip'}</span></td>"
            f"<td>{_esc(str(r.get('reason', '?')))}</td>"
            f"<td>{_esc(payoff_label)}</td>"
            f"<td>{_fmt_seconds(cost)}</td>"
            "<td>"
            f"<div class='bar'><div class='bar-fill' "
            f"style='width:{payoff_w:.1f}%'></div></div>"
            f"<div class='bar'><div class='bar-fill bar-cost' "
            f"style='width:{cost_w:.1f}%'></div></div>"
            "</td>"
            f"<td>{_esc(verdict)}</td>"
            "</tr>"
        )
    legend = (
        "<div class='legend'>"
        "<span class='chip'><i class='sw' style='background:var(--s1)'>"
        "</i>predicted payoff</span>"
        "<span class='chip'><i class='sw' "
        "style='background:var(--warning)'></i>migration cost</span>"
        "</div>"
    )
    return legend + (
        "<table><thead><tr><th>seq</th><th>sim t (s)</th><th>action</th>"
        "<th>reason</th><th>payoff</th><th>cost</th>"
        "<th>payoff vs cost</th><th>hindsight oracle</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _calibration_svg(rows: list[dict[str, Any]]) -> str:
    """Predicted iteration cost with its 95% CI band vs the measured truth."""
    from repro.learn.audit import decode_float

    pts = []
    for r in rows:
        if r.get("kind") != "prediction":
            continue
        lo = decode_float(r.get("lo"))
        hi = decode_float(r.get("hi"))
        predicted = decode_float(r.get("predicted"))
        actual = decode_float(r.get("actual"))
        if predicted is None or actual is None:
            continue
        if lo is None or hi is None or not (
            math.isfinite(lo) and math.isfinite(hi)
        ):
            continue  # cold model: an infinite band draws as nothing
        pts.append((int(r.get("iteration", len(pts))), predicted, lo, hi,
                    actual))
    if len(pts) < 2:
        return (
            "<p class='muted'>fewer than two warm predictions: no "
            "calibration signal to draw</p>"
        )
    pts.sort(key=lambda p: p[0])
    xs = [p[0] for p in pts]
    y_lo = min(min(p[2] for p in pts), min(p[4] for p in pts))
    y_hi = max(max(p[3] for p in pts), max(p[4] for p in pts))
    pad = 0.05 * (y_hi - y_lo or 1.0)
    width, height = 920, 220
    left, right, top, bottom = 56, 12, 10, 28
    x = _Scale(min(xs), max(xs) or 1, left, width - right)
    y = _Scale(y_lo - pad, y_hi + pad, height - bottom, top)
    parts = [
        f"<svg viewBox='0 0 {width} {height}' width='100%' role='img' "
        f"aria-label='predicted iteration cost with 95% CI vs measured' "
        f"xmlns='http://www.w3.org/2000/svg'>"
    ]
    for t in _ticks(y_lo, y_hi, 4):
        parts.append(
            f"<line x1='{left}' y1='{y(t):.1f}' x2='{width - right}' "
            f"y2='{y(t):.1f}' class='grid'/>"
            f"<text x='{left - 6}' y='{y(t) + 4:.1f}' class='axis' "
            f"text-anchor='end'>{t:.3g}s</text>"
        )
    for t in _ticks(min(xs), max(xs)):
        parts.append(
            f"<text x='{x(t):.1f}' y='{height - 8}' class='axis' "
            f"text-anchor='middle'>{t:g}</text>"
        )
    band = " ".join(
        f"{x(p[0]):.1f},{y(p[3]):.1f}" for p in pts
    ) + " " + " ".join(
        f"{x(p[0]):.1f},{y(p[2]):.1f}" for p in reversed(pts)
    )
    parts.append(f"<polygon points='{band}' class='cal-band'/>")
    parts.append(
        f"<polyline fill='none' class='cal-line' "
        f"points='{_line_path([(x(p[0]), y(p[1])) for p in pts])}'/>"
    )
    for it, predicted, lo, hi, actual in pts:
        covered = lo <= actual <= hi
        cls = "cal-hit" if covered else "cal-miss"
        parts.append(
            f"<circle cx='{x(it):.1f}' cy='{y(actual):.1f}' r='2.5' "
            f"class='{cls}'><title>"
            f"{_esc(f'iteration {it}: measured {actual:.4f}s, predicted {predicted:.4f}s, 95% CI [{lo:.4f}, {hi:.4f}]' + ('' if covered else ' — missed'))}"
            f"</title></circle>"
        )
    parts.append("</svg>")
    legend = (
        "<div class='legend'>"
        "<span class='chip'><i class='sw' style='background:var(--s1)'>"
        "</i>predicted cost (line) and 95% CI (band)</span>"
        "<span class='chip'><i class='sw cal-sw-miss' "
        "style='background:var(--critical)'></i>measured outside the CI"
        "</span></div>"
    )
    return legend + "".join(parts)


def _decision_section(decision_events: list[dict[str, Any]]) -> str:
    """Decision-provenance section: omitted when no learner ran.

    One card per traced run carrying ``decision.*`` events: the gate
    accept/skip timeline with payoff-vs-cost bars, and the calibration
    plot of one-step-ahead cost predictions against measured truth.
    The headline numbers come from the same
    :func:`repro.learn.audit.reconcile` that backs ``repro explain``
    and ``/campaigns/<id>/decisions``.
    """
    if not decision_events:
        return ""
    from repro.learn.audit import reconcile

    pids = sorted({e.get("pid", 0) for e in decision_events})
    parts = ["<h2>Decision provenance</h2>"]
    for pid in pids:
        rows = _decision_rows(
            [e for e in decision_events if e.get("pid", 0) == pid]
        )
        report = reconcile(rows)
        gate = report["gate"]
        cal = report["calibration"]
        regret = report["regret"]
        coverage = (
            f"{cal['coverage']:.1%} of {cal['predictions']} warm CIs"
            if cal["coverage"] is not None
            else "no warm predictions"
        )
        agreement = (
            f"{regret['agreement_rate']:.0%} oracle agreement, "
            f"{_fmt_seconds(regret['cumulative_regret_seconds'])} "
            f"cumulative regret"
            if regret["agreement_rate"] is not None
            else "no gate decisions to replay"
        )
        sub = (
            f"{report['records']} decision records — "
            f"{gate['decisions']} gate decisions "
            f"({gate['accepts']} accepts, {gate['skips']} skips); "
            f"95% CI covered {coverage}; {agreement}."
        )
        head = (
            f"<h3>Run {pid}</h3>" if len(pids) > 1 else ""
        )
        parts.append(
            f"{head}<p class='muted'>{_esc(sub)}</p>"
            "<div class='card'><h3>Repartition gate timeline</h3>"
            f"{_gate_table([r for r in rows if r.get('kind') == 'gate'], regret['per_decision'])}</div>"
            "<div class='card'><h3>Prediction calibration</h3>"
            f"{_calibration_svg(rows)}</div>"
        )
    return "".join(parts)


# ----------------------------------------------------------------------
def render_dashboard(
    source: Tracer | NullTracer | str | os.PathLike | Iterable[dict[str, Any]],
    title: str = "Adaptive runtime health dashboard",
) -> str:
    """Render the trace into one self-contained HTML page (a string)."""
    records = _records_of(source)
    run_labels: dict[int, str] = {}
    if isinstance(source, (Tracer, NullTracer)):
        run_labels = dict(source.run_labels)
    snapshots, events = analyze_records(records, run_labels=run_labels)
    cp_by_pid = {
        cp.pid: cp
        for cp in analyze_critical_path(records, run_labels=run_labels)
    }
    comm_by_pid = {
        p.pid: p for p in comm_profile(records, run_labels=run_labels)
    }
    spans = [r for r in records if r.get("type") == "span"]
    fault_events = [
        r
        for r in records
        if r.get("type") == "event"
        and str(r.get("name", "")).startswith(("fault.", "recovery."))
    ]
    decision_events = [
        r
        for r in records
        if r.get("type") == "event"
        and str(r.get("name", "")).startswith("decision.")
    ]
    pids = sorted({s["pid"] for s in spans})
    runs: list[dict[str, Any]] = []
    for pid in pids:
        run_spans = [s for s in spans if s["pid"] == pid]
        root = [s for s in run_spans if s["name"] == "run"]
        label = run_labels.get(pid) or (
            str(root[0]["attributes"].get("partitioner", "")) if root else ""
        )
        ends = [s["end_sim"] for s in run_spans if s.get("end_sim") is not None]
        starts = [s["start_sim"] for s in run_spans]
        runs.append(
            {
                "pid": pid,
                "label": label,
                "spans": run_spans,
                "snapshots": [s for s in snapshots if s.pid == pid],
                "events": [e for e in events if e.pid == pid],
                "fault_events": [
                    e for e in fault_events if e.get("pid") == pid
                ],
                "duration": (max(ends) - min(starts)) if ends else 0.0,
            }
        )
    sections = []
    for run in runs:
        if not run["snapshots"] and not any(
            s["name"] in _TIMELINE_PHASES for s in run["spans"]
        ):
            continue  # bookkeeping-only pid (no executed iterations)
        head = f"Run {run['pid']}"
        if run["label"]:
            head += f" — {_esc(run['label'])}"
        cp = cp_by_pid.get(run["pid"])
        sections.append(
            f"<h2>{head}</h2>"
            "<div class='card'><h3>Per-rank phase timeline "
            "(simulated time)</h3>"
            f"{_timeline_svg(run, _critical_keys(cp))}</div>"
            "<div class='card'><h3>Critical path</h3>"
            f"{_critical_path_panel(cp)}</div>"
            "<div class='card'><h3>Communication matrix "
            "(rank &times; rank)</h3>"
            f"{_comm_heatmap_svg(comm_by_pid.get(run['pid']))}</div>"
            "<div class='card'><h3>Residual load imbalance per iteration"
            "</h3>"
            f"{_imbalance_svg(run['snapshots'], run['events'])}</div>"
            "<div class='card'><h3>Sensed relative capacities</h3>"
            f"{_capacity_svg(run)}</div>"
        )
    doc = f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_css()}</style>
</head>
<body>
<main>
<h1>{_esc(title)}</h1>
<p class="subtitle">{len(runs)} traced run(s), {len(snapshots)} iteration
snapshots, {len(events)} anomalies — generated offline, no external
resources.</p>
{_stat_tiles(runs, snapshots, events)}
{_fault_section(fault_events)}
{_decision_section(decision_events)}
<h2>Anomalies</h2>
<div class="card">{_events_table(events)}</div>
<h2>Run summary</h2>
<div class="card">{_run_summary_table(runs)}</div>
{''.join(sections)}
</main>
</body>
</html>
"""
    return doc


def write_dashboard(
    source: Tracer | NullTracer | str | os.PathLike | Iterable[dict[str, Any]],
    path: str | os.PathLike,
    title: str = "Adaptive runtime health dashboard",
) -> None:
    """Render and write the dashboard HTML file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_dashboard(source, title=title))
