"""Trace and metrics exporters.

Three output shapes, one tracer:

- :func:`write_jsonl` -- the raw event log, one JSON object per span or
  instant event, for ad-hoc analysis (``jq``, pandas);
- :func:`write_chrome_trace` -- Chrome trace-event format (the JSON array
  flavour), loadable in Perfetto / ``chrome://tracing``: each traced run
  is a process (``pid``), the runtime control flow is thread 0 and every
  simulated rank gets its own thread track, timestamped in *simulated*
  microseconds;
- :func:`metrics_summary` / :func:`write_metrics_json` /
  :func:`write_metrics_csv` -- flat quantitative summaries (the benchmark
  suite consumes these to track the perf trajectory across PRs).

All serialization tolerates numpy scalars/arrays in span attributes
without importing numpy (duck-typed via ``item``/``tolist``), keeping the
telemetry package dependency-free.
"""

from __future__ import annotations

import csv
import io
import json
import os
from typing import Any, Iterable

from repro.telemetry.metrics import MetricsRegistry, NullMetricsRegistry
from repro.telemetry.spans import NullTracer, Span, Tracer

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "aggregate_phases",
    "metrics_summary",
    "write_metrics_json",
    "write_metrics_csv",
]

#: Chrome thread id of the runtime control track; rank ``k`` maps to
#: thread ``k + 1``.
RUNTIME_TID = 0


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays (duck-typed) and other oddballs."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "tolist"):  # numpy array
        return _jsonable(value.tolist())
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def _tid(span_rank: int | None) -> int:
    return RUNTIME_TID if span_rank is None else span_rank + 1


def chrome_trace_events(
    tracer: Tracer | NullTracer,
) -> list[dict[str, Any]]:
    """The tracer's record as a Chrome trace-event list.

    Spans become complete (``ph="X"``) events with ``ts``/``dur`` in
    simulated microseconds; instant events become ``ph="i"``; process and
    thread names arrive as ``ph="M"`` metadata so Perfetto labels each
    run and each simulated rank.
    """
    out: list[dict[str, Any]] = []
    threads_seen: set[tuple[int, int]] = set()
    for span in tracer.spans:
        tid = _tid(span.rank)
        threads_seen.add((span.pid, tid))
        args = {k: _jsonable(v) for k, v in span.attributes.items()}
        args["wall_seconds"] = span.wall_duration
        out.append(
            {
                "name": span.name,
                "cat": "sim",
                "ph": "X",
                "ts": span.start_sim * 1e6,
                "dur": span.sim_duration * 1e6,
                "pid": span.pid,
                "tid": tid,
                "args": args,
            }
        )
    for event in tracer.events:
        tid = _tid(event.rank)
        threads_seen.add((event.pid, tid))
        out.append(
            {
                "name": event.name,
                "cat": "sim",
                "ph": "i",
                "s": "p",  # process-scoped instant
                "ts": event.sim * 1e6,
                "pid": event.pid,
                "tid": tid,
                "args": {k: _jsonable(v) for k, v in event.attributes.items()},
            }
        )
    meta: list[dict[str, Any]] = []
    for pid in sorted({p for p, _ in threads_seen}):
        label = tracer.run_labels.get(pid, "trace")
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": RUNTIME_TID,
                "args": {"name": f"{label} (run {pid})"},
            }
        )
    for pid, tid in sorted(threads_seen):
        name = "runtime" if tid == RUNTIME_TID else f"rank {tid - 1}"
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return meta + out


def write_chrome_trace(tracer: Tracer | NullTracer, path: str | os.PathLike) -> None:
    """Write the Chrome/Perfetto-loadable JSON trace-event array."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace_events(tracer), fh)


def write_jsonl(tracer: Tracer | NullTracer, path: str | os.PathLike) -> None:
    """Write the raw span + event log, one JSON object per line.

    Records are ordered by simulated start time (ties broken by span id)
    so the log reads chronologically.
    """
    records: list[dict[str, Any]] = [s.to_dict() for s in tracer.spans]
    records += [e.to_dict() for e in tracer.events]
    records.sort(
        key=lambda r: (r.get("start_sim", r.get("sim", 0.0)) or 0.0,
                       r.get("span_id", 0))
    )
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(_jsonable(record)) + "\n")


def aggregate_phases(
    tracer: Tracer | NullTracer,
    spans: Iterable[Span] | None = None,
) -> dict[str, dict[str, float]]:
    """Per-phase totals: ``{name: {count, wall_seconds, sim_seconds}}``.

    Child spans are *not* subtracted from parents, so "run" will roughly
    equal the sum of its parts; compare siblings, not a child against its
    parent.
    """
    out: dict[str, dict[str, float]] = {}
    for span in (tracer.spans if spans is None else spans):
        agg = out.setdefault(
            span.name, {"count": 0, "wall_seconds": 0.0, "sim_seconds": 0.0}
        )
        agg["count"] += 1
        agg["wall_seconds"] += span.wall_duration
        agg["sim_seconds"] += span.sim_duration
    return out


def metrics_summary(
    source: Tracer | NullTracer | MetricsRegistry | NullMetricsRegistry,
) -> dict[str, Any]:
    """Flat dict summary of a registry (or of a tracer's registry + phases).

    Given a tracer, the summary also folds in the per-phase span totals,
    which is what the benchmark suite records across PRs.
    """
    if isinstance(source, (Tracer, NullTracer)):
        return {
            "phases": aggregate_phases(source),
            "metrics": source.metrics.summary(),
            "num_spans": len(source.spans),
            "num_events": len(source.events),
            "num_runs": len(source.run_labels),
        }
    return {"phases": {}, "metrics": source.summary()}


def write_metrics_json(
    source: Tracer | NullTracer | MetricsRegistry | NullMetricsRegistry,
    path: str | os.PathLike,
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(_jsonable(metrics_summary(source)), fh, indent=2)
        fh.write("\n")


def metrics_csv(registry: MetricsRegistry | NullMetricsRegistry) -> str:
    """The registry's flat rows as CSV text (union of all columns)."""
    rows = registry.rows()
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=columns, restval="")
    writer.writeheader()
    for row in rows:
        writer.writerow({k: _jsonable(v) for k, v in row.items()})
    return buf.getvalue()


def write_metrics_csv(
    registry: MetricsRegistry | NullMetricsRegistry, path: str | os.PathLike
) -> None:
    with open(path, "w", encoding="utf-8", newline="") as fh:
        fh.write(metrics_csv(registry))
