"""Telemetry: structured tracing, metrics and trace export for the runtime.

The observability backbone of the adaptive runtime.  Three modules, no
third-party dependencies:

- :mod:`repro.telemetry.spans` -- :class:`Tracer` records nested phase
  spans (sense, capacity, partition, migrate, ghost-exchange, compute,
  sync) over both the host wall clock and the simulated cluster clock;
  :data:`NULL_TRACER` is the zero-cost default everywhere.
- :mod:`repro.telemetry.metrics` -- :class:`MetricsRegistry` of counters,
  gauges and histograms (probe cost, migration bytes, boxes split,
  residual imbalance, per-node utilization, iteration durations).
- :mod:`repro.telemetry.export` -- JSONL event logs, Chrome trace-event
  JSON (loadable in Perfetto, one track per simulated rank) and flat
  metric summaries for the benchmark suite.

On top of the recording layer sit the consumers added in PR 2:

- :mod:`repro.telemetry.analysis` -- :class:`HealthMonitor` subscribes to
  a live tracer via the span-close observer hook, derives per-iteration
  :class:`HealthSnapshot` records (imbalance vs. the paper's 40 % bound,
  capacity drift, sensing staleness, probe-overhead fraction, migration
  churn) and runs pluggable anomaly detectors.
- :mod:`repro.telemetry.report` -- renders a tracer or JSONL trace into a
  single self-contained HTML dashboard (inline SVG, no external
  resources): ``repro report <experiment-or-trace>``.
- :mod:`repro.telemetry.benchdiff` -- compares ``BENCH_*.json`` perf
  artifacts across runs and flags wall-clock regressions:
  ``repro bench-diff OLD NEW``.
- :mod:`repro.telemetry.profile` -- performance introspection over the
  span stream: per-iteration critical-path analysis with per-rank slack,
  rank-by-rank communication matrices with derated-link attribution,
  collapsed-stack/speedscope flamegraph export, offline metrics
  reconstruction and OpenMetrics text exposition: ``repro profile``.
- :mod:`repro.telemetry.names` -- the central registry of span/event
  names the instrumentation may emit (linted by
  ``tools/check_span_names.py``).
- :mod:`repro.telemetry.live` -- cross-process campaign observability:
  deterministic worker tracers, per-cell artifact bundles, telemetry
  digests, the append-only progress log, live progress aggregation
  (throughput/ETA) and OpenMetrics reconstruction for ``repro serve``.

Instrumented call sites accept an injectable tracer and default to the
ambient one (:func:`get_active_tracer`), which is the no-op tracer unless
:func:`activate` installed a real one::

    from repro.telemetry import Tracer, activate
    from repro.telemetry.export import write_chrome_trace

    tracer = Tracer()
    with activate(tracer):
        SamrRuntime(workload, cluster, partitioner).run()
    write_chrome_trace(tracer, "run.trace.json")
"""

from repro.telemetry.analysis import (
    PAPER_IMBALANCE_BOUND_PCT,
    AnomalyDetector,
    HealthEvent,
    HealthMonitor,
    HealthSnapshot,
    RollingZScore,
    ThresholdRule,
    analyze_records,
    default_detectors,
    fault_summary,
)
from repro.telemetry.benchdiff import (
    diff_bench,
    diff_bench_files,
    flatten_bench,
    format_diff,
)
from repro.telemetry.export import (
    aggregate_phases,
    chrome_trace_events,
    metrics_csv,
    metrics_summary,
    write_chrome_trace,
    write_jsonl,
    write_metrics_csv,
    write_metrics_json,
)
from repro.telemetry.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    openmetrics_selfcheck,
)
from repro.telemetry.live import (
    ARTIFACT_FILES,
    EVENTS_NAME,
    LiveProgress,
    ProgressLog,
    TelemetryDigest,
    deterministic_tracer,
    digest_from_record,
    format_sse,
    registry_from_progress,
    write_cell_bundle,
)
from repro.telemetry.names import EVENT_NAMES, EVENT_PREFIXES, SPAN_NAMES
from repro.telemetry.profile import (
    CommMatrix,
    CommProfile,
    IterationPath,
    LiveTop,
    PathSegment,
    RunCriticalPath,
    analyze_critical_path,
    comm_profile,
    flamegraph_collapsed,
    format_critical_path_report,
    registry_from_records,
    speedscope_document,
    write_collapsed,
    write_openmetrics,
    write_speedscope,
)
from repro.telemetry.report import (
    load_trace_records,
    render_dashboard,
    write_dashboard,
)
from repro.telemetry.spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    activate,
    get_active_tracer,
)

__all__ = [
    # spans
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "TraceEvent",
    "activate",
    "get_active_tracer",
    # metrics
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    # export
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "aggregate_phases",
    "metrics_summary",
    "metrics_csv",
    "write_metrics_csv",
    "write_metrics_json",
    # analysis
    "PAPER_IMBALANCE_BOUND_PCT",
    "AnomalyDetector",
    "HealthEvent",
    "HealthMonitor",
    "HealthSnapshot",
    "RollingZScore",
    "ThresholdRule",
    "analyze_records",
    "default_detectors",
    "fault_summary",
    # report
    "load_trace_records",
    "render_dashboard",
    "write_dashboard",
    # benchdiff
    "diff_bench",
    "diff_bench_files",
    "flatten_bench",
    "format_diff",
    # metrics exposition
    "openmetrics_selfcheck",
    # names registry
    "SPAN_NAMES",
    "EVENT_NAMES",
    "EVENT_PREFIXES",
    # profile
    "PathSegment",
    "IterationPath",
    "RunCriticalPath",
    "analyze_critical_path",
    "format_critical_path_report",
    "CommMatrix",
    "CommProfile",
    "comm_profile",
    "flamegraph_collapsed",
    "speedscope_document",
    "registry_from_records",
    "write_collapsed",
    "write_speedscope",
    "write_openmetrics",
    "LiveTop",
    # live campaign observability
    "ARTIFACT_FILES",
    "EVENTS_NAME",
    "LiveProgress",
    "ProgressLog",
    "TelemetryDigest",
    "deterministic_tracer",
    "digest_from_record",
    "format_sse",
    "registry_from_progress",
    "write_cell_bundle",
]
