"""Performance introspection: critical paths, comm matrices, flamegraphs.

The tracer (:mod:`repro.telemetry.spans`) records *what happened*; this
module answers *why it took that long*.  It consumes the same three
sources everywhere -- a live :class:`~repro.telemetry.spans.Tracer`, an
exported JSONL trace path, or already-parsed record dicts -- and derives:

critical path (:func:`analyze_critical_path`)
    Reconstructs each iteration's execution DAG from the span stream:
    per-rank compute -> that rank's serialized ghost exchange -> the
    collective sync join, plus a residual *barrier* segment whenever the
    priced iteration is longer than the busiest rank (per-level
    synchronization idles ranks between level phases).  The path length
    therefore equals the iteration span's simulated duration exactly,
    and the per-rank slack says which node gated the step and how much a
    perfect capacity-proportional partition could still recover.

communication profile (:func:`comm_profile`)
    Folds the ``comm.exchange`` events the bound
    :class:`~repro.comm.simmpi.SimCommunicator` emits into rank-by-rank
    matrices (bytes, seconds, messages) per phase, with derated-link
    attribution: traffic that crossed a link running below its nominal
    bandwidth.

flamegraphs (:func:`flamegraph_collapsed`, :func:`speedscope_document`)
    The span tree per run as collapsed-stack text (one weighted stack
    per line, the format every flamegraph renderer ingests) and as a
    speedscope JSON document with one evented timeline per run plus one
    per simulated rank.

offline metrics (:func:`registry_from_records`)
    Rebuilds a :class:`~repro.telemetry.metrics.MetricsRegistry` from an
    exported trace so ``repro profile`` can emit OpenMetrics text for a
    run that finished long ago.

live view (:class:`LiveTop`)
    A span-close observer maintaining the rolling per-phase/per-rank
    totals behind the ``repro top`` terminal view.

Everything here is pure stdlib (the telemetry package stays a
zero-required-dependency leaf); matrices are lists of lists, not arrays.
"""

from __future__ import annotations

import json
import math
import os
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import NullTracer, Tracer

__all__ = [
    "PathSegment",
    "IterationPath",
    "RunCriticalPath",
    "analyze_critical_path",
    "format_critical_path_report",
    "CommMatrix",
    "CommProfile",
    "comm_profile",
    "flamegraph_collapsed",
    "speedscope_document",
    "registry_from_records",
    "write_collapsed",
    "write_speedscope",
    "write_openmetrics",
    "LiveTop",
]

#: Numerical tolerance for "does this rank span lie inside that
#: iteration" containment tests on the simulated clock.
_EPS = 1e-9

#: Rank-track phase names (the simulated per-rank spans the pipeline
#: emits); everything else with ``rank is None`` is runtime control.
_RANK_PHASES = ("compute", "ghost-exchange")


def _as_records(
    source: "Tracer | NullTracer | str | os.PathLike | Iterable[dict[str, Any]]",
) -> list[dict[str, Any]]:
    """Normalize any trace source into parsed record dicts."""
    if isinstance(source, (Tracer, NullTracer)):
        return [s.to_dict() for s in source.spans] + [
            e.to_dict() for e in source.events
        ]
    if isinstance(source, (str, os.PathLike)):
        records = []
        with open(source, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records
    return list(source)


def _run_label(
    pid: int,
    spans: list[dict[str, Any]],
    run_labels: dict[int, str] | None,
) -> str:
    if run_labels and pid in run_labels:
        return str(run_labels[pid])
    for s in spans:
        if s["name"] == "run":
            partitioner = (s.get("attributes") or {}).get("partitioner")
            if partitioner:
                return str(partitioner)
    return f"run {pid}"


def _duration(record: dict[str, Any]) -> float:
    end = record.get("end_sim")
    if end is None:
        return 0.0
    return float(end) - float(record["start_sim"])


# ----------------------------------------------------------------------
# Critical-path analysis
# ----------------------------------------------------------------------
@dataclass(slots=True)
class PathSegment:
    """One edge of an iteration's critical path."""

    phase: str  # compute | ghost-exchange | sync | barrier
    rank: int | None  # None for collective/barrier segments
    start_sim: float
    end_sim: float

    @property
    def duration_s(self) -> float:
        return self.end_sim - self.start_sim

    def to_dict(self) -> dict[str, Any]:
        return {
            "phase": self.phase,
            "rank": self.rank,
            "start_sim": self.start_sim,
            "end_sim": self.end_sim,
            "duration_s": self.duration_s,
        }


@dataclass(slots=True)
class IterationPath:
    """The critical path through one priced iteration."""

    iteration: int
    start_sim: float
    end_sim: float
    critical_rank: int | None
    segments: list[PathSegment]
    busy_per_rank: dict[int, float]
    num_ranks: int
    compute_s: float = 0.0
    comm_s: float = 0.0
    sync_s: float = 0.0
    barrier_s: float = 0.0

    @property
    def duration_s(self) -> float:
        return self.end_sim - self.start_sim

    @property
    def path_length_s(self) -> float:
        """Sum of path segments; equals :attr:`duration_s` by construction."""
        return sum(seg.duration_s for seg in self.segments)

    @property
    def slack_per_rank(self) -> dict[int, float]:
        """Seconds each rank idled while the critical rank worked."""
        busiest = max(self.busy_per_rank.values(), default=0.0)
        return {
            rank: busiest - busy
            for rank, busy in sorted(self.busy_per_rank.items())
        }

    @property
    def balance_headroom_s(self) -> float:
        """Busy-time gap the ideal rebalance could close this iteration.

        ``busiest - mean`` busy time over all ranks: with per-rank costs
        made exactly equal (work perfectly proportional to capacity and
        homogeneous per-unit speed -- an approximation on heterogeneous
        clusters) the phase could finish ``mean`` after it started, so
        this is the upper bound on what any partitioner can still win
        here.  Near zero means the step is bounded by the critical
        rank's intrinsic speed/link, not by imbalance.
        """
        if not self.num_ranks:
            return 0.0
        busiest = max(self.busy_per_rank.values(), default=0.0)
        mean = sum(self.busy_per_rank.values()) / self.num_ranks
        return busiest - mean

    def to_dict(self) -> dict[str, Any]:
        return {
            "iteration": self.iteration,
            "start_sim": self.start_sim,
            "end_sim": self.end_sim,
            "duration_s": self.duration_s,
            "path_length_s": self.path_length_s,
            "critical_rank": self.critical_rank,
            "compute_s": self.compute_s,
            "comm_s": self.comm_s,
            "sync_s": self.sync_s,
            "barrier_s": self.barrier_s,
            "balance_headroom_s": self.balance_headroom_s,
            "slack_per_rank": {
                str(k): v for k, v in self.slack_per_rank.items()
            },
            "segments": [seg.to_dict() for seg in self.segments],
        }


@dataclass(slots=True)
class RunCriticalPath:
    """Critical-path decomposition of one traced run."""

    pid: int
    label: str
    iterations: list[IterationPath] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return sum(it.duration_s for it in self.iterations)

    @property
    def compute_s(self) -> float:
        return sum(it.compute_s for it in self.iterations)

    @property
    def comm_s(self) -> float:
        return sum(it.comm_s for it in self.iterations)

    @property
    def sync_s(self) -> float:
        return sum(it.sync_s for it in self.iterations)

    @property
    def barrier_s(self) -> float:
        return sum(it.barrier_s for it in self.iterations)

    @property
    def balance_headroom_s(self) -> float:
        return sum(it.balance_headroom_s for it in self.iterations)

    @property
    def critical_rank_counts(self) -> dict[int, int]:
        """How often each rank sat on the critical path."""
        counts: dict[int, int] = {}
        for it in self.iterations:
            if it.critical_rank is not None:
                counts[it.critical_rank] = counts.get(it.critical_rank, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "label": self.label,
            "num_iterations": len(self.iterations),
            "total_s": self.total_s,
            "compute_s": self.compute_s,
            "comm_s": self.comm_s,
            "sync_s": self.sync_s,
            "barrier_s": self.barrier_s,
            "balance_headroom_s": self.balance_headroom_s,
            "critical_rank_counts": {
                str(k): v for k, v in self.critical_rank_counts.items()
            },
            "iterations": [it.to_dict() for it in self.iterations],
        }


def analyze_critical_path(
    source: "Tracer | NullTracer | str | os.PathLike | Iterable[dict[str, Any]]",
    run_labels: dict[int, str] | None = None,
) -> list[RunCriticalPath]:
    """Reconstruct the per-iteration critical path of every traced run.

    For each ``iteration`` span the per-rank busy time is the sum of
    that rank's ``compute``/``ghost-exchange`` spans inside the
    iteration's simulated interval.  The critical rank is the iteration
    span's ``critical_rank`` attribute when present (stamped by the
    pipeline), else the busiest rank observed; the path walks that
    rank's phases in order, then the ``sync`` collective, then a
    ``barrier`` residual absorbing any remaining idle time (nonzero
    under per-level synchronization, where barrier waits between level
    phases are real cost that belongs to no single span).  By
    construction ``path_length_s == duration_s`` for every iteration.
    """
    if isinstance(source, (Tracer, NullTracer)) and run_labels is None:
        run_labels = dict(source.run_labels)
    records = _as_records(source)
    spans = [
        r
        for r in records
        if r.get("type") == "span" and r.get("end_sim") is not None
    ]
    results: list[RunCriticalPath] = []
    for pid in sorted({s["pid"] for s in spans}):
        run_spans = [s for s in spans if s["pid"] == pid]
        iterations = sorted(
            (s for s in run_spans if s["name"] == "iteration"),
            key=lambda s: (float(s["start_sim"]), float(s["end_sim"])),
        )
        if not iterations:
            continue
        run = RunCriticalPath(
            pid=pid, label=_run_label(pid, run_spans, run_labels)
        )
        it_starts = [float(s["start_sim"]) for s in iterations]
        # Bucket rank phases and sync spans by containing iteration.
        rank_spans: list[list[dict[str, Any]]] = [[] for _ in iterations]
        sync_spans: list[list[dict[str, Any]]] = [[] for _ in iterations]
        num_ranks = 0
        for s in run_spans:
            is_rank_phase = (
                s.get("rank") is not None and s["name"] in _RANK_PHASES
            )
            if not (is_rank_phase or s["name"] == "sync"):
                continue
            idx = bisect_right(it_starts, float(s["start_sim"]) + _EPS) - 1
            if idx < 0:
                continue
            it = iterations[idx]
            if float(s["end_sim"]) > float(it["end_sim"]) + _EPS:
                continue  # outside the iteration (e.g. replayed work)
            if is_rank_phase:
                rank_spans[idx].append(s)
                num_ranks = max(num_ranks, int(s["rank"]) + 1)
            else:
                sync_spans[idx].append(s)
        for idx, it in enumerate(iterations):
            attrs = it.get("attributes") or {}
            start = float(it["start_sim"])
            end = float(it["end_sim"])
            busy: dict[int, float] = {r: 0.0 for r in range(num_ranks)}
            for s in rank_spans[idx]:
                busy[int(s["rank"])] = busy.get(int(s["rank"]), 0.0) + _duration(s)
            critical = attrs.get("critical_rank")
            if critical is None and busy:
                busiest = max(busy.values())
                critical = min(r for r, b in busy.items() if b == busiest)
            segments: list[PathSegment] = []
            compute_s = comm_s = 0.0
            if critical is not None:
                critical = int(critical)
                own = sorted(
                    (s for s in rank_spans[idx] if int(s["rank"]) == critical),
                    key=lambda s: float(s["start_sim"]),
                )
                for s in own:
                    segments.append(
                        PathSegment(
                            phase=s["name"],
                            rank=critical,
                            start_sim=float(s["start_sim"]),
                            end_sim=float(s["end_sim"]),
                        )
                    )
                    if s["name"] == "compute":
                        compute_s += _duration(s)
                    else:
                        comm_s += _duration(s)
            sync_s = sum(_duration(s) for s in sync_spans[idx])
            for s in sorted(
                sync_spans[idx], key=lambda s: float(s["start_sim"])
            ):
                segments.append(
                    PathSegment(
                        phase="sync",
                        rank=None,
                        start_sim=float(s["start_sim"]),
                        end_sim=float(s["end_sim"]),
                    )
                )
            covered = compute_s + comm_s + sync_s
            barrier_s = max(0.0, (end - start) - covered)
            if barrier_s > 0.0:
                segments.append(
                    PathSegment(
                        phase="barrier",
                        rank=None,
                        start_sim=end - barrier_s,
                        end_sim=end,
                    )
                )
            iteration_number = attrs.get("iteration", attrs.get("step", idx))
            run.iterations.append(
                IterationPath(
                    iteration=int(iteration_number),
                    start_sim=start,
                    end_sim=end,
                    critical_rank=critical,
                    segments=segments,
                    busy_per_rank=busy,
                    num_ranks=num_ranks,
                    compute_s=compute_s,
                    comm_s=comm_s,
                    sync_s=sync_s,
                    barrier_s=barrier_s,
                )
            )
        results.append(run)
    return results


def format_critical_path_report(results: list[RunCriticalPath]) -> str:
    """Human-readable critical-path summary for the ``repro profile`` CLI."""
    lines: list[str] = []
    for run in results:
        lines.append(f"run {run.pid}: {run.label}")
        total = run.total_s or 1.0
        lines.append(
            f"  critical path  {run.total_s:12.6f} s over "
            f"{len(run.iterations)} iterations"
        )
        for phase, seconds in (
            ("compute", run.compute_s),
            ("ghost-exchange", run.comm_s),
            ("sync", run.sync_s),
            ("barrier", run.barrier_s),
        ):
            lines.append(
                f"    {phase:<15}{seconds:12.6f} s  "
                f"({100.0 * seconds / total:5.1f}%)"
            )
        lines.append(
            f"  balance headroom {run.balance_headroom_s:10.6f} s  "
            f"({100.0 * run.balance_headroom_s / total:5.1f}% -- upper "
            "bound a perfect capacity-proportional partition could recover)"
        )
        counts = run.critical_rank_counts
        if counts:
            top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
            described = ", ".join(
                f"rank {rank} x{count}" for rank, count in top
            )
            lines.append(f"  bottleneck ranks: {described}")
        lines.append("")
    if not lines:
        return "no iterations found in trace\n"
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Communication profile
# ----------------------------------------------------------------------
@dataclass(slots=True)
class CommMatrix:
    """Rank-by-rank traffic accounting for one phase family."""

    size: int
    bytes: list[list[float]]
    seconds: list[list[float]]
    messages: list[list[int]]
    derated_bytes: list[list[float]]

    @classmethod
    def zeros(cls, size: int) -> "CommMatrix":
        return cls(
            size=size,
            bytes=[[0.0] * size for _ in range(size)],
            seconds=[[0.0] * size for _ in range(size)],
            messages=[[0] * size for _ in range(size)],
            derated_bytes=[[0.0] * size for _ in range(size)],
        )

    def grow(self, size: int) -> None:
        """Widen in place to ``size`` ranks (traces may mix cluster sizes)."""
        if size <= self.size:
            return
        for name in ("bytes", "seconds", "messages", "derated_bytes"):
            matrix = getattr(self, name)
            filler = 0 if name == "messages" else 0.0
            for row in matrix:
                row.extend([filler] * (size - self.size))
            for _ in range(size - self.size):
                matrix.append([filler] * size)
        self.size = size

    def add(
        self, src: int, dst: int, nbytes: float, seconds: float, derated: bool
    ) -> None:
        self.grow(max(src, dst) + 1)
        self.bytes[src][dst] += nbytes
        self.seconds[src][dst] += seconds
        self.messages[src][dst] += 1
        if derated:
            self.derated_bytes[src][dst] += nbytes

    @property
    def bytes_total(self) -> float:
        return sum(map(sum, self.bytes))

    @property
    def seconds_total(self) -> float:
        return sum(map(sum, self.seconds))

    @property
    def derated_bytes_total(self) -> float:
        return sum(map(sum, self.derated_bytes))

    def top_pairs(self, n: int = 10) -> list[dict[str, Any]]:
        """Heaviest (src, dst) pairs by time, with derating attribution."""
        pairs = [
            {
                "src": src,
                "dst": dst,
                "bytes": self.bytes[src][dst],
                "seconds": self.seconds[src][dst],
                "messages": self.messages[src][dst],
                "derated": self.derated_bytes[src][dst] > 0,
            }
            for src in range(self.size)
            for dst in range(self.size)
            if self.messages[src][dst]
        ]
        pairs.sort(key=lambda p: (-p["seconds"], -p["bytes"], p["src"], p["dst"]))
        return pairs[:n]

    def to_dict(self) -> dict[str, Any]:
        return {
            "size": self.size,
            "bytes_total": self.bytes_total,
            "seconds_total": self.seconds_total,
            "derated_bytes_total": self.derated_bytes_total,
            "bytes": self.bytes,
            "seconds": self.seconds,
            "messages": self.messages,
            "derated_bytes": self.derated_bytes,
            "top_pairs": self.top_pairs(),
        }


@dataclass(slots=True)
class CommProfile:
    """Per-phase communication matrices for one traced run."""

    pid: int
    label: str
    phases: dict[str, CommMatrix] = field(default_factory=dict)
    total: CommMatrix = field(default_factory=lambda: CommMatrix.zeros(0))
    events: int = 0
    pairs_dropped: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "label": self.label,
            "events": self.events,
            "pairs_dropped": self.pairs_dropped,
            "total": self.total.to_dict(),
            "phases": {k: v.to_dict() for k, v in sorted(self.phases.items())},
        }


def comm_profile(
    source: "Tracer | NullTracer | str | os.PathLike | Iterable[dict[str, Any]]",
    run_labels: dict[int, str] | None = None,
) -> list[CommProfile]:
    """Fold ``comm.exchange`` events into rank-by-rank traffic matrices.

    ``derated_bytes`` attributes traffic whose path crossed a link
    running below nominal bandwidth at transfer time -- the signature of
    the paper's system-sensitive scenario, where a partitioner that
    ignores NIC derating keeps routing ghost exchanges over the slow
    link.  ``pairs_dropped`` counts per-pair rows the communicator
    truncated from oversized events (totals remain exact).
    """
    if isinstance(source, (Tracer, NullTracer)) and run_labels is None:
        run_labels = dict(source.run_labels)
    records = _as_records(source)
    events = [
        r
        for r in records
        if r.get("type") == "event" and r.get("name") == "comm.exchange"
    ]
    spans = [r for r in records if r.get("type") == "span"]
    profiles: list[CommProfile] = []
    for pid in sorted({e["pid"] for e in events}):
        run_span_records = [s for s in spans if s["pid"] == pid]
        profile = CommProfile(
            pid=pid, label=_run_label(pid, run_span_records, run_labels)
        )
        for event in (e for e in events if e["pid"] == pid):
            attrs = event.get("attributes") or {}
            phase = str(attrs.get("phase", "exchange"))
            size = int(attrs.get("ranks", 0))
            matrix = profile.phases.get(phase)
            if matrix is None:
                matrix = profile.phases[phase] = CommMatrix.zeros(size)
            matrix.grow(size)
            profile.total.grow(size)
            for src, dst, nbytes, seconds, derated in attrs.get("pairs", ()):
                matrix.add(int(src), int(dst), nbytes, seconds, bool(derated))
                profile.total.add(
                    int(src), int(dst), nbytes, seconds, bool(derated)
                )
            profile.events += 1
            profile.pairs_dropped += int(attrs.get("pairs_dropped", 0))
        profiles.append(profile)
    return profiles


# ----------------------------------------------------------------------
# Flamegraphs
# ----------------------------------------------------------------------
def _span_forest(
    run_spans: list[dict[str, Any]],
) -> tuple[list[dict[str, Any]], dict[int, list[dict[str, Any]]]]:
    """(roots, children-by-span-id) for one run's spans.

    Control spans (``rank is None``) nest by their recorded
    ``parent_id`` -- the tracer's stack discipline makes those exact.
    Rank-phase spans are recorded flat against the enclosing ``run``
    span, so they are re-parented onto the ``iteration`` span whose
    simulated interval contains them; that is the nesting a human
    expects to see in the flamegraph.
    """
    by_id = {s["span_id"]: s for s in run_spans}
    iterations = sorted(
        (s for s in run_spans if s["name"] == "iteration"),
        key=lambda s: float(s["start_sim"]),
    )
    it_starts = [float(s["start_sim"]) for s in iterations]
    children: dict[int, list[dict[str, Any]]] = {}
    roots: list[dict[str, Any]] = []
    for s in run_spans:
        parent_id = s.get("parent_id")
        if s.get("rank") is not None and iterations:
            idx = bisect_right(it_starts, float(s["start_sim"]) + _EPS) - 1
            if idx >= 0:
                it = iterations[idx]
                if (
                    s.get("end_sim") is not None
                    and float(s["end_sim"]) <= float(it["end_sim"]) + _EPS
                ):
                    parent_id = it["span_id"]
        if parent_id is not None and parent_id in by_id:
            children.setdefault(parent_id, []).append(s)
        else:
            roots.append(s)
    order = lambda s: (float(s["start_sim"]), s["span_id"])  # noqa: E731
    roots.sort(key=order)
    for kids in children.values():
        kids.sort(key=order)
    return roots, children


def _frame_name(span: dict[str, Any], label: str) -> str:
    if span["name"] == "run":
        return f"run: {label}"
    if span.get("rank") is not None:
        return f"{span['name']} (rank {span['rank']})"
    return str(span["name"])


def flamegraph_collapsed(
    source: "Tracer | NullTracer | str | os.PathLike | Iterable[dict[str, Any]]",
    run_labels: dict[int, str] | None = None,
) -> str:
    """Collapsed-stack flamegraph text over *simulated* time.

    One ``frame;frame;... weight`` line per distinct stack, weight in
    integer microseconds of self time (child time subtracted), the
    format ``flamegraph.pl``, speedscope and Firefox Profiler all
    import.  Iterations share one frame name so the graph aggregates
    across the run -- that is the point of a flamegraph; use the
    speedscope timeline when per-iteration order matters.
    """
    if isinstance(source, (Tracer, NullTracer)) and run_labels is None:
        run_labels = dict(source.run_labels)
    records = _as_records(source)
    spans = [
        r
        for r in records
        if r.get("type") == "span" and r.get("end_sim") is not None
    ]
    weights: dict[tuple[str, ...], int] = {}

    def walk(
        span: dict[str, Any],
        stack: tuple[str, ...],
        children: dict[int, list[dict[str, Any]]],
        label: str,
    ) -> None:
        stack = stack + (_frame_name(span, label),)
        kids = children.get(span["span_id"], [])
        child_s = sum(_duration(k) for k in kids)
        self_us = int(round(max(0.0, _duration(span) - child_s) * 1e6))
        if self_us > 0 or not kids:
            weights[stack] = weights.get(stack, 0) + self_us
        for kid in kids:
            walk(kid, stack, children, label)

    for pid in sorted({s["pid"] for s in spans}):
        run_spans = [s for s in spans if s["pid"] == pid]
        label = _run_label(pid, run_spans, run_labels)
        roots, children = _span_forest(run_spans)
        for root in roots:
            walk(root, (), children, label)
    # Zero-weight stacks (leaves shorter than a microsecond of sim time)
    # carry no area; flamegraph.pl renders them as confusing slivers.
    lines = [
        ";".join(stack) + f" {weight}"
        for stack, weight in sorted(weights.items())
        if weight > 0
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def speedscope_document(
    source: "Tracer | NullTracer | str | os.PathLike | Iterable[dict[str, Any]]",
    run_labels: dict[int, str] | None = None,
    name: str = "repro trace",
) -> dict[str, Any]:
    """The trace as a speedscope (https://speedscope.app) JSON document.

    One *evented* profile per traced run walks the control-span tree
    (run -> iteration -> sense/migrate/...), plus one profile per
    simulated rank with that rank's compute/ghost-exchange timeline.
    All values are microseconds of simulated time, zeroed at each run's
    first span; children are clamped into their parents so the
    open/close event stream is always well nested, which the speedscope
    importer requires.
    """
    if isinstance(source, (Tracer, NullTracer)) and run_labels is None:
        run_labels = dict(source.run_labels)
    records = _as_records(source)
    spans = [
        r
        for r in records
        if r.get("type") == "span" and r.get("end_sim") is not None
    ]
    frames: list[dict[str, str]] = []
    frame_index: dict[str, int] = {}

    def frame_of(frame_name: str) -> int:
        idx = frame_index.get(frame_name)
        if idx is None:
            idx = frame_index[frame_name] = len(frames)
            frames.append({"name": frame_name})
        return idx

    profiles: list[dict[str, Any]] = []
    for pid in sorted({s["pid"] for s in spans}):
        run_spans = [s for s in spans if s["pid"] == pid]
        label = _run_label(pid, run_spans, run_labels)
        t0 = min(float(s["start_sim"]) for s in run_spans)

        def us(t: float) -> int:
            return int(round((t - t0) * 1e6))

        # Control timeline: the nested span tree, rank tracks excluded.
        control = [s for s in run_spans if s.get("rank") is None]
        roots, children = _span_forest(control)
        events: list[dict[str, Any]] = []
        end_value = 0

        def emit(
            span: dict[str, Any], lo: float, hi: float, cursor: float
        ) -> float:
            nonlocal end_value
            start = max(float(span["start_sim"]), lo, cursor)
            end = min(float(span["end_sim"]), hi)
            if end <= start + 0.0:
                return cursor
            idx = frame_of(_frame_name(span, label))
            events.append({"type": "O", "frame": idx, "at": us(start)})
            child_cursor = start
            for kid in children.get(span["span_id"], []):
                child_cursor = emit(kid, start, end, child_cursor)
            events.append({"type": "C", "frame": idx, "at": us(end)})
            end_value = max(end_value, us(end))
            return end

        cursor = -math.inf
        for root in roots:
            cursor = emit(root, -math.inf, math.inf, cursor)
        if events:
            profiles.append(
                {
                    "type": "evented",
                    "name": f"{label} (pid {pid}) runtime",
                    "unit": "microseconds",
                    "startValue": 0,
                    "endValue": end_value,
                    "events": events,
                }
            )
        # One flat timeline per rank: that rank's simulated phases.
        ranks = sorted(
            {s["rank"] for s in run_spans if s.get("rank") is not None}
        )
        for rank in ranks:
            own = sorted(
                (s for s in run_spans if s.get("rank") == rank),
                key=lambda s: (float(s["start_sim"]), s["span_id"]),
            )
            events = []
            end_value = 0
            cursor = -math.inf
            for s in own:
                start = max(float(s["start_sim"]), cursor)
                end = float(s["end_sim"])
                if end <= start:
                    continue
                idx = frame_of(str(s["name"]))
                events.append({"type": "O", "frame": idx, "at": us(start)})
                events.append({"type": "C", "frame": idx, "at": us(end)})
                end_value = max(end_value, us(end))
                cursor = end
            if events:
                profiles.append(
                    {
                        "type": "evented",
                        "name": f"{label} (pid {pid}) rank {rank}",
                        "unit": "microseconds",
                        "startValue": 0,
                        "endValue": end_value,
                        "events": events,
                    }
                )
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "exporter": "repro profile",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": profiles,
    }


# ----------------------------------------------------------------------
# Offline metrics reconstruction
# ----------------------------------------------------------------------
def registry_from_records(
    source: "Tracer | NullTracer | str | os.PathLike | Iterable[dict[str, Any]]",
) -> MetricsRegistry:
    """Rebuild a metrics registry from an exported trace.

    A JSONL trace carries spans and events but not the live registry, so
    ``repro profile`` re-derives the quantitative view: phase timing
    histograms from spans, traffic counters and per-phase histograms
    from ``comm.exchange`` events, migration totals from ``migrate``
    span attributes.  A live tracer's own registry is richer (probe
    costs, gauges); this is the offline floor.
    """
    if isinstance(source, (Tracer, NullTracer)):
        return source.metrics  # live registry is authoritative
    registry = MetricsRegistry()
    for record in _as_records(source):
        attrs = record.get("attributes") or {}
        if record.get("type") == "span":
            if record.get("end_sim") is None:
                continue
            registry.histogram(
                "phase_sim_seconds", phase=record["name"]
            ).observe(_duration(record))
            if record["name"] == "iteration":
                registry.histogram("iteration_seconds").observe(
                    _duration(record)
                )
            elif record["name"] == "migrate":
                registry.counter("migration_bytes").inc(
                    float(attrs.get("bytes", 0))
                )
                registry.counter("migration_seconds").inc(
                    float(attrs.get("sim_seconds", 0.0))
                )
        elif record.get("name") == "comm.exchange":
            registry.counter("comm.bytes_total").inc(float(attrs.get("bytes", 0)))
            registry.counter("comm.messages_total").inc(
                float(attrs.get("messages", 0))
            )
            registry.histogram(
                "comm.phase_seconds", phase=str(attrs.get("phase", "exchange"))
            ).observe(float(attrs.get("seconds", 0.0)))
            registry.counter("comm.derated_bytes_total").inc(
                float(attrs.get("derated_bytes", 0))
            )
    return registry


# ----------------------------------------------------------------------
# Writers
# ----------------------------------------------------------------------
def write_collapsed(
    source: "Tracer | NullTracer | str | os.PathLike | Iterable[dict[str, Any]]",
    path: str | os.PathLike,
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(flamegraph_collapsed(source))


def write_speedscope(
    source: "Tracer | NullTracer | str | os.PathLike | Iterable[dict[str, Any]]",
    path: str | os.PathLike,
    name: str = "repro trace",
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(speedscope_document(source, name=name), fh)
        fh.write("\n")


def write_openmetrics(registry, path: str | os.PathLike) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(registry.to_openmetrics())


# ----------------------------------------------------------------------
# Live terminal view
# ----------------------------------------------------------------------
class LiveTop:
    """Rolling per-phase/per-rank totals behind ``repro top``.

    Attach with ``tracer.add_observer(top.on_span_close)``; every closed
    span updates the aggregates, and :meth:`render` formats the current
    picture.  The observer allocates nothing per span beyond dict
    upkeep, so it is safe to leave attached for a whole run.
    """

    def __init__(self, height: int = 10):
        self.height = int(height)
        self.iterations = 0
        self.last_iteration_s = 0.0
        self.last_critical_rank: int | None = None
        self.phase_seconds: dict[str, float] = {}
        self.rank_busy: dict[int, float] = {}
        self.critical_counts: dict[int, int] = {}

    def on_span_close(self, span) -> None:
        duration = span.sim_duration
        self.phase_seconds[span.name] = (
            self.phase_seconds.get(span.name, 0.0) + duration
        )
        if span.rank is not None and span.name in _RANK_PHASES:
            self.rank_busy[span.rank] = (
                self.rank_busy.get(span.rank, 0.0) + duration
            )
        if span.name == "iteration":
            self.iterations += 1
            self.last_iteration_s = duration
            critical = span.attributes.get("critical_rank")
            if critical is not None:
                self.last_critical_rank = int(critical)
                self.critical_counts[int(critical)] = (
                    self.critical_counts.get(int(critical), 0) + 1
                )

    def render(self) -> str:
        lines = [
            f"iterations {self.iterations}   "
            f"last {self.last_iteration_s:.6f} s   "
            f"critical rank {self.last_critical_rank}"
        ]
        top_phases = sorted(
            self.phase_seconds.items(), key=lambda kv: -kv[1]
        )[: self.height]
        width = max((len(name) for name, _ in top_phases), default=4)
        for phase, seconds in top_phases:
            lines.append(f"  {phase:<{width}}  {seconds:12.6f} s")
        if self.rank_busy:
            busiest = max(self.rank_busy.values()) or 1.0
            lines.append("  rank busy (sim s):")
            for rank in sorted(self.rank_busy):
                busy = self.rank_busy[rank]
                bar = "#" * int(round(24 * busy / busiest))
                hot = self.critical_counts.get(rank, 0)
                lines.append(
                    f"  r{rank:<3} {busy:12.6f} {bar:<24} critical x{hot}"
                )
        return "\n".join(lines)
