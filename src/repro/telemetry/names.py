"""Central registry of span and event names the runtime may emit.

The trace schema is an API: the health monitor, the critical-path
analyzer, the dashboard and every ``jq`` one-liner in the docs key on
exact span/event names.  A name typo'd at one call site silently
produces spans nobody aggregates, so *every* name the instrumentation
emits must be declared here first.  ``tools/check_span_names.py`` lints
``src/repro`` for literal names passed to ``Tracer.span`` /
``Tracer.add_span`` / ``Tracer.event`` and fails CI on any literal that
is not registered below.

Dynamically composed names (``health.<kind>``, ``comm.<phase>``) cannot
be checked literally; they must fall under one of the registered
:data:`EVENT_PREFIXES` instead.

This module stays pure data + two predicates so the lint tool can import
it without pulling in the rest of the package.
"""

from __future__ import annotations

__all__ = [
    "SPAN_NAMES",
    "EVENT_NAMES",
    "EVENT_PREFIXES",
    "METRIC_NAMES",
    "is_known_span",
    "is_known_event",
    "is_known_metric",
]

#: Every span name the runtime instrumentation emits.
SPAN_NAMES = frozenset(
    {
        # runtime loop structure
        "run",
        "iteration",
        "advance",
        # sense -> capacity -> partition -> migrate pipeline
        "sense",
        "capacity",
        "partition",
        "split",
        "migrate",
        # per-rank simulated-time tracks
        "compute",
        "ghost-exchange",
        "sync",
        # monitor internals
        "probe",
        "forecast",
        # resilience
        "recover",
        "recovery",
        "checkpoint.save",
        "checkpoint.restore",
        # campaign orchestration (one span per completed grid cell)
        "campaign.cell",
        # artifact-bundle publication recorded at cell commit
        "campaign.artifact.bundle",
    }
)

#: Every exact instant-event name the runtime instrumentation emits.
EVENT_NAMES = frozenset(
    {
        "cluster",
        "load_generator",
        "split",
        "fault.step_aborted",
        "recovery.repartition",
        "recovery.complete",
        # campaign artifact bundles (emitted by the orchestrator tracer)
        "campaign.artifact.written",
        # live progress-log records (written by ProgressLog, mirrored
        # here so stream consumers share one registry with the tracer)
        "live.cell_started",
        "live.cell_finished",
        "live.cell_failed",
        "live.heartbeat",
        # forecaster cold-start degradation (last-value fallback taken)
        "forecast.cold",
        # learned-policy decision points (repro.learn)
        "learn.sense_interval",
        "learn.gate",
        "learn.capacity_forecast",
        # decision-provenance ledger mirrors (repro.learn.audit): one
        # event per ledgered record, same fields minus the arrays
        "decision.gate",
        "decision.sense_interval",
        "decision.forecast",
        "decision.recover",
        "decision.prediction",
        "decision.outcome",
    }
)

#: Prefixes under which dynamically composed event names are sanctioned
#: (``tracer.event(f"health.{kind}", ...)`` and friends).
EVENT_PREFIXES = (
    "health.",
    "fault.",
    "recovery.",
    "comm.",
    "checkpoint.",
    "campaign.",
    "live.",
    "forecast.",
    "learn.",
    "decision.",
)

#: Every metric name (counter, gauge or histogram) the instrumentation
#: creates.  The OpenMetrics endpoint, the bench-diff comparator and the
#: dashboard all key on exact metric names, so they are registered and
#: linted exactly like span names.
METRIC_NAMES = frozenset(
    {
        # runtime counters
        "boxes_split",
        "evacuated_bytes",
        "iterations",
        "migration_bytes",
        "migration_seconds",
        "num_recoveries",
        "num_repartitions",
        "num_sensings",
        "partition_calls",
        "probe_cost_seconds",
        "probe_failures",
        "total_sim_seconds",
        # runtime gauges
        "node_capacity",
        "node_cpu_available",
        "node_utilization",
        "sensing_staleness_seconds",
        # runtime histograms
        "iteration_seconds",
        "phase_sim_seconds",
        "residual_imbalance_pct",
        "step_seconds",
        # communication accounting
        "comm.bytes_total",
        "comm.collective_seconds",
        "comm.derated_bytes_total",
        "comm.messages_total",
        "comm.phase_seconds",
        # campaign orchestration
        "campaign.artifact_bytes",
        "campaign.phase_sim_seconds",
        "campaign.cell_sim_seconds",
        "campaign.cell_wall_seconds",
        "campaign.cells",
        "campaign.cells_completed",
        "campaign.cells_failed",
        "campaign.cells_running",
        "campaign.cells_skipped",
        "campaign.complete",
        "campaign.health_events",
        "campaign.progress_events",
        "campaign.worst_imbalance_pct",
        # HTTP serving layer
        "serve.cache_hits",
        "serve.cache_misses",
        "serve.requests",
        # learned policies (repro.learn)
        "learn.observations",
        "learn.gate_repartitions",
        "learn.gate_skips",
        "learn.sensing_interval",
        "learn.capacity_drift_rate",
        # decision provenance (repro.learn.audit): ledger volume plus
        # the reconciler's calibration and regret scores
        "decision.records",
        "decision.calibration_coverage",
        "decision.calibration_samples",
        "decision.cumulative_regret_seconds",
        "decision.oracle_agreement_rate",
    }
)


def is_known_span(name: str) -> bool:
    """Whether ``name`` is a registered span name."""
    return name in SPAN_NAMES


def is_known_event(name: str) -> bool:
    """Whether ``name`` is a registered event name or prefixed family."""
    return name in EVENT_NAMES or name.startswith(EVENT_PREFIXES)


def is_known_metric(name: str) -> bool:
    """Whether ``name`` is a registered metric name."""
    return name in METRIC_NAMES
