"""Central registry of span and event names the runtime may emit.

The trace schema is an API: the health monitor, the critical-path
analyzer, the dashboard and every ``jq`` one-liner in the docs key on
exact span/event names.  A name typo'd at one call site silently
produces spans nobody aggregates, so *every* name the instrumentation
emits must be declared here first.  ``tools/check_span_names.py`` lints
``src/repro`` for literal names passed to ``Tracer.span`` /
``Tracer.add_span`` / ``Tracer.event`` and fails CI on any literal that
is not registered below.

Dynamically composed names (``health.<kind>``, ``comm.<phase>``) cannot
be checked literally; they must fall under one of the registered
:data:`EVENT_PREFIXES` instead.

This module stays pure data + two predicates so the lint tool can import
it without pulling in the rest of the package.
"""

from __future__ import annotations

__all__ = [
    "SPAN_NAMES",
    "EVENT_NAMES",
    "EVENT_PREFIXES",
    "is_known_span",
    "is_known_event",
]

#: Every span name the runtime instrumentation emits.
SPAN_NAMES = frozenset(
    {
        # runtime loop structure
        "run",
        "iteration",
        "advance",
        # sense -> capacity -> partition -> migrate pipeline
        "sense",
        "capacity",
        "partition",
        "split",
        "migrate",
        # per-rank simulated-time tracks
        "compute",
        "ghost-exchange",
        "sync",
        # monitor internals
        "probe",
        "forecast",
        # resilience
        "recover",
        "recovery",
        "checkpoint.save",
        "checkpoint.restore",
        # campaign orchestration (one span per completed grid cell)
        "campaign.cell",
        # artifact-bundle publication recorded at cell commit
        "campaign.artifact.bundle",
    }
)

#: Every exact instant-event name the runtime instrumentation emits.
EVENT_NAMES = frozenset(
    {
        "cluster",
        "load_generator",
        "split",
        "fault.step_aborted",
        "recovery.repartition",
        "recovery.complete",
        # campaign artifact bundles (emitted by the orchestrator tracer)
        "campaign.artifact.written",
        # live progress-log records (written by ProgressLog, mirrored
        # here so stream consumers share one registry with the tracer)
        "live.cell_started",
        "live.cell_finished",
        "live.cell_failed",
        "live.heartbeat",
    }
)

#: Prefixes under which dynamically composed event names are sanctioned
#: (``tracer.event(f"health.{kind}", ...)`` and friends).
EVENT_PREFIXES = (
    "health.",
    "fault.",
    "recovery.",
    "comm.",
    "checkpoint.",
    "campaign.",
    "live.",
)


def is_known_span(name: str) -> bool:
    """Whether ``name`` is a registered span name."""
    return name in SPAN_NAMES


def is_known_event(name: str) -> bool:
    """Whether ``name`` is a registered event name or prefixed family."""
    return name in EVENT_NAMES or name.startswith(EVENT_PREFIXES)
