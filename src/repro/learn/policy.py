"""Adaptive sensing and payoff-gated repartitioning policies.

The paper hand-tunes two knobs this module learns instead:

- **When to sense.**  Table III fixes the probe cadence at f=20 after an
  offline sweep.  :class:`AdaptiveSensingPolicy` derives the interval at
  runtime from the :class:`~repro.learn.models.TransientCapacityModel`'s
  fitted capacity drift: sense again when the capacity vector is
  predicted to have drifted past tolerance, not on a fixed count.  Fast
  transients shorten the interval; quiet stretches stretch it.
- **Whether to repartition.**  The paper redistributes after every
  sensing.  :class:`RepartitionGate` prices the decision the way
  Altevogt & Linke price theirs: repartitioning pays off only if the
  predicted imbalance cost over the remaining iterations of the epoch
  exceeds the modeled migration cost.  With relative capacities summing
  to one, a balanced partition's bottleneck work equals the total work
  ``W``, so the per-iteration payoff of rebalancing is
  ``beta * (max_k W_k / c_k - W)`` where ``beta`` is the fitted
  seconds-per-bottleneck-work slope of the iteration cost model.

Both policies fall back **deterministically** to the paper's behavior
while their models are cold: the sensing policy returns the fixed
fallback interval (f=20 by default) and the gate always repartitions.
:class:`LearnController` packages models + policies + history recording
behind the same injectable no-op-default pattern the tracer uses:
:data:`NULL_LEARNER` has ``enabled = False`` and every call site guards
on it, so a run without learning executes byte-identically to one built
before this module existed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.learn.history import ExecutionHistoryStore
from repro.learn.models import (
    AmdahlCostModel,
    OnlineLinearModel,
    OnlineMeanModel,
    TransientCapacityModel,
)
from repro.util.errors import ExperimentError

__all__ = [
    "LearnConfig",
    "AdaptiveSensingPolicy",
    "GateDecision",
    "RepartitionGate",
    "LearnController",
    "NullLearner",
    "NULL_LEARNER",
]


@dataclass(frozen=True, slots=True)
class LearnConfig:
    """Which learned behaviors are active, and their safety margins.

    Attributes
    ----------
    adaptive_sensing / payoff_gate / transient_forecast:
        Independent switches for the three learned behaviors, so the
        ablation can attribute the win per piece.
    fallback_interval:
        Sensing cadence (iterations) while the drift model is cold --
        the paper's hand-tuned f (default 20).
    min_interval / max_interval:
        Clamp on the learned sensing interval.
    drift_tolerance:
        Relative-capacity drift (fraction of total) tolerated between
        sensings; the learned interval is the predicted time to drift
        this far.
    gate_safety:
        Multiplier on the modeled repartition cost the predicted payoff
        must beat (>1 biases toward the paper's always-repartition).
    min_fit_points:
        Observations before any model considers itself fitted.
    capacity_window:
        Sliding-window length of the transient capacity model.
    capacity_min_points:
        Sensings before the transient capacity model is warm.  Lower
        than ``min_fit_points`` because sensings are scarce (one per
        fallback interval, not one per iteration) and the drift fit
        needs to engage within a single fallback-cadence run.
    forecast_lead:
        Fraction of the sensing interval the transient model predicts
        ahead when substituting forecast capacities (0.5 targets the
        middle of the upcoming sensing window).
    """

    adaptive_sensing: bool = True
    payoff_gate: bool = True
    transient_forecast: bool = True
    fallback_interval: int = 20
    min_interval: int = 2
    max_interval: int = 80
    drift_tolerance: float = 0.02
    gate_safety: float = 1.0
    min_fit_points: int = 4
    capacity_window: int = 12
    capacity_min_points: int = 3
    forecast_lead: float = 0.5

    def __post_init__(self) -> None:
        if self.fallback_interval < 1:
            raise ExperimentError(
                f"fallback_interval must be >= 1, got {self.fallback_interval}"
            )
        if not 1 <= self.min_interval <= self.max_interval:
            raise ExperimentError(
                "need 1 <= min_interval <= max_interval, got "
                f"[{self.min_interval}, {self.max_interval}]"
            )
        if self.drift_tolerance <= 0:
            raise ExperimentError(
                f"drift_tolerance must be positive, got {self.drift_tolerance}"
            )
        if self.gate_safety <= 0:
            raise ExperimentError(
                f"gate_safety must be positive, got {self.gate_safety}"
            )
        if self.forecast_lead < 0:
            raise ExperimentError(
                f"forecast_lead must be >= 0, got {self.forecast_lead}"
            )


class AdaptiveSensingPolicy:
    """Sensing interval from predicted capacity drift.

    ``interval = drift_tolerance / (drift_rate * seconds_per_iteration)``
    iterations, clamped to ``[min_interval, max_interval]``: the number
    of iterations until the fitted transient model predicts the capacity
    vector has moved ``drift_tolerance`` from what the partitioner last
    saw.  A cold drift model or unfitted iteration-time model yields the
    fixed ``fallback_interval`` -- exactly the paper's f.
    """

    def __init__(self, config: LearnConfig):
        self.config = config

    def interval(
        self, drift_rate: float, seconds_per_iteration: float
    ) -> tuple[int, bool]:
        """(interval in iterations, whether it came from the model)."""
        cfg = self.config
        if drift_rate <= 0.0 or not (seconds_per_iteration > 0.0):
            return cfg.fallback_interval, False
        seconds_to_drift = cfg.drift_tolerance / drift_rate
        iters = seconds_to_drift / seconds_per_iteration
        clamped = int(
            min(max(math.floor(iters), cfg.min_interval), cfg.max_interval)
        )
        return clamped, True


@dataclass(frozen=True, slots=True)
class GateDecision:
    """One priced repartition decision."""

    repartition: bool
    reason: str  # "cold" | "payoff" | "skip"
    payoff_seconds: float
    cost_seconds: float
    horizon_iters: int


class RepartitionGate:
    """Repartition only when predicted payoff beats modeled cost."""

    def __init__(self, config: LearnConfig):
        self.config = config

    def decide(
        self,
        *,
        loads: np.ndarray,
        capacities: np.ndarray,
        horizon_iters: int,
        beta: float | None,
        migration_seconds: float | None,
    ) -> GateDecision:
        """Price repartitioning ``loads`` under fresh ``capacities``.

        ``beta`` is the fitted seconds-per-bottleneck-work slope (None
        while cold); ``migration_seconds`` the modeled repartition cost
        (None while cold).  Cold models always repartition -- the
        paper's behavior is the deterministic fallback.
        """
        horizon = max(int(horizon_iters), 0)
        if beta is None or migration_seconds is None:
            return GateDecision(True, "cold", math.inf, 0.0, horizon)
        caps = np.maximum(np.asarray(capacities, dtype=float), 1e-9)
        loads = np.asarray(loads, dtype=float)
        total = float(loads.sum())
        # Relative capacities sum to 1, so a balanced partition's
        # bottleneck work max_k W_k/c_k equals the total work; anything
        # above that is the imbalance the gate can reclaim.
        bottleneck = float((loads / caps).max()) if loads.size else 0.0
        excess_work = max(bottleneck - total, 0.0)
        payoff = beta * excess_work * horizon
        cost = self.config.gate_safety * max(migration_seconds, 0.0)
        if payoff > cost:
            return GateDecision(True, "payoff", payoff, cost, horizon)
        return GateDecision(False, "skip", payoff, cost, horizon)


class LearnController:
    """Models + policies + history recording behind one loop-facing API.

    The runtime calls four observe/query pairs, all cheap (O(nodes)):

    - :meth:`observe_sense` after every probe sweep;
    - :meth:`observe_iteration` after every priced iteration;
    - :meth:`observe_repartition` after every migration;
    - :meth:`sense_due` / :meth:`repartition_decision` /
      :meth:`effective_capacities` at the loop's decision points.

    A ``history`` store persists every observation durably; ``None``
    keeps the controller purely in-memory (the ablation mode).  Models
    can be pre-seeded from a fitted store via :meth:`warm_start`.
    """

    enabled = True

    def __init__(
        self,
        config: LearnConfig | None = None,
        *,
        history: ExecutionHistoryStore | None = None,
        run_id: str = "live",
    ):
        self.config = config or LearnConfig()
        self.history = history
        self.run_id = str(run_id)
        self.tracer = None  # bound by the runtime (see bind())
        cfg = self.config
        self.sensing_policy = AdaptiveSensingPolicy(cfg)
        self.gate = RepartitionGate(cfg)
        self.capacity_model: TransientCapacityModel | None = None
        self.compute_model = AmdahlCostModel(
            phase="compute", min_points=cfg.min_fit_points
        )
        #: iteration seconds ~ bottleneck work (max_k W_k / c_k): the
        #: slope is the gate's beta, the intercept the comm+sync floor.
        self.iter_model = OnlineLinearModel(min_points=cfg.min_fit_points)
        self.iter_seconds = OnlineMeanModel(min_points=cfg.min_fit_points)
        self.migration_model = OnlineMeanModel(min_points=2)
        self.probe_model = OnlineMeanModel(min_points=2)
        self._last_interval: int | None = None
        self.gate_decisions: list[GateDecision] = []

    # -- wiring --------------------------------------------------------
    def bind(self, tracer, num_nodes: int) -> None:
        """Attach the runtime's tracer and size the capacity model."""
        self.tracer = tracer
        if (
            self.capacity_model is None
            or self.capacity_model.num_nodes != int(num_nodes)
        ):
            self.capacity_model = TransientCapacityModel(
                num_nodes=int(num_nodes),
                window=self.config.capacity_window,
                min_points=self.config.capacity_min_points,
            )

    def _event(self, name: str, **attrs) -> None:
        if self.tracer is not None and getattr(self.tracer, "enabled", False):
            self.tracer.event(name, **attrs)

    def _metrics(self):
        if self.tracer is not None and getattr(self.tracer, "enabled", False):
            return self.tracer.metrics
        return None

    # -- observations --------------------------------------------------
    def observe_sense(
        self, t: float, capacities: np.ndarray, overhead_seconds: float
    ) -> None:
        if self.capacity_model is None:
            self.bind(self.tracer, len(capacities))
        self.capacity_model.observe(t, capacities)
        self.probe_model.observe(overhead_seconds)
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter("learn.observations").inc()
            metrics.gauge("learn.capacity_drift_rate").set(
                self.capacity_model.drift_rate()
            )
        if self.history is not None:
            self.history.record(
                source=self.run_id,
                phase="sense",
                seconds=float(overhead_seconds),
                t=float(t),
            )

    def observe_iteration(
        self,
        iteration: int,
        t: float,
        loads: np.ndarray,
        capacities: np.ndarray,
        cost,
    ) -> None:
        """Fold one priced iteration into every model.

        ``cost`` is the time model's IterationCost (per-rank compute and
        comm plus the collective sync).
        """
        loads = np.asarray(loads, dtype=float)
        caps = np.maximum(np.asarray(capacities, dtype=float), 1e-9)
        compute = np.asarray(cost.compute, dtype=float)
        for node in range(len(loads)):
            if loads[node] > 0.0:
                self.compute_model.observe(
                    node, loads[node], float(compute[node])
                )
        bottleneck = float((loads / caps).max()) if loads.size else 0.0
        self.iter_model.observe(bottleneck, float(cost.total))
        self.iter_seconds.observe(float(cost.total))
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter("learn.observations").inc()
        if self.history is not None:
            for node in range(len(loads)):
                self.history.record(
                    source=self.run_id,
                    phase="compute",
                    node=node,
                    t=float(t),
                    work=float(loads[node]),
                    seconds=float(compute[node]),
                    capacity=float(caps[node]),
                )
            self.history.record(
                source=self.run_id,
                phase="iteration",
                t=float(t),
                work=bottleneck,
                seconds=float(cost.total),
            )

    def observe_repartition(
        self, t: float, migration_seconds: float, migration_bytes: int
    ) -> None:
        self.migration_model.observe(float(migration_seconds))
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter("learn.observations").inc()
        if self.history is not None:
            self.history.record(
                source=self.run_id,
                phase="migrate",
                seconds=float(migration_seconds),
                work=float(migration_bytes),
                t=float(t),
            )

    # -- decisions -----------------------------------------------------
    def sensing_interval(self) -> int:
        """Current learned (or fallback) sensing interval in iterations."""
        drift = (
            self.capacity_model.drift_rate()
            if self.capacity_model is not None
            and not self.capacity_model.is_cold
            else 0.0
        )
        spi = (
            self.iter_seconds.mean if not self.iter_seconds.is_cold else 0.0
        )
        interval, fitted = self.sensing_policy.interval(drift, spi)
        if interval != self._last_interval:
            self._event(
                "learn.sense_interval",
                interval=interval,
                fitted=fitted,
                drift_rate=drift,
            )
            self._last_interval = interval
        metrics = self._metrics()
        if metrics is not None:
            metrics.gauge("learn.sensing_interval").set(float(interval))
        return interval

    def sense_due(self, iteration: int, last_sense_iteration: int) -> bool:
        """Whether the learned cadence calls for a probe this iteration."""
        if iteration <= 0:
            return False
        return iteration - last_sense_iteration >= self.sensing_interval()

    def repartition_decision(
        self,
        loads: np.ndarray,
        capacities: np.ndarray,
        horizon_iters: int,
    ) -> GateDecision:
        """Gate a sense-triggered repartition on predicted payoff."""
        beta = None
        if not self.iter_model.is_cold and self.iter_model.slope > 0.0:
            beta = self.iter_model.slope
        migration = (
            self.migration_model.mean
            if not self.migration_model.is_cold
            else None
        )
        decision = self.gate.decide(
            loads=loads,
            capacities=capacities,
            horizon_iters=horizon_iters,
            beta=beta,
            migration_seconds=migration,
        )
        self.gate_decisions.append(decision)
        self._event(
            "learn.gate",
            repartition=decision.repartition,
            reason=decision.reason,
            payoff_seconds=(
                decision.payoff_seconds
                if math.isfinite(decision.payoff_seconds)
                else None
            ),
            cost_seconds=decision.cost_seconds,
            horizon_iters=decision.horizon_iters,
        )
        metrics = self._metrics()
        if metrics is not None:
            if decision.repartition:
                metrics.counter("learn.gate_repartitions").inc()
            else:
                metrics.counter("learn.gate_skips").inc()
        return decision

    def effective_capacities(
        self, capacities: np.ndarray, t: float
    ) -> np.ndarray:
        """Substitute the transient forecast for the raw sensed vector.

        Predicts ``forecast_lead`` of the upcoming sensing window ahead,
        so the partitioner balances against where capacities are heading
        rather than where they were at probe time.  Cold model: the
        sensed vector passes through untouched.
        """
        model = self.capacity_model
        if model is None or model.is_cold or self.iter_seconds.is_cold:
            return capacities
        interval = self.sensing_interval()
        lead = (
            self.config.forecast_lead * interval * self.iter_seconds.mean
        )
        predicted = model.predict(float(t) + lead)
        if predicted is None:
            return capacities
        self._event(
            "learn.capacity_forecast",
            lead_seconds=lead,
            drift_rate=model.drift_rate(),
        )
        return predicted

    # -- introspection -------------------------------------------------
    def summary(self) -> dict:
        """Fit state of every model, for the CLI and the ablation."""
        gate_skips = sum(
            1 for d in self.gate_decisions if not d.repartition
        )
        return {
            "config": {
                "adaptive_sensing": self.config.adaptive_sensing,
                "payoff_gate": self.config.payoff_gate,
                "transient_forecast": self.config.transient_forecast,
                "fallback_interval": self.config.fallback_interval,
            },
            "capacity_model": {
                "cold": (
                    self.capacity_model.is_cold
                    if self.capacity_model is not None
                    else True
                ),
                "drift_rate": (
                    self.capacity_model.drift_rate()
                    if self.capacity_model is not None
                    else 0.0
                ),
                "window_len": (
                    len(self.capacity_model)
                    if self.capacity_model is not None
                    else 0
                ),
            },
            "iter_model": {
                "cold": self.iter_model.is_cold,
                "n": self.iter_model.n,
                "beta": self.iter_model.slope,
                "intercept": self.iter_model.intercept,
            },
            "migration_model": {
                "cold": self.migration_model.is_cold,
                "n": self.migration_model.n,
                "mean_seconds": self.migration_model.mean,
            },
            "probe_model": {
                "cold": self.probe_model.is_cold,
                "n": self.probe_model.n,
                "mean_seconds": self.probe_model.mean,
            },
            "sensing_interval": (
                self._last_interval
                if self._last_interval is not None
                else self.config.fallback_interval
            ),
            "gate": {
                "decisions": len(self.gate_decisions),
                "skips": gate_skips,
            },
        }

    def warm_start(self, store: ExecutionHistoryStore) -> dict:
        """Seed the cost models from a persisted history store.

        Replays compute/iteration/migrate rows through the online
        models; returns counts per model.  The transient capacity model
        is *not* seeded -- capacity transients are a property of the
        live cluster, not of history from another run.
        """
        counts = {"compute": 0, "iteration": 0, "migrate": 0}
        view = store.query(phase="compute")
        for node, work, seconds in zip(
            view["node"], view["work"], view["seconds"]
        ):
            if work > 0.0:
                self.compute_model.observe(
                    int(node), float(work), float(seconds)
                )
                counts["compute"] += 1
        view = store.query(phase="iteration")
        for work, seconds in zip(view["work"], view["seconds"]):
            self.iter_model.observe(float(work), float(seconds))
            self.iter_seconds.observe(float(seconds))
            counts["iteration"] += 1
        view = store.query(phase="migrate")
        for seconds in view["seconds"]:
            self.migration_model.observe(float(seconds))
            counts["migrate"] += 1
        return counts


class NullLearner:
    """The disabled learner: every call site guards on ``enabled``.

    Mirrors the ``NullTracer`` pattern -- a shared inert default, so the
    runtime wiring never branches on ``None`` and the unlearned path
    stays byte-identical to the pre-learn code.
    """

    enabled = False
    config = LearnConfig()

    def bind(self, tracer, num_nodes: int) -> None:  # pragma: no cover
        return None


#: The shared inert learner (same idiom as ``NULL_TRACER``).
NULL_LEARNER = NullLearner()
