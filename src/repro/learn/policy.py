"""Adaptive sensing and payoff-gated repartitioning policies.

The paper hand-tunes two knobs this module learns instead:

- **When to sense.**  Table III fixes the probe cadence at f=20 after an
  offline sweep.  :class:`AdaptiveSensingPolicy` derives the interval at
  runtime from the :class:`~repro.learn.models.TransientCapacityModel`'s
  fitted capacity drift: sense again when the capacity vector is
  predicted to have drifted past tolerance, not on a fixed count.  Fast
  transients shorten the interval; quiet stretches stretch it.
- **Whether to repartition.**  The paper redistributes after every
  sensing.  :class:`RepartitionGate` prices the decision the way
  Altevogt & Linke price theirs: repartitioning pays off only if the
  predicted imbalance cost over the remaining iterations of the epoch
  exceeds the modeled migration cost.  With relative capacities summing
  to one, a balanced partition's bottleneck work equals the total work
  ``W``, so the per-iteration payoff of rebalancing is
  ``beta * (max_k W_k / c_k - W)`` where ``beta`` is the fitted
  seconds-per-bottleneck-work slope of the iteration cost model.

Both policies fall back **deterministically** to the paper's behavior
while their models are cold: the sensing policy returns the fixed
fallback interval (f=20 by default) and the gate always repartitions.
:class:`LearnController` packages models + policies + history recording
behind the same injectable no-op-default pattern the tracer uses:
:data:`NULL_LEARNER` has ``enabled = False`` and every call site guards
on it, so a run without learning executes byte-identically to one built
before this module existed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.learn.audit import DecisionLedger, encode_float
from repro.learn.history import ExecutionHistoryStore
from repro.learn.models import (
    AmdahlCostModel,
    OnlineLinearModel,
    OnlineMeanModel,
    TransientCapacityModel,
)
from repro.util.errors import ExperimentError

__all__ = [
    "LearnConfig",
    "AdaptiveSensingPolicy",
    "GateDecision",
    "RepartitionGate",
    "LearnController",
    "NullLearner",
    "NULL_LEARNER",
]


@dataclass(frozen=True, slots=True)
class LearnConfig:
    """Which learned behaviors are active, and their safety margins.

    Attributes
    ----------
    adaptive_sensing / payoff_gate / transient_forecast:
        Independent switches for the three learned behaviors, so the
        ablation can attribute the win per piece.
    fallback_interval:
        Sensing cadence (iterations) while the drift model is cold --
        the paper's hand-tuned f (default 20).
    min_interval / max_interval:
        Clamp on the learned sensing interval.
    drift_tolerance:
        Relative-capacity drift (fraction of total) tolerated between
        sensings; the learned interval is the predicted time to drift
        this far.
    gate_safety:
        Multiplier on the modeled repartition cost the predicted payoff
        must beat (>1 biases toward the paper's always-repartition).
    min_fit_points:
        Observations before any model considers itself fitted.
    capacity_window:
        Sliding-window length of the transient capacity model.
    capacity_min_points:
        Sensings before the transient capacity model is warm.  Lower
        than ``min_fit_points`` because sensings are scarce (one per
        fallback interval, not one per iteration) and the drift fit
        needs to engage within a single fallback-cadence run.
    forecast_lead:
        Fraction of the sensing interval the transient model predicts
        ahead when substituting forecast capacities (0.5 targets the
        middle of the upcoming sensing window).
    """

    adaptive_sensing: bool = True
    payoff_gate: bool = True
    transient_forecast: bool = True
    fallback_interval: int = 20
    min_interval: int = 2
    max_interval: int = 80
    drift_tolerance: float = 0.02
    gate_safety: float = 1.0
    min_fit_points: int = 4
    capacity_window: int = 12
    capacity_min_points: int = 3
    forecast_lead: float = 0.5

    def __post_init__(self) -> None:
        if self.fallback_interval < 1:
            raise ExperimentError(
                f"fallback_interval must be >= 1, got {self.fallback_interval}"
            )
        if not 1 <= self.min_interval <= self.max_interval:
            raise ExperimentError(
                "need 1 <= min_interval <= max_interval, got "
                f"[{self.min_interval}, {self.max_interval}]"
            )
        if self.drift_tolerance <= 0:
            raise ExperimentError(
                f"drift_tolerance must be positive, got {self.drift_tolerance}"
            )
        if self.gate_safety <= 0:
            raise ExperimentError(
                f"gate_safety must be positive, got {self.gate_safety}"
            )
        if self.forecast_lead < 0:
            raise ExperimentError(
                f"forecast_lead must be >= 0, got {self.forecast_lead}"
            )


class AdaptiveSensingPolicy:
    """Sensing interval from predicted capacity drift.

    ``interval = drift_tolerance / (drift_rate * seconds_per_iteration)``
    iterations, clamped to ``[min_interval, max_interval]``: the number
    of iterations until the fitted transient model predicts the capacity
    vector has moved ``drift_tolerance`` from what the partitioner last
    saw.  A cold drift model or unfitted iteration-time model yields the
    fixed ``fallback_interval`` -- exactly the paper's f.
    """

    def __init__(self, config: LearnConfig):
        self.config = config

    def interval(
        self, drift_rate: float, seconds_per_iteration: float
    ) -> tuple[int, bool]:
        """(interval in iterations, whether it came from the model)."""
        cfg = self.config
        if drift_rate <= 0.0 or not (seconds_per_iteration > 0.0):
            return cfg.fallback_interval, False
        seconds_to_drift = cfg.drift_tolerance / drift_rate
        iters = seconds_to_drift / seconds_per_iteration
        clamped = int(
            min(max(math.floor(iters), cfg.min_interval), cfg.max_interval)
        )
        return clamped, True


@dataclass(frozen=True, slots=True)
class GateDecision:
    """One priced repartition decision."""

    repartition: bool
    reason: str  # "cold" | "payoff" | "skip"
    payoff_seconds: float
    cost_seconds: float
    horizon_iters: int


class RepartitionGate:
    """Repartition only when predicted payoff beats modeled cost."""

    def __init__(self, config: LearnConfig):
        self.config = config

    def decide(
        self,
        *,
        loads: np.ndarray,
        capacities: np.ndarray,
        horizon_iters: int,
        beta: float | None,
        migration_seconds: float | None,
    ) -> GateDecision:
        """Price repartitioning ``loads`` under fresh ``capacities``.

        ``beta`` is the fitted seconds-per-bottleneck-work slope (None
        while cold); ``migration_seconds`` the modeled repartition cost
        (None while cold).  Cold models always repartition -- the
        paper's behavior is the deterministic fallback.
        """
        horizon = max(int(horizon_iters), 0)
        if beta is None or migration_seconds is None:
            return GateDecision(True, "cold", math.inf, 0.0, horizon)
        caps = np.maximum(np.asarray(capacities, dtype=float), 1e-9)
        loads = np.asarray(loads, dtype=float)
        total = float(loads.sum())
        # Relative capacities sum to 1, so a balanced partition's
        # bottleneck work max_k W_k/c_k equals the total work; anything
        # above that is the imbalance the gate can reclaim.
        bottleneck = float((loads / caps).max()) if loads.size else 0.0
        excess_work = max(bottleneck - total, 0.0)
        payoff = beta * excess_work * horizon
        cost = self.config.gate_safety * max(migration_seconds, 0.0)
        if payoff > cost:
            return GateDecision(True, "payoff", payoff, cost, horizon)
        return GateDecision(False, "skip", payoff, cost, horizon)


class LearnController:
    """Models + policies + history recording behind one loop-facing API.

    The runtime calls four observe/query pairs, all cheap (O(nodes)):

    - :meth:`observe_sense` after every probe sweep;
    - :meth:`observe_iteration` after every priced iteration;
    - :meth:`observe_repartition` after every migration;
    - :meth:`sense_due` / :meth:`repartition_decision` /
      :meth:`effective_capacities` at the loop's decision points.

    A ``history`` store persists every observation durably; ``None``
    keeps the controller purely in-memory (the ablation mode).  Models
    can be pre-seeded from a fitted store via :meth:`warm_start`.

    A ``ledger`` (:class:`~repro.learn.audit.DecisionLedger`) records
    every decision's full provenance -- inputs, model-state digest,
    prediction with CI, action, reason -- plus the measured outcomes
    the reconciler joins against, and mirrors each record as a
    ``decision.*`` trace event.  ``None`` (the default) records and
    emits nothing: runs without a ledger stay byte-identical.
    """

    enabled = True

    def __init__(
        self,
        config: LearnConfig | None = None,
        *,
        history: ExecutionHistoryStore | None = None,
        run_id: str = "live",
        ledger: DecisionLedger | None = None,
    ):
        self.config = config or LearnConfig()
        self.history = history
        self.ledger = ledger
        self.run_id = str(run_id)
        self.tracer = None  # bound by the runtime (see bind())
        cfg = self.config
        self.sensing_policy = AdaptiveSensingPolicy(cfg)
        self.gate = RepartitionGate(cfg)
        self.capacity_model: TransientCapacityModel | None = None
        self.compute_model = AmdahlCostModel(
            phase="compute", min_points=cfg.min_fit_points
        )
        #: iteration seconds ~ bottleneck work (max_k W_k / c_k): the
        #: slope is the gate's beta, the intercept the comm+sync floor.
        self.iter_model = OnlineLinearModel(min_points=cfg.min_fit_points)
        self.iter_seconds = OnlineMeanModel(min_points=cfg.min_fit_points)
        self.migration_model = OnlineMeanModel(min_points=2)
        self.probe_model = OnlineMeanModel(min_points=2)
        self._last_interval: int | None = None
        self.gate_decisions: list[GateDecision] = []

    # -- wiring --------------------------------------------------------
    def bind(self, tracer, num_nodes: int) -> None:
        """Attach the runtime's tracer and size the capacity model."""
        self.tracer = tracer
        if (
            self.capacity_model is None
            or self.capacity_model.num_nodes != int(num_nodes)
        ):
            self.capacity_model = TransientCapacityModel(
                num_nodes=int(num_nodes),
                window=self.config.capacity_window,
                min_points=self.config.capacity_min_points,
            )

    def _event(self, name: str, **attrs) -> None:
        if self.tracer is not None and getattr(self.tracer, "enabled", False):
            self.tracer.event(name, **attrs)

    def _metrics(self):
        if self.tracer is not None and getattr(self.tracer, "enabled", False):
            return self.tracer.metrics
        return None

    def _decision(self, kind: str, **fields) -> dict | None:
        """Ledger one decision record and mirror it as a trace event.

        No ledger configured -> records nothing, emits nothing: the
        ledger-less path (enabled or not) stays byte-identical.
        """
        if self.ledger is None:
            return None
        row = self.ledger.record(kind, **fields)
        self._event(
            f"decision.{kind}",
            **{k: v for k, v in row.items() if k != "kind"},
        )
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter("decision.records").inc()
        return row

    # -- observations --------------------------------------------------
    def observe_sense(
        self, t: float, capacities: np.ndarray, overhead_seconds: float
    ) -> None:
        if self.capacity_model is None:
            self.bind(self.tracer, len(capacities))
        # Probed capacities are the ground truth the reconciler scores
        # capacity forecasts against; ledger them before folding.
        self._decision(
            "outcome",
            phase="sense",
            t=float(t),
            capacities=np.asarray(capacities, dtype=float),
            overhead_seconds=float(overhead_seconds),
        )
        self.capacity_model.observe(t, capacities)
        self.probe_model.observe(overhead_seconds)
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter("learn.observations").inc()
            metrics.gauge("learn.capacity_drift_rate").set(
                self.capacity_model.drift_rate()
            )
        if self.history is not None:
            self.history.record(
                source=self.run_id,
                phase="sense",
                seconds=float(overhead_seconds),
                t=float(t),
            )

    def observe_iteration(
        self,
        iteration: int,
        t: float,
        loads: np.ndarray,
        capacities: np.ndarray,
        cost,
    ) -> None:
        """Fold one priced iteration into every model.

        ``cost`` is the time model's IterationCost (per-rank compute and
        comm plus the collective sync).
        """
        loads = np.asarray(loads, dtype=float)
        caps = np.maximum(np.asarray(capacities, dtype=float), 1e-9)
        compute = np.asarray(cost.compute, dtype=float)
        for node in range(len(loads)):
            if loads[node] > 0.0:
                self.compute_model.observe(
                    node, loads[node], float(compute[node])
                )
        bottleneck = float((loads / caps).max()) if loads.size else 0.0
        if self.ledger is not None:
            # One-step-ahead prediction, captured *before* the measured
            # point folds into the model: honest out-of-sample CI
            # coverage for the calibration score.
            lo, hi = self.iter_model.prediction_interval(bottleneck)
            self._decision(
                "prediction",
                iteration=int(iteration),
                t=float(t),
                x=bottleneck,
                predicted=float(self.iter_model.predict(bottleneck)),
                lo=lo,
                hi=hi,
                actual=float(cost.total),
                cold=self.iter_model.is_cold,
            )
        self.iter_model.observe(bottleneck, float(cost.total))
        self.iter_seconds.observe(float(cost.total))
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter("learn.observations").inc()
        if self.history is not None:
            for node in range(len(loads)):
                self.history.record(
                    source=self.run_id,
                    phase="compute",
                    node=node,
                    t=float(t),
                    work=float(loads[node]),
                    seconds=float(compute[node]),
                    capacity=float(caps[node]),
                )
            self.history.record(
                source=self.run_id,
                phase="iteration",
                t=float(t),
                work=bottleneck,
                seconds=float(cost.total),
            )

    def observe_repartition(
        self, t: float, migration_seconds: float, migration_bytes: int
    ) -> None:
        self._decision(
            "outcome",
            phase="migrate",
            t=float(t),
            # Pre-fold model mean: what the gate believed a migration
            # cost *before* this one was measured.
            predicted_seconds=(
                self.migration_model.mean
                if not self.migration_model.is_cold
                else None
            ),
            seconds=float(migration_seconds),
            bytes=int(migration_bytes),
        )
        self.migration_model.observe(float(migration_seconds))
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter("learn.observations").inc()
        if self.history is not None:
            self.history.record(
                source=self.run_id,
                phase="migrate",
                seconds=float(migration_seconds),
                work=float(migration_bytes),
                t=float(t),
            )

    def observe_recover(
        self,
        t: float,
        dead_nodes,
        migration_seconds: float,
        migration_bytes: int,
        evacuated_bytes: int = 0,
    ) -> None:
        """Ledger a recovery repartition's provenance.

        Call *before* :meth:`observe_repartition` folds the measured
        migration so the recorded prediction is what the model believed
        going in.  Without a ledger this is a no-op.
        """
        self._decision(
            "recover",
            t=float(t),
            dead_nodes=[int(n) for n in dead_nodes],
            predicted_migration_seconds=(
                self.migration_model.mean
                if not self.migration_model.is_cold
                else None
            ),
            migration_seconds=float(migration_seconds),
            migration_bytes=int(migration_bytes),
            evacuated_bytes=int(evacuated_bytes),
        )

    # -- decisions -----------------------------------------------------
    def sensing_interval(self) -> int:
        """Current learned (or fallback) sensing interval in iterations."""
        drift = (
            self.capacity_model.drift_rate()
            if self.capacity_model is not None
            and not self.capacity_model.is_cold
            else 0.0
        )
        spi = (
            self.iter_seconds.mean if not self.iter_seconds.is_cold else 0.0
        )
        interval, fitted = self.sensing_policy.interval(drift, spi)
        if interval != self._last_interval:
            self._event(
                "learn.sense_interval",
                interval=interval,
                fitted=fitted,
                drift_rate=drift,
            )
            cfg = self.config
            self._decision(
                "sense_interval",
                interval=int(interval),
                fitted=bool(fitted),
                previous_interval=self._last_interval,
                drift_rate=float(drift),
                seconds_per_iteration=float(spi),
                drift_tolerance=cfg.drift_tolerance,
                fallback_interval=cfg.fallback_interval,
                min_interval=cfg.min_interval,
                max_interval=cfg.max_interval,
            )
            self._last_interval = interval
        metrics = self._metrics()
        if metrics is not None:
            metrics.gauge("learn.sensing_interval").set(float(interval))
        return interval

    def sense_due(self, iteration: int, last_sense_iteration: int) -> bool:
        """Whether the learned cadence calls for a probe this iteration."""
        if iteration <= 0:
            return False
        return iteration - last_sense_iteration >= self.sensing_interval()

    def repartition_decision(
        self,
        loads: np.ndarray,
        capacities: np.ndarray,
        horizon_iters: int,
        *,
        iteration: int = -1,
        t: float = 0.0,
    ) -> GateDecision:
        """Gate a sense-triggered repartition on predicted payoff.

        ``iteration`` and ``t`` only stamp the ledger record (when a
        ledger is configured); they never influence the decision.
        """
        beta = None
        if not self.iter_model.is_cold and self.iter_model.slope > 0.0:
            beta = self.iter_model.slope
        migration = (
            self.migration_model.mean
            if not self.migration_model.is_cold
            else None
        )
        decision = self.gate.decide(
            loads=loads,
            capacities=capacities,
            horizon_iters=horizon_iters,
            beta=beta,
            migration_seconds=migration,
        )
        self.gate_decisions.append(decision)
        self._event(
            "learn.gate",
            repartition=decision.repartition,
            reason=decision.reason,
            # Explicit "inf" sentinel: a cold gate's infinite payoff
            # must survive the JSON round trip, not vanish into null.
            payoff_seconds=encode_float(decision.payoff_seconds),
            cost_seconds=encode_float(decision.cost_seconds),
            horizon_iters=decision.horizon_iters,
        )
        if self.ledger is not None:
            loads_arr = np.asarray(loads, dtype=float)
            caps_arr = np.maximum(
                np.asarray(capacities, dtype=float), 1e-9
            )
            total = float(loads_arr.sum())
            bottleneck = (
                float((loads_arr / caps_arr).max())
                if loads_arr.size
                else 0.0
            )
            excess = max(bottleneck - total, 0.0)
            slope_lo, slope_hi = self.iter_model.slope_interval()
            horizon = decision.horizon_iters
            self._decision(
                "gate",
                iteration=int(iteration),
                t=float(t),
                # Inputs: everything decide() consumed, verbatim, so
                # `repro explain --decision` replays bit-exactly.
                loads=loads_arr,
                capacities=np.asarray(capacities, dtype=float),
                horizon_iters=horizon,
                beta=beta,
                migration_seconds=migration,
                gate_safety=self.config.gate_safety,
                # Derived terms + the prediction with its CI.
                total_work=total,
                bottleneck_work=bottleneck,
                excess_work=excess,
                payoff_seconds=decision.payoff_seconds,
                payoff_lo_seconds=(
                    slope_lo * excess * horizon
                    if beta is not None
                    else None
                ),
                payoff_hi_seconds=(
                    slope_hi * excess * horizon
                    if beta is not None
                    else None
                ),
                cost_seconds=decision.cost_seconds,
                # The action and the model-state digest behind it.
                repartition=decision.repartition,
                reason=decision.reason,
                iter_n=self.iter_model.n,
                iter_slope=(
                    self.iter_model.slope
                    if not self.iter_model.is_cold
                    else None
                ),
                iter_intercept=(
                    self.iter_model.intercept
                    if not self.iter_model.is_cold
                    else None
                ),
                migration_n=self.migration_model.n,
            )
        metrics = self._metrics()
        if metrics is not None:
            if decision.repartition:
                metrics.counter("learn.gate_repartitions").inc()
            else:
                metrics.counter("learn.gate_skips").inc()
        return decision

    def effective_capacities(
        self, capacities: np.ndarray, t: float
    ) -> np.ndarray:
        """Substitute the transient forecast for the raw sensed vector.

        Predicts ``forecast_lead`` of the upcoming sensing window ahead,
        so the partitioner balances against where capacities are heading
        rather than where they were at probe time.  Cold model: the
        sensed vector passes through untouched.
        """
        model = self.capacity_model
        if model is None or model.is_cold or self.iter_seconds.is_cold:
            return capacities
        interval = self.sensing_interval()
        lead = (
            self.config.forecast_lead * interval * self.iter_seconds.mean
        )
        predicted = model.predict(float(t) + lead)
        if predicted is None:
            return capacities
        self._event(
            "learn.capacity_forecast",
            lead_seconds=lead,
            drift_rate=model.drift_rate(),
        )
        self._decision(
            "forecast",
            t=float(t),
            lead_seconds=float(lead),
            target_t=float(t) + float(lead),
            drift_rate=model.drift_rate(),
            sensed=np.asarray(capacities, dtype=float),
            predicted=predicted,
        )
        return predicted

    # -- introspection -------------------------------------------------
    def summary(self) -> dict:
        """Fit state of every model, for the CLI and the ablation."""
        gate_skips = sum(
            1 for d in self.gate_decisions if not d.repartition
        )
        return {
            "config": {
                "adaptive_sensing": self.config.adaptive_sensing,
                "payoff_gate": self.config.payoff_gate,
                "transient_forecast": self.config.transient_forecast,
                "fallback_interval": self.config.fallback_interval,
            },
            "capacity_model": {
                "cold": (
                    self.capacity_model.is_cold
                    if self.capacity_model is not None
                    else True
                ),
                "drift_rate": (
                    self.capacity_model.drift_rate()
                    if self.capacity_model is not None
                    else 0.0
                ),
                "window_len": (
                    len(self.capacity_model)
                    if self.capacity_model is not None
                    else 0
                ),
            },
            "iter_model": {
                "cold": self.iter_model.is_cold,
                "n": self.iter_model.n,
                "beta": self.iter_model.slope,
                "intercept": self.iter_model.intercept,
            },
            "migration_model": {
                "cold": self.migration_model.is_cold,
                "n": self.migration_model.n,
                "mean_seconds": self.migration_model.mean,
            },
            "probe_model": {
                "cold": self.probe_model.is_cold,
                "n": self.probe_model.n,
                "mean_seconds": self.probe_model.mean,
            },
            "sensing_interval": (
                self._last_interval
                if self._last_interval is not None
                else self.config.fallback_interval
            ),
            "gate": {
                "decisions": len(self.gate_decisions),
                "skips": gate_skips,
            },
            "ledger": (
                {"records": len(self.ledger)}
                if self.ledger is not None
                else None
            ),
        }

    def warm_start(self, store: ExecutionHistoryStore) -> dict:
        """Seed the cost models from a persisted history store.

        Replays compute/iteration/migrate rows through the online
        models; returns counts per model.  The transient capacity model
        is *not* seeded -- capacity transients are a property of the
        live cluster, not of history from another run.
        """
        counts = {"compute": 0, "iteration": 0, "migrate": 0}
        view = store.query(phase="compute")
        for node, work, seconds in zip(
            view["node"], view["work"], view["seconds"]
        ):
            if work > 0.0:
                self.compute_model.observe(
                    int(node), float(work), float(seconds)
                )
                counts["compute"] += 1
        view = store.query(phase="iteration")
        for work, seconds in zip(view["work"], view["seconds"]):
            self.iter_model.observe(float(work), float(seconds))
            self.iter_seconds.observe(float(seconds))
            counts["iteration"] += 1
        view = store.query(phase="migrate")
        for seconds in view["seconds"]:
            self.migration_model.observe(float(seconds))
            counts["migrate"] += 1
        return counts


class NullLearner:
    """The disabled learner: every call site guards on ``enabled``.

    Mirrors the ``NullTracer`` pattern -- a shared inert default, so the
    runtime wiring never branches on ``None`` and the unlearned path
    stays byte-identical to the pre-learn code.
    """

    enabled = False
    config = LearnConfig()

    def bind(self, tracer, num_nodes: int) -> None:  # pragma: no cover
        return None


#: The shared inert learner (same idiom as ``NULL_TRACER``).
NULL_LEARNER = NullLearner()
