"""Decision provenance: durable ledger + reconciliation for the learner.

PR 9 made the runtime's adaptivity learned; this module makes it
*auditable*.  Every adaptive decision -- an
:class:`~repro.learn.policy.AdaptiveSensingPolicy` interval choice, a
:class:`~repro.learn.policy.RepartitionGate` accept/skip, a transient
capacity forecast, a recovery repartition -- is recorded to a durable
JSONL ledger (:class:`DecisionLedger`, same fsync/torn-tail/exact-resume
machinery as the execution-history store) together with its inputs, a
digest of the model state that produced it, and the prediction with its
closed-form CI.  Measured outcomes land in the same ledger, so the
predict->measure loop closes offline from the ledger alone:

- :func:`replay_decision` re-runs the gate from recorded inputs and
  must reproduce the recorded decision **bit-exactly** -- the ledger is
  a complete causal account, not a summary;
- :func:`calibration` scores the one-step-ahead iteration-cost
  predictions: did the 95% CI contain the truth ~95% of the time?
- :func:`oracle_replay` re-prices every gate decision with *hindsight*
  costs (beta refit on all measured (bottleneck, seconds) pairs, the
  measured mean migration cost) and charges cumulative regret for every
  decision the oracle would have made differently.

Non-finite floats are serialized as explicit ``"inf"``/``"-inf"``/
``"nan"`` sentinels (:func:`encode_float`/:func:`decode_float`) so a
cold gate's infinite payoff survives the JSON round trip instead of
being dropped.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Any, Iterable

import numpy as np

from repro.learn.durable import DurableJsonlStore
from repro.learn.models import OnlineLinearModel, OnlineMeanModel
from repro.util.errors import ExperimentError

__all__ = [
    "DecisionLedger",
    "LEDGER_NAME",
    "encode_float",
    "decode_float",
    "load_ledger_rows",
    "replay_decision",
    "verify_decision",
    "calibration",
    "oracle_replay",
    "reconcile",
]

#: Ledger append log and exact-resume index inside a ledger directory.
LEDGER_NAME = "decisions.jsonl"
LEDGER_INDEX_NAME = "index.json"

#: Ledger format version stamped into the index.
LEDGER_SCHEMA_VERSION = 1

#: The record kinds a ledger may hold.  ``gate``/``sense_interval``/
#: ``forecast``/``recover`` are decisions; ``prediction`` is the
#: one-step-ahead iteration-cost prediction captured *before* the
#: measured point folds into the model (honest out-of-sample CI
#: coverage); ``outcome`` rows are measured ground truth (migrations,
#: probe sweeps) the reconciler joins against.
RECORD_KINDS = (
    "gate",
    "sense_interval",
    "forecast",
    "recover",
    "prediction",
    "outcome",
)

#: Fraction of truths a well-calibrated 95% CI should contain.
CI_TARGET = 0.95


# -- non-finite-safe float round trip ----------------------------------
def encode_float(value: float | None) -> float | str | None:
    """JSON-safe float: non-finite values become explicit sentinels."""
    if value is None:
        return None
    v = float(value)
    if math.isfinite(v):
        return v
    if math.isnan(v):
        return "nan"
    return "inf" if v > 0 else "-inf"


def decode_float(value: Any) -> float | None:
    """Inverse of :func:`encode_float`."""
    if value is None:
        return None
    if isinstance(value, str):
        if value == "inf":
            return math.inf
        if value == "-inf":
            return -math.inf
        if value == "nan":
            return math.nan
        raise ExperimentError(f"unknown float sentinel {value!r}")
    return float(value)


def _encode_value(value: Any) -> Any:
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return encode_float(value)
    if isinstance(value, (list, tuple, np.ndarray)):
        return [_encode_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _encode_value(v) for k, v in value.items()}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return encode_float(float(value))
    return value


class DecisionLedger(DurableJsonlStore):
    """Durable append-only ledger of adaptive-runtime decisions.

    Rides :class:`~repro.learn.durable.DurableJsonlStore`: every append
    is fsynced before the call returns, a torn tail is truncated on
    load, and ``index.json`` gives exact resume.  Rows are flat dicts
    with a ``kind`` discriminator and a monotonically increasing
    ``seq`` -- the decision id :func:`replay_decision` and the
    ``repro explain --decision`` CLI address.
    """

    DATA_NAME = LEDGER_NAME
    INDEX_NAME = LEDGER_INDEX_NAME
    SCHEMA_VERSION = LEDGER_SCHEMA_VERSION
    REQUIRED_KEY = "kind"

    def record(self, kind: str, **fields: Any) -> dict[str, Any]:
        """Durably append one record; returns the stored row."""
        if kind not in RECORD_KINDS:
            raise ExperimentError(
                f"unknown decision-record kind {kind!r}; "
                f"expected one of {RECORD_KINDS}"
            )
        row = {"seq": len(self._rows), "kind": str(kind)}
        for key, value in fields.items():
            row[str(key)] = _encode_value(value)
        return self._append_row(row)

    def rows(self, kind: str | None = None) -> list[dict[str, Any]]:
        if kind is None:
            return list(self._rows)
        return [r for r in self._rows if r.get("kind") == kind]

    def get(self, seq: int) -> dict[str, Any]:
        for row in self._rows:
            if int(row.get("seq", -1)) == int(seq):
                return row
        raise ExperimentError(
            f"no decision record with seq {seq} "
            f"(ledger holds {len(self._rows)} records)"
        )


def load_ledger_rows(path: str | Path) -> list[dict[str, Any]]:
    """Load ledger rows from a directory or a ``decisions.jsonl`` path."""
    p = Path(path)
    if p.is_file():
        p = p.parent
    if not (p / LEDGER_NAME).is_file():
        raise ExperimentError(
            f"no decision ledger at {p} (expected {LEDGER_NAME})"
        )
    return DecisionLedger(p).rows()


# -- bit-exact decision replay -----------------------------------------
#: GateDecision fields compared by :func:`verify_decision`.
_DECISION_FIELDS = (
    "repartition",
    "reason",
    "payoff_seconds",
    "cost_seconds",
    "horizon_iters",
)


def replay_decision(record: dict[str, Any]):
    """Re-run the gate from a recorded ``gate`` row's inputs.

    Returns the freshly computed
    :class:`~repro.learn.policy.GateDecision`.  Because the gate is a
    pure function of ``(loads, capacities, horizon, beta,
    migration_seconds, gate_safety)`` -- all recorded verbatim -- the
    replay must be bit-exact; any divergence means the ledger is not a
    complete causal account of the decision.
    """
    from repro.learn.policy import LearnConfig, RepartitionGate

    if record.get("kind") != "gate":
        raise ExperimentError(
            f"can only replay gate records, got kind "
            f"{record.get('kind')!r} (seq {record.get('seq')})"
        )
    gate = RepartitionGate(
        LearnConfig(gate_safety=float(record["gate_safety"]))
    )
    return gate.decide(
        loads=np.asarray(record["loads"], dtype=float),
        capacities=np.asarray(record["capacities"], dtype=float),
        horizon_iters=int(record["horizon_iters"]),
        beta=decode_float(record.get("beta")),
        migration_seconds=decode_float(record.get("migration_seconds")),
    )


def verify_decision(record: dict[str, Any]) -> dict[str, Any]:
    """Replay one gate record and diff it against what was recorded."""
    replayed = replay_decision(record)
    recorded = {
        "repartition": bool(record["repartition"]),
        "reason": str(record["reason"]),
        "payoff_seconds": decode_float(record["payoff_seconds"]),
        "cost_seconds": decode_float(record["cost_seconds"]),
        "horizon_iters": int(record["horizon_iters"]),
    }
    fresh = {
        name: getattr(replayed, name) for name in _DECISION_FIELDS
    }
    mismatches = [
        name
        for name in _DECISION_FIELDS
        # Bitwise: no tolerance.  `!=` is False for inf==inf and True
        # for any ULP of drift; NaN never appears in gate outputs.
        if recorded[name] != fresh[name]
    ]
    return {
        "seq": int(record["seq"]),
        "match": not mismatches,
        "mismatches": mismatches,
        "recorded": recorded,
        "replayed": fresh,
    }


# -- calibration -------------------------------------------------------
def calibration(rows: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """CI-coverage calibration of the one-step-ahead predictions.

    Each ``prediction`` row carries the model's point prediction and
    95% CI for the iteration cost, captured *before* the measured value
    folded into the model.  Coverage is the fraction of warm
    predictions whose CI contained the truth; a well-calibrated model
    sits near :data:`CI_TARGET`.  Cold predictions (infinite CI) are
    counted separately -- an infinite interval always "covers" and
    would flatter the score.
    """
    n = covered = cold = 0
    abs_err = signed_err = 0.0
    for row in rows:
        if row.get("kind") != "prediction":
            continue
        actual = decode_float(row["actual"])
        lo = decode_float(row["lo"])
        hi = decode_float(row["hi"])
        if lo is None or hi is None or not (
            math.isfinite(lo) and math.isfinite(hi)
        ):
            cold += 1
            continue
        predicted = decode_float(row["predicted"])
        n += 1
        if lo <= actual <= hi:
            covered += 1
        abs_err += abs(predicted - actual)
        signed_err += predicted - actual
    return {
        "predictions": n,
        "cold_predictions": cold,
        "covered": covered,
        "coverage": covered / n if n else None,
        "target": CI_TARGET,
        "mean_abs_error_seconds": abs_err / n if n else None,
        "mean_signed_error_seconds": signed_err / n if n else None,
    }


# -- regret vs the hindsight oracle ------------------------------------
def oracle_replay(rows: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Cumulative regret of the gate vs a hindsight oracle.

    The oracle re-prices every recorded gate decision with models fit
    on *all* measured outcomes in the ledger -- the beta slope refit
    over every (bottleneck work, iteration seconds) pair and the
    measured mean migration cost -- instead of the partial-information
    models the live gate had.  Each decision where the oracle's action
    differs is charged regret equal to the oracle's payoff/cost margin:
    the seconds the run left on the table by deciding early.
    """
    from repro.learn.policy import LearnConfig, RepartitionGate

    rows = list(rows)
    beta_model = OnlineLinearModel(min_points=3)
    migration_model = OnlineMeanModel(min_points=2)
    for row in rows:
        kind = row.get("kind")
        if kind == "prediction":
            x = decode_float(row.get("x"))
            actual = decode_float(row.get("actual"))
            if x is not None and actual is not None:
                beta_model.observe(x, actual)
        elif kind == "outcome" and row.get("phase") == "migrate":
            seconds = decode_float(row.get("seconds"))
            if seconds is not None:
                migration_model.observe(seconds)
    hindsight_beta = (
        beta_model.slope
        if not beta_model.is_cold and beta_model.slope > 0.0
        else None
    )
    hindsight_migration = (
        migration_model.mean if not migration_model.is_cold else None
    )

    decisions = disagreements = 0
    regret = 0.0
    per_decision: list[dict[str, Any]] = []
    for row in rows:
        if row.get("kind") != "gate":
            continue
        decisions += 1
        gate = RepartitionGate(
            LearnConfig(gate_safety=float(row["gate_safety"]))
        )
        oracle = gate.decide(
            loads=np.asarray(row["loads"], dtype=float),
            capacities=np.asarray(row["capacities"], dtype=float),
            horizon_iters=int(row["horizon_iters"]),
            beta=hindsight_beta,
            migration_seconds=hindsight_migration,
        )
        recorded_action = bool(row["repartition"])
        agree = oracle.repartition == recorded_action
        margin = 0.0
        if not agree:
            disagreements += 1
            # The oracle's own conviction: how far its payoff sat from
            # its cost.  A cold oracle (infinite payoff) cannot price
            # regret, but a cold oracle also always repartitions --
            # matching the live gate's cold fallback -- so a cold
            # disagreement only arises against a warm recorded skip.
            if math.isfinite(oracle.payoff_seconds):
                margin = abs(oracle.payoff_seconds - oracle.cost_seconds)
            regret += margin
        per_decision.append(
            {
                "seq": int(row["seq"]),
                "recorded": recorded_action,
                "oracle": oracle.repartition,
                "agree": agree,
                "regret_seconds": margin,
            }
        )
    return {
        "decisions": decisions,
        "disagreements": disagreements,
        "agreement_rate": (
            (decisions - disagreements) / decisions if decisions else None
        ),
        "cumulative_regret_seconds": regret,
        "oracle_beta": hindsight_beta,
        "oracle_migration_seconds": hindsight_migration,
        "per_decision": per_decision,
    }


# -- forecast scoring --------------------------------------------------
def _forecast_error(rows: list[dict[str, Any]]) -> dict[str, Any]:
    """Join each capacity forecast against the nearest later probe."""
    senses = [
        (float(decode_float(r["t"]) or 0.0), r)
        for r in rows
        if r.get("kind") == "outcome" and r.get("phase") == "sense"
    ]
    senses.sort(key=lambda item: item[0])
    times = [t for t, _ in senses]
    joined = 0
    abs_err = 0.0
    forecasts = 0
    for row in rows:
        if row.get("kind") != "forecast":
            continue
        forecasts += 1
        target_t = decode_float(row.get("target_t"))
        predicted = row.get("predicted")
        if target_t is None or not predicted:
            continue
        idx = int(np.searchsorted(times, target_t))
        if idx >= len(senses):
            continue  # horizon never elapsed: nothing to score against
        measured = senses[idx][1].get("capacities")
        if not measured or len(measured) != len(predicted):
            continue
        p = np.asarray([decode_float(v) for v in predicted], dtype=float)
        m = np.asarray([decode_float(v) for v in measured], dtype=float)
        abs_err += float(np.abs(p - m).mean())
        joined += 1
    return {
        "forecasts": forecasts,
        "scored": joined,
        "mean_abs_error": abs_err / joined if joined else None,
    }


# -- the full reconciliation -------------------------------------------
def reconcile(rows: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Close the predict->measure loop over one ledger's rows.

    Accepts any iterable of decision-record dicts -- a
    :class:`DecisionLedger`'s rows or ``decision.*`` trace events
    mapped back to records -- so the CLI, the HTTP layer and the
    dashboard all compute the *same* numbers from the same joins.
    """
    rows = list(rows)
    counts: dict[str, int] = {}
    for row in rows:
        kind = str(row.get("kind", "?"))
        counts[kind] = counts.get(kind, 0) + 1
    gates = [r for r in rows if r.get("kind") == "gate"]
    accepts = sum(1 for r in gates if r.get("repartition"))
    reasons: dict[str, int] = {}
    for r in gates:
        reason = str(r.get("reason", "?"))
        reasons[reason] = reasons.get(reason, 0) + 1
    return {
        "records": len(rows),
        "counts": counts,
        "gate": {
            "decisions": len(gates),
            "accepts": accepts,
            "skips": len(gates) - accepts,
            "reasons": reasons,
        },
        "calibration": calibration(rows),
        "regret": oracle_replay(rows),
        "forecast": _forecast_error(rows),
    }
