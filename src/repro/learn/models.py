"""Least-squares cost/capacity models fitted from execution history.

The monitor's forecasters (:mod:`repro.monitor.forecasting`) answer "what
will the *next measurement* be"; the models here answer the questions the
adaptive policies need priced:

- :class:`OnlineLinearModel` -- streaming ordinary least squares over
  ``y = intercept + slope * x`` with exact sufficient statistics and
  closed-form confidence intervals.  Every other model composes it.
- :class:`OnlineMeanModel` -- streaming mean/variance with a CI, for
  quantities with no useful regressor (migration cost per repartition,
  probe overhead per sweep).
- :class:`AmdahlCostModel` -- the per-phase, per-node execution model
  ``t(w, n) = serial(n) + w / capacity(n)``: one linear fit per node of
  phase time against work, whose slope is the node's inverse effective
  capacity and whose intercept is the phase's serial floor.
- :class:`TransientCapacityModel` -- per-node capacity *trend* over a
  sliding window of sensed relative capacities: instead of reacting to a
  load transient after it lands, predict where each node's capacity is
  heading and how fast the capacity vector is drifting.

Every model distinguishes **cold** from **fitted**: a cold model has too
few points (or a degenerate regressor) for its closed-form intervals to
mean anything, and callers are expected to fall back to the paper's
fixed-cadence behavior (see :mod:`repro.learn.policy`).  All models
update online -- one ``observe`` per event, O(1) or O(window) -- and
serialize losslessly (sufficient statistics are plain floats, which
round-trip exactly through JSON), so a model refit from its own
serialized form answers identically.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.util.errors import ExperimentError

__all__ = [
    "OnlineLinearModel",
    "OnlineMeanModel",
    "AmdahlCostModel",
    "TransientCapacityModel",
]

#: Two-sided normal quantile for the default 95 % confidence level.  The
#: closed-form intervals use the normal approximation above
#: ``_T_TABLE``'s range and a small-sample t table below it -- scipy is
#: available but a table keeps the module import-light and the values
#: bit-stable across scipy versions.
_Z95 = 1.959963984540054

#: Two-sided 95 % t quantiles for 1..30 degrees of freedom.
_T_TABLE = (
    12.706204736432095, 4.302652729911275, 3.1824463052842638,
    2.7764451051977987, 2.5705818366147395, 2.4469118511449666,
    2.3646242510102993, 2.3060041350333704, 2.2621571627409915,
    2.2281388519649385, 2.200985160082949, 2.1788128296634177,
    2.160368656461013, 2.1447866879169273, 2.131449545559323,
    2.1199052992210112, 2.1098155778331806, 2.100922040241039,
    2.0930240544082634, 2.0859634472658364, 2.0796138447276626,
    2.073873067904019, 2.0686576104190406, 2.0638985616280205,
    2.059538552753294, 2.055529438642871, 2.0518305164802833,
    2.048407141795244, 2.0452296421327034, 2.042272456301238,
)


def _t95(dof: int) -> float:
    """Two-sided 95 % t quantile (normal approximation for dof > 30)."""
    if dof < 1:
        return math.inf
    if dof <= len(_T_TABLE):
        return _T_TABLE[dof - 1]
    return _Z95


class OnlineLinearModel:
    """Streaming OLS fit of ``y = intercept + slope * x``.

    Maintains exact sufficient statistics (n, Σx, Σy, Σx², Σxy, Σy²), so
    fit parameters, predictions and confidence intervals are all closed
    form and the model is O(1) per observation.  ``min_points`` governs
    the cold/fitted boundary: below it (or with a degenerate regressor)
    :attr:`is_cold` is true and predictions fall back to the running mean
    of ``y`` with an infinite interval.
    """

    def __init__(self, min_points: int = 4):
        if min_points < 3:
            raise ExperimentError(
                f"linear model needs min_points >= 3, got {min_points}"
            )
        self.min_points = int(min_points)
        self.n = 0
        self.sx = 0.0
        self.sy = 0.0
        self.sxx = 0.0
        self.sxy = 0.0
        self.syy = 0.0

    # -- ingest --------------------------------------------------------
    def observe(self, x: float, y: float) -> None:
        x = float(x)
        y = float(y)
        if not (math.isfinite(x) and math.isfinite(y)):
            return  # a broken measurement must not poison the fit
        self.n += 1
        self.sx += x
        self.sy += y
        self.sxx += x * x
        self.sxy += x * y
        self.syy += y * y

    # -- fit state -----------------------------------------------------
    @property
    def _sxx_centered(self) -> float:
        if self.n == 0:
            return 0.0
        return self.sxx - self.sx * self.sx / self.n

    @property
    def is_cold(self) -> bool:
        """Too few points, or no spread in x, for the fit to be trusted."""
        if self.n < self.min_points:
            return True
        return self._sxx_centered <= 1e-12 * max(1.0, self.sxx)

    @property
    def slope(self) -> float:
        sxx = self._sxx_centered
        if self.n < 2 or sxx <= 0.0:
            return 0.0
        return (self.sxy - self.sx * self.sy / self.n) / sxx

    @property
    def intercept(self) -> float:
        if self.n == 0:
            return 0.0
        return (self.sy - self.slope * self.sx) / self.n

    def residual_variance(self) -> float:
        """Unbiased variance of the fit residuals (dof = n - 2)."""
        if self.n < 3:
            return math.inf
        syy_c = self.syy - self.sy * self.sy / self.n
        sxx_c = self._sxx_centered
        sxy_c = self.sxy - self.sx * self.sy / self.n
        if sxx_c <= 0.0:
            return math.inf
        ss_res = max(syy_c - sxy_c * sxy_c / sxx_c, 0.0)
        return ss_res / (self.n - 2)

    # -- inference -----------------------------------------------------
    def predict(self, x: float) -> float:
        """Mean response at ``x`` (running y-mean while cold)."""
        if self.is_cold:
            return self.sy / self.n if self.n else 0.0
        return self.intercept + self.slope * float(x)

    def predict_interval(self, x: float) -> tuple[float, float]:
        """95 % CI of the *mean response* at ``x`` (closed form)."""
        if self.is_cold:
            return (-math.inf, math.inf)
        x = float(x)
        var = self.residual_variance()
        sxx_c = self._sxx_centered
        mean_x = self.sx / self.n
        se = math.sqrt(var * (1.0 / self.n + (x - mean_x) ** 2 / sxx_c))
        yhat = self.predict(x)
        half = _t95(self.n - 2) * se
        return (yhat - half, yhat + half)

    def prediction_interval(self, x: float) -> tuple[float, float]:
        """95 % interval for one *new observation* at ``x``.

        Wider than :meth:`predict_interval` by the residual-variance
        term: the mean-response CI shrinks with n, but an individual
        outcome keeps its noise floor.  This is the interval whose
        coverage the decision-ledger calibration scores -- a
        well-calibrated model contains the truth ~95% of the time.
        """
        if self.is_cold:
            return (-math.inf, math.inf)
        x = float(x)
        var = self.residual_variance()
        sxx_c = self._sxx_centered
        mean_x = self.sx / self.n
        se = math.sqrt(
            var * (1.0 + 1.0 / self.n + (x - mean_x) ** 2 / sxx_c)
        )
        yhat = self.predict(x)
        half = _t95(self.n - 2) * se
        return (yhat - half, yhat + half)

    def slope_interval(self) -> tuple[float, float]:
        """95 % CI of the slope (closed form)."""
        if self.is_cold:
            return (-math.inf, math.inf)
        se = math.sqrt(self.residual_variance() / self._sxx_centered)
        half = _t95(self.n - 2) * se
        return (self.slope - half, self.slope + half)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "kind": "linear",
            "min_points": self.min_points,
            "n": self.n,
            "sx": self.sx,
            "sy": self.sy,
            "sxx": self.sxx,
            "sxy": self.sxy,
            "syy": self.syy,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OnlineLinearModel":
        model = cls(min_points=int(data.get("min_points", 4)))
        model.n = int(data["n"])
        model.sx = float(data["sx"])
        model.sy = float(data["sy"])
        model.sxx = float(data["sxx"])
        model.sxy = float(data["sxy"])
        model.syy = float(data["syy"])
        return model


class OnlineMeanModel:
    """Streaming mean/variance with a closed-form 95 % CI of the mean."""

    def __init__(self, min_points: int = 3):
        if min_points < 2:
            raise ExperimentError(
                f"mean model needs min_points >= 2, got {min_points}"
            )
        self.min_points = int(min_points)
        self.n = 0
        self.s = 0.0
        self.ss = 0.0

    def observe(self, y: float) -> None:
        y = float(y)
        if not math.isfinite(y):
            return
        self.n += 1
        self.s += y
        self.ss += y * y

    @property
    def is_cold(self) -> bool:
        return self.n < self.min_points

    @property
    def mean(self) -> float:
        return self.s / self.n if self.n else 0.0

    def variance(self) -> float:
        if self.n < 2:
            return math.inf
        return max(self.ss - self.s * self.s / self.n, 0.0) / (self.n - 1)

    def interval(self) -> tuple[float, float]:
        if self.is_cold:
            return (-math.inf, math.inf)
        half = _t95(self.n - 1) * math.sqrt(self.variance() / self.n)
        return (self.mean - half, self.mean + half)

    def to_dict(self) -> dict:
        return {
            "kind": "mean",
            "min_points": self.min_points,
            "n": self.n,
            "s": self.s,
            "ss": self.ss,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OnlineMeanModel":
        model = cls(min_points=int(data.get("min_points", 3)))
        model.n = int(data["n"])
        model.s = float(data["s"])
        model.ss = float(data["ss"])
        return model


class AmdahlCostModel:
    """Per-phase execution model ``t(w, n) = serial(n) + w / capacity(n)``.

    One :class:`OnlineLinearModel` per node regresses the phase's
    duration on the work units it processed; the fitted slope is the
    node's inverse effective capacity for this phase (seconds per work
    unit) and the intercept its Amdahl serial floor.  The model is the
    ARBO estimator pattern: fit from history, predict deliverable time
    per configuration, update online after every run.
    """

    def __init__(self, phase: str = "iteration", min_points: int = 4):
        self.phase = str(phase)
        self.min_points = int(min_points)
        self._nodes: dict[int, OnlineLinearModel] = {}

    def _node(self, node: int) -> OnlineLinearModel:
        model = self._nodes.get(int(node))
        if model is None:
            model = OnlineLinearModel(min_points=self.min_points)
            self._nodes[int(node)] = model
        return model

    def observe(self, node: int, work: float, seconds: float) -> None:
        self._node(node).observe(work, seconds)

    @property
    def nodes(self) -> tuple[int, ...]:
        return tuple(sorted(self._nodes))

    def is_cold(self, node: int | None = None) -> bool:
        """Whether ``node`` (or, with ``None``, every node) is unfitted."""
        if node is not None:
            model = self._nodes.get(int(node))
            return model is None or model.is_cold
        if not self._nodes:
            return True
        return any(m.is_cold for m in self._nodes.values())

    def predict(self, node: int, work: float) -> float:
        return self._node(node).predict(work)

    def predict_interval(self, node: int, work: float) -> tuple[float, float]:
        return self._node(node).predict_interval(work)

    def capacity(self, node: int) -> float:
        """Fitted work units per second on ``node`` (inf if free)."""
        slope = self._node(node).slope
        return 1.0 / slope if slope > 0.0 else math.inf

    def serial_seconds(self, node: int) -> float:
        return self._node(node).intercept

    def to_dict(self) -> dict:
        return {
            "kind": "amdahl",
            "phase": self.phase,
            "min_points": self.min_points,
            "nodes": {
                str(node): model.to_dict()
                for node, model in sorted(self._nodes.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AmdahlCostModel":
        model = cls(
            phase=str(data.get("phase", "iteration")),
            min_points=int(data.get("min_points", 4)),
        )
        for node, sub in data.get("nodes", {}).items():
            model._nodes[int(node)] = OnlineLinearModel.from_dict(sub)
        return model


class TransientCapacityModel:
    """Capacity *trend* per node over a sliding window of sensings.

    Each :meth:`observe` appends one sensed relative-capacity vector at a
    simulated time; the model fits, per node, a least-squares line
    through the window and exposes:

    - :meth:`predict` -- the capacity vector extrapolated to a future
      time, clipped to a small floor and renormalized (relative
      capacities stay a distribution);
    - :meth:`drift_rate` -- the largest per-node absolute capacity slope
      (fraction per simulated second), the signal the adaptive sensing
      policy converts into an interval;
    - :meth:`slope_interval` -- closed-form 95 % CI of one node's slope,
      so callers can tell a real transient from fit noise.

    A window shorter than ``min_points`` (or with no time spread) leaves
    the model cold; :meth:`predict` then degrades to the last observed
    vector, which is exactly the paper's react-to-last-probe behavior.
    """

    def __init__(
        self,
        num_nodes: int,
        window: int = 12,
        min_points: int = 4,
        floor: float = 1e-3,
    ):
        if num_nodes < 1:
            raise ExperimentError(f"num_nodes must be >= 1, got {num_nodes}")
        if window < 2:
            raise ExperimentError(f"window must be >= 2, got {window}")
        if min_points < 3:
            raise ExperimentError(
                f"min_points must be >= 3, got {min_points}"
            )
        self.num_nodes = int(num_nodes)
        self.window = int(window)
        self.min_points = int(min_points)
        self.floor = float(floor)
        self._times: deque[float] = deque(maxlen=self.window)
        self._caps: deque[tuple[float, ...]] = deque(maxlen=self.window)

    def observe(self, t: float, capacities) -> None:
        caps = np.asarray(capacities, dtype=float)
        if caps.shape != (self.num_nodes,):
            raise ExperimentError(
                f"capacity vector has shape {caps.shape}, expected "
                f"({self.num_nodes},)"
            )
        if not (math.isfinite(float(t)) and np.isfinite(caps).all()):
            return
        self._times.append(float(t))
        self._caps.append(tuple(float(c) for c in caps))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def is_cold(self) -> bool:
        if len(self._times) < self.min_points:
            return True
        ts = np.asarray(self._times)
        return float(ts.max() - ts.min()) <= 0.0

    def _fit(self) -> tuple[np.ndarray, np.ndarray, float]:
        """(slopes, intercepts, t_mean) of the per-node window fits."""
        ts = np.asarray(self._times)
        caps = np.asarray(self._caps)
        t_mean = float(ts.mean())
        dev = ts - t_mean
        denom = float(dev @ dev)
        if denom <= 0.0:
            return (
                np.zeros(self.num_nodes),
                caps.mean(axis=0),
                t_mean,
            )
        slopes = dev @ (caps - caps.mean(axis=0)) / denom
        intercepts = caps.mean(axis=0)
        return slopes, intercepts, t_mean

    def last(self) -> np.ndarray | None:
        """Most recently observed capacity vector (None before any)."""
        if not self._caps:
            return None
        return np.asarray(self._caps[-1])

    def predict(self, t: float) -> np.ndarray | None:
        """Capacity vector extrapolated to time ``t`` (last vector while
        cold; ``None`` before any observation)."""
        if not self._caps:
            return None
        if self.is_cold:
            return self.last()
        slopes, intercepts, t_mean = self._fit()
        caps = intercepts + slopes * (float(t) - t_mean)
        caps = np.maximum(caps, self.floor)
        total = caps.sum()
        return caps / total if total > 0 else self.last()

    def drift_rate(self) -> float:
        """Largest per-node |capacity slope| (fraction per sim second)."""
        if self.is_cold:
            return 0.0
        slopes, _, _ = self._fit()
        return float(np.abs(slopes).max())

    def slope_interval(self, node: int) -> tuple[float, float]:
        """95 % CI of one node's capacity slope (closed form)."""
        if not 0 <= node < self.num_nodes:
            raise ExperimentError(f"unknown node index {node}")
        if self.is_cold:
            return (-math.inf, math.inf)
        ts = np.asarray(self._times)
        caps = np.asarray(self._caps)[:, node]
        n = len(ts)
        if n < 3:
            return (-math.inf, math.inf)
        dev = ts - ts.mean()
        sxx = float(dev @ dev)
        slope = float(dev @ (caps - caps.mean())) / sxx
        resid = caps - caps.mean() - slope * dev
        var = float(resid @ resid) / (n - 2)
        se = math.sqrt(var / sxx)
        half = _t95(n - 2) * se
        return (slope - half, slope + half)

    def to_dict(self) -> dict:
        return {
            "kind": "transient",
            "num_nodes": self.num_nodes,
            "window": self.window,
            "min_points": self.min_points,
            "floor": self.floor,
            "times": list(self._times),
            "caps": [list(row) for row in self._caps],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TransientCapacityModel":
        model = cls(
            num_nodes=int(data["num_nodes"]),
            window=int(data.get("window", 12)),
            min_points=int(data.get("min_points", 4)),
            floor=float(data.get("floor", 1e-3)),
        )
        for t, caps in zip(data.get("times", ()), data.get("caps", ())):
            model._times.append(float(t))
            model._caps.append(tuple(float(c) for c in caps))
        return model
