"""Learned cost models and predictive partitioning policies.

The decision-making layer on top of the observability stack: an
execution-history store (:mod:`repro.learn.history`), least-squares
cost/capacity models fitted from it (:mod:`repro.learn.models`), and the
adaptive sensing + payoff-gated repartitioning policies that replace the
paper's hand-tuned constants (:mod:`repro.learn.policy`).
"""

from repro.learn.history import ExecutionHistoryStore
from repro.learn.models import (
    AmdahlCostModel,
    OnlineLinearModel,
    OnlineMeanModel,
    TransientCapacityModel,
)
from repro.learn.policy import (
    NULL_LEARNER,
    AdaptiveSensingPolicy,
    GateDecision,
    LearnConfig,
    LearnController,
    NullLearner,
    RepartitionGate,
)

__all__ = [
    "ExecutionHistoryStore",
    "OnlineLinearModel",
    "OnlineMeanModel",
    "AmdahlCostModel",
    "TransientCapacityModel",
    "LearnConfig",
    "AdaptiveSensingPolicy",
    "GateDecision",
    "RepartitionGate",
    "LearnController",
    "NullLearner",
    "NULL_LEARNER",
]
