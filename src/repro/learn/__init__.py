"""Learned cost models and predictive partitioning policies.

The decision-making layer on top of the observability stack: an
execution-history store (:mod:`repro.learn.history`), least-squares
cost/capacity models fitted from it (:mod:`repro.learn.models`), the
adaptive sensing + payoff-gated repartitioning policies that replace the
paper's hand-tuned constants (:mod:`repro.learn.policy`), and the
decision-provenance ledger + reconciliation engine that audits them
after the fact (:mod:`repro.learn.audit`).
"""

from repro.learn.audit import (
    DecisionLedger,
    calibration,
    decode_float,
    encode_float,
    load_ledger_rows,
    oracle_replay,
    reconcile,
    replay_decision,
    verify_decision,
)
from repro.learn.history import ExecutionHistoryStore
from repro.learn.models import (
    AmdahlCostModel,
    OnlineLinearModel,
    OnlineMeanModel,
    TransientCapacityModel,
)
from repro.learn.policy import (
    NULL_LEARNER,
    AdaptiveSensingPolicy,
    GateDecision,
    LearnConfig,
    LearnController,
    NullLearner,
    RepartitionGate,
)

__all__ = [
    "ExecutionHistoryStore",
    "OnlineLinearModel",
    "OnlineMeanModel",
    "AmdahlCostModel",
    "TransientCapacityModel",
    "LearnConfig",
    "AdaptiveSensingPolicy",
    "GateDecision",
    "RepartitionGate",
    "LearnController",
    "NullLearner",
    "NULL_LEARNER",
    "DecisionLedger",
    "encode_float",
    "decode_float",
    "load_ledger_rows",
    "replay_decision",
    "verify_decision",
    "calibration",
    "oracle_replay",
    "reconcile",
]
