"""Append-only execution-history store feeding the learned cost models.

Every adaptive decision in :mod:`repro.learn.policy` is only as good as
the history behind it, so the store borrows the campaign
:class:`~repro.campaign.store.ResultStore` durability discipline
wholesale:

- appends go to ``history.jsonl`` and are **fsynced** before the call
  returns -- a crash never loses an acknowledged observation;
- reads tolerate a **torn tail** (a partial line from a crash
  mid-append parses as garbage and is dropped, never raised);
- an ``index.json`` sidecar records the exact ``(records, bytes)``
  high-water mark and is published atomically (tmp + rename), so a
  reopened store resumes from byte-identical state: the trusted prefix
  is replayed verbatim and only unindexed bytes are re-validated.

Rows are flat observations -- one ``(source, cell_key, phase, node, t,
work, seconds, capacity, count)`` tuple per line -- ingested from three
places: live runs (the :class:`~repro.learn.policy.LearnController`
records per-node iteration timings as they happen), campaign telemetry
digests, and the per-cell ``artifacts/<cell-key>/profile.json`` bundles
PR 7 writes.  In memory the store is columnar: numeric columns are
numpy arrays, so model fitting and queries are vectorized scans, not
row loops.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Iterator

import numpy as np

from repro.util.errors import ExperimentError

__all__ = ["ExecutionHistoryStore", "HISTORY_NAME", "INDEX_NAME"]

#: Append log and exact-resume index file names inside a store directory.
HISTORY_NAME = "history.jsonl"
INDEX_NAME = "index.json"

#: Store format version stamped into the index.
HISTORY_SCHEMA_VERSION = 1

#: Row fields, in canonical serialization order.  ``t`` is simulated
#: seconds; ``node`` is -1 for rows that aggregate across nodes.
_FIELDS = (
    "seq",
    "source",
    "cell_key",
    "phase",
    "node",
    "t",
    "work",
    "seconds",
    "capacity",
    "count",
)

_NUMERIC = {
    "seq": np.int64,
    "node": np.int64,
    "t": np.float64,
    "work": np.float64,
    "seconds": np.float64,
    "capacity": np.float64,
    "count": np.int64,
}


def _encode(row: dict[str, Any]) -> str:
    return json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"


class ExecutionHistoryStore:
    """Durable, columnar store of per-phase execution observations."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.history_path = self.directory / HISTORY_NAME
        self.index_path = self.directory / INDEX_NAME
        self._rows: list[dict[str, Any]] = []
        self._sources: set[str] = set()
        self._trusted_bytes = 0
        self._columns: dict[str, np.ndarray] | None = None
        self._load()

    # -- load / resume -------------------------------------------------
    def _read_index(self) -> dict[str, int] | None:
        if not self.index_path.is_file():
            return None
        try:
            data = json.loads(self.index_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(data, dict):
            return None
        try:
            return {
                "records": int(data["records"]),
                "bytes": int(data["bytes"]),
            }
        except (KeyError, TypeError, ValueError):
            return None

    def _parse_lines(self, data: bytes) -> Iterator[dict[str, Any]]:
        for line in data.split(b"\n"):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                # Torn tail from a crash mid-append: the observation was
                # never acknowledged (fsync happens before the caller
                # returns), so dropping it is the correct resume.
                continue
            if isinstance(row, dict) and "phase" in row:
                yield row

    def _load(self) -> None:
        if not self.history_path.is_file():
            return
        data = self.history_path.read_bytes()
        tail_start = data.rfind(b"\n") + 1
        if tail_start < len(data):
            # Torn final line from a crash mid-append: the writer never
            # acknowledged that row (fsync precedes the return), so
            # physically truncate it -- appending after the torn bytes
            # would otherwise weld the next acknowledged row onto them.
            with open(self.history_path, "r+b") as fh:
                fh.truncate(tail_start)
                fh.flush()
                os.fsync(fh.fileno())
            data = data[:tail_start]
        index = self._read_index()
        trusted = 0
        if index is not None and 0 <= index["bytes"] <= len(data):
            # Exact resume: replay the indexed prefix verbatim, then
            # re-validate only bytes appended after the last checkpoint.
            prefix = list(self._parse_lines(data[: index["bytes"]]))
            if len(prefix) == index["records"]:
                trusted = index["bytes"]
                self._rows.extend(prefix)
        if trusted == 0:
            self._rows = list(self._parse_lines(data))
            # Everything parseable was absorbed; trust up to the last
            # newline so the next checkpoint covers the whole file.
            trusted = data.rfind(b"\n") + 1
        else:
            self._rows.extend(self._parse_lines(data[trusted:]))
            tail_end = data.rfind(b"\n") + 1
            trusted = max(trusted, tail_end)
        self._trusted_bytes = trusted
        for row in self._rows:
            self._renumber(row)
            if row.get("cell_key"):
                self._sources.add(str(row["cell_key"]))

    def _renumber(self, row: dict[str, Any]) -> None:
        row["seq"] = int(row.get("seq", len(self._rows)))

    def checkpoint(self) -> None:
        """Atomically publish the exact-resume index."""
        doc = {
            "schema_version": HISTORY_SCHEMA_VERSION,
            "records": len(self._rows),
            "bytes": self._trusted_bytes,
        }
        tmp = self.index_path.with_name(self.index_path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(self.index_path)

    # -- ingest --------------------------------------------------------
    def record(
        self,
        *,
        source: str,
        phase: str,
        seconds: float,
        node: int = -1,
        t: float = 0.0,
        work: float = 0.0,
        capacity: float = float("nan"),
        count: int = 1,
        cell_key: str = "",
    ) -> dict[str, Any]:
        """Durably append one observation; returns the stored row."""
        if not phase:
            raise ExperimentError("history row needs a non-empty phase")
        row = {
            "seq": len(self._rows),
            "source": str(source),
            "cell_key": str(cell_key),
            "phase": str(phase),
            "node": int(node),
            "t": float(t),
            "work": float(work),
            "seconds": float(seconds),
            "capacity": float(capacity),
            "count": int(count),
        }
        encoded = _encode(row)
        with open(self.history_path, "a", encoding="utf-8") as fh:
            fh.write(encoded)
            fh.flush()
            os.fsync(fh.fileno())
        self._trusted_bytes = self.history_path.stat().st_size
        self._rows.append(row)
        if row["cell_key"]:
            self._sources.add(row["cell_key"])
        self._columns = None
        return row

    def ingest_digest(self, digest: Any) -> int:
        """Ingest a :class:`~repro.telemetry.live.TelemetryDigest`.

        One row per phase (aggregate across nodes), stamped with the
        cell key so re-ingestion is idempotent.  Returns rows added.
        """
        cell_key = str(getattr(digest, "cell_key", "") or "")
        if cell_key and cell_key in self._sources:
            return 0
        added = 0
        sim_seconds = float(getattr(digest, "sim_seconds", 0.0))
        for phase, seconds in sorted(getattr(digest, "phases", {}).items()):
            self.record(
                source="digest",
                cell_key=cell_key,
                phase=phase,
                seconds=float(seconds),
                t=sim_seconds,
            )
            added += 1
        if added:
            self.checkpoint()
        return added

    def ingest_profile(
        self, profile: dict[str, Any], cell_key: str | None = None
    ) -> int:
        """Ingest one artifact-bundle ``profile.json`` document."""
        key = str(cell_key or profile.get("cell_key") or "")
        if key and key in self._sources:
            return 0
        metrics = profile.get("metrics", {})
        counters = metrics.get("counters", {})
        sim_seconds = float(counters.get("total_sim_seconds", 0.0))
        added = 0
        phases = profile.get("phases", {})
        if not isinstance(phases, dict):
            raise ExperimentError("profile document has no phases table")
        for phase, agg in sorted(phases.items()):
            self.record(
                source="profile",
                cell_key=key,
                phase=str(phase),
                seconds=float(agg.get("sim_seconds", 0.0)),
                count=int(agg.get("count", 1)),
                t=sim_seconds,
            )
            added += 1
        if added:
            self.checkpoint()
        return added

    def ingest_artifacts(self, campaign_dir: str | Path) -> int:
        """Ingest every ``artifacts/<cell-key>/profile.json`` bundle."""
        root = Path(campaign_dir)
        artifacts = root / "artifacts"
        if not artifacts.is_dir():
            raise ExperimentError(
                f"no artifacts/ directory under {root}"
            )
        added = 0
        for profile_path in sorted(artifacts.glob("*/profile.json")):
            try:
                doc = json.loads(profile_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue  # a half-published bundle is not history
            if not isinstance(doc, dict):
                continue
            added += self.ingest_profile(
                doc, cell_key=profile_path.parent.name
            )
        return added

    # -- queries -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def sources(self) -> tuple[str, ...]:
        return tuple(sorted(self._sources))

    def phases(self) -> tuple[str, ...]:
        return tuple(sorted({row["phase"] for row in self._rows}))

    def table(self) -> dict[str, np.ndarray]:
        """The full store as a columnar table (numpy per column)."""
        if self._columns is None:
            cols: dict[str, np.ndarray] = {}
            for name in _FIELDS:
                values = [row.get(name) for row in self._rows]
                dtype = _NUMERIC.get(name)
                if dtype is not None:
                    cols[name] = np.asarray(
                        [v if v is not None else -1 for v in values],
                        dtype=dtype,
                    )
                else:
                    cols[name] = np.asarray(
                        [str(v or "") for v in values], dtype=object
                    )
            self._columns = cols
        return self._columns

    def column(self, name: str) -> np.ndarray:
        if name not in _FIELDS:
            raise ExperimentError(f"unknown history column {name!r}")
        return self.table()[name]

    def query(
        self,
        *,
        source: str | None = None,
        phase: str | None = None,
        node: int | None = None,
        cell_key: str | None = None,
    ) -> dict[str, np.ndarray]:
        """Filtered columnar view (one vectorized mask, no row loop)."""
        table = self.table()
        n = len(self._rows)
        mask = np.ones(n, dtype=bool)
        if source is not None:
            mask &= table["source"] == source
        if phase is not None:
            mask &= table["phase"] == phase
        if node is not None:
            mask &= table["node"] == int(node)
        if cell_key is not None:
            mask &= table["cell_key"] == cell_key
        return {name: col[mask] for name, col in table.items()}

    def work_series(
        self, phase: str, node: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """(work, seconds) pairs for one phase on one node."""
        view = self.query(phase=phase, node=node)
        return view["work"], view["seconds"]

    def iter_rows(self) -> Iterable[dict[str, Any]]:
        return iter(self._rows)
