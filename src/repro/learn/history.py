"""Append-only execution-history store feeding the learned cost models.

Every adaptive decision in :mod:`repro.learn.policy` is only as good as
the history behind it, so the store borrows the campaign
:class:`~repro.campaign.store.ResultStore` durability discipline
wholesale via the shared :class:`~repro.learn.durable.DurableJsonlStore`
base (the decision ledger in :mod:`repro.learn.audit` rides the same
machinery):

- appends go to ``history.jsonl`` and are **fsynced** before the call
  returns -- a crash never loses an acknowledged observation;
- reads tolerate a **torn tail** (a partial line from a crash
  mid-append parses as garbage and is dropped, never raised);
- an ``index.json`` sidecar records the exact ``(records, bytes)``
  high-water mark and is published atomically (tmp + rename), so a
  reopened store resumes from byte-identical state: the trusted prefix
  is replayed verbatim and only unindexed bytes are re-validated.

Rows are flat observations -- one ``(source, cell_key, phase, node, t,
work, seconds, capacity, count)`` tuple per line -- ingested from three
places: live runs (the :class:`~repro.learn.policy.LearnController`
records per-node iteration timings as they happen), campaign telemetry
digests, and the per-cell ``artifacts/<cell-key>/profile.json`` bundles
PR 7 writes.  In memory the store is columnar: numeric columns are
numpy arrays, so model fitting and queries are vectorized scans, not
row loops.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.learn.durable import DurableJsonlStore
from repro.util.errors import ExperimentError

__all__ = ["ExecutionHistoryStore", "HISTORY_NAME", "INDEX_NAME"]

#: Append log and exact-resume index file names inside a store directory.
HISTORY_NAME = "history.jsonl"
INDEX_NAME = "index.json"

#: Store format version stamped into the index.
HISTORY_SCHEMA_VERSION = 1

#: Row fields, in canonical serialization order.  ``t`` is simulated
#: seconds; ``node`` is -1 for rows that aggregate across nodes.
_FIELDS = (
    "seq",
    "source",
    "cell_key",
    "phase",
    "node",
    "t",
    "work",
    "seconds",
    "capacity",
    "count",
)

_NUMERIC = {
    "seq": np.int64,
    "node": np.int64,
    "t": np.float64,
    "work": np.float64,
    "seconds": np.float64,
    "capacity": np.float64,
    "count": np.int64,
}


class ExecutionHistoryStore(DurableJsonlStore):
    """Durable, columnar store of per-phase execution observations."""

    DATA_NAME = HISTORY_NAME
    INDEX_NAME = INDEX_NAME
    SCHEMA_VERSION = HISTORY_SCHEMA_VERSION
    REQUIRED_KEY = "phase"

    def __init__(self, directory: str | Path):
        self._sources: set[str] = set()
        self._columns: dict[str, np.ndarray] | None = None
        super().__init__(directory)
        #: Back-compat alias for the append log (pre-extraction name).
        self.history_path = self.data_path

    def _absorb(self, row: dict[str, Any]) -> None:
        row["seq"] = int(row.get("seq", len(self._rows)))
        if row.get("cell_key"):
            self._sources.add(str(row["cell_key"]))
        self._columns = None

    # -- ingest --------------------------------------------------------
    def record(
        self,
        *,
        source: str,
        phase: str,
        seconds: float,
        node: int = -1,
        t: float = 0.0,
        work: float = 0.0,
        capacity: float = float("nan"),
        count: int = 1,
        cell_key: str = "",
    ) -> dict[str, Any]:
        """Durably append one observation; returns the stored row."""
        if not phase:
            raise ExperimentError("history row needs a non-empty phase")
        row = {
            "seq": len(self._rows),
            "source": str(source),
            "cell_key": str(cell_key),
            "phase": str(phase),
            "node": int(node),
            "t": float(t),
            "work": float(work),
            "seconds": float(seconds),
            "capacity": float(capacity),
            "count": int(count),
        }
        return self._append_row(row)

    def ingest_digest(self, digest: Any) -> int:
        """Ingest a :class:`~repro.telemetry.live.TelemetryDigest`.

        One row per phase (aggregate across nodes), stamped with the
        cell key so re-ingestion is idempotent.  Returns rows added.
        """
        cell_key = str(getattr(digest, "cell_key", "") or "")
        if cell_key and cell_key in self._sources:
            return 0
        added = 0
        sim_seconds = float(getattr(digest, "sim_seconds", 0.0))
        for phase, seconds in sorted(getattr(digest, "phases", {}).items()):
            self.record(
                source="digest",
                cell_key=cell_key,
                phase=phase,
                seconds=float(seconds),
                t=sim_seconds,
            )
            added += 1
        if added:
            self.checkpoint()
        return added

    def ingest_profile(
        self, profile: dict[str, Any], cell_key: str | None = None
    ) -> int:
        """Ingest one artifact-bundle ``profile.json`` document."""
        key = str(cell_key or profile.get("cell_key") or "")
        if key and key in self._sources:
            return 0
        metrics = profile.get("metrics", {})
        counters = metrics.get("counters", {})
        sim_seconds = float(counters.get("total_sim_seconds", 0.0))
        added = 0
        phases = profile.get("phases", {})
        if not isinstance(phases, dict):
            raise ExperimentError("profile document has no phases table")
        for phase, agg in sorted(phases.items()):
            self.record(
                source="profile",
                cell_key=key,
                phase=str(phase),
                seconds=float(agg.get("sim_seconds", 0.0)),
                count=int(agg.get("count", 1)),
                t=sim_seconds,
            )
            added += 1
        if added:
            self.checkpoint()
        return added

    def ingest_artifacts(self, campaign_dir: str | Path) -> int:
        """Ingest every ``artifacts/<cell-key>/profile.json`` bundle."""
        root = Path(campaign_dir)
        artifacts = root / "artifacts"
        if not artifacts.is_dir():
            raise ExperimentError(
                f"no artifacts/ directory under {root}"
            )
        added = 0
        for profile_path in sorted(artifacts.glob("*/profile.json")):
            try:
                doc = json.loads(profile_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue  # a half-published bundle is not history
            if not isinstance(doc, dict):
                continue
            added += self.ingest_profile(
                doc, cell_key=profile_path.parent.name
            )
        return added

    # -- queries -------------------------------------------------------
    def sources(self) -> tuple[str, ...]:
        return tuple(sorted(self._sources))

    def phases(self) -> tuple[str, ...]:
        return tuple(sorted({row["phase"] for row in self._rows}))

    def table(self) -> dict[str, np.ndarray]:
        """The full store as a columnar table (numpy per column)."""
        if self._columns is None:
            cols: dict[str, np.ndarray] = {}
            for name in _FIELDS:
                values = [row.get(name) for row in self._rows]
                dtype = _NUMERIC.get(name)
                if dtype is not None:
                    cols[name] = np.asarray(
                        [v if v is not None else -1 for v in values],
                        dtype=dtype,
                    )
                else:
                    cols[name] = np.asarray(
                        [str(v or "") for v in values], dtype=object
                    )
            self._columns = cols
        return self._columns

    def column(self, name: str) -> np.ndarray:
        if name not in _FIELDS:
            raise ExperimentError(f"unknown history column {name!r}")
        return self.table()[name]

    def query(
        self,
        *,
        source: str | None = None,
        phase: str | None = None,
        node: int | None = None,
        cell_key: str | None = None,
    ) -> dict[str, np.ndarray]:
        """Filtered columnar view (one vectorized mask, no row loop)."""
        table = self.table()
        n = len(self._rows)
        mask = np.ones(n, dtype=bool)
        if source is not None:
            mask &= table["source"] == source
        if phase is not None:
            mask &= table["phase"] == phase
        if node is not None:
            mask &= table["node"] == int(node)
        if cell_key is not None:
            mask &= table["cell_key"] == cell_key
        return {name: col[mask] for name, col in table.items()}

    def work_series(
        self, phase: str, node: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """(work, seconds) pairs for one phase on one node."""
        view = self.query(phase=phase, node=node)
        return view["work"], view["seconds"]
