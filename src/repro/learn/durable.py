"""Shared durability discipline for append-only JSONL stores.

Extracted from :class:`~repro.learn.history.ExecutionHistoryStore` so
the decision ledger (:mod:`repro.learn.audit`) inherits the exact same
crash-safety contract instead of re-implementing it:

- appends go to a single JSONL file and are **fsynced** before the call
  returns -- a crash never loses an acknowledged row;
- loads tolerate a **torn tail**: a partial final line from a crash
  mid-append was never acknowledged, so it is physically truncated
  (appending after torn bytes would weld the next acknowledged row onto
  them);
- an ``index.json`` sidecar records the exact ``(records, bytes)``
  high-water mark and is published atomically (tmp + rename), so a
  reopened store resumes from byte-identical state: the trusted prefix
  replays verbatim and only unindexed bytes are re-validated.

Subclasses set the class attributes (file names, schema version, the
key a parsed dict must carry to count as a row) and may override
:meth:`_absorb` to index rows as they are adopted.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = ["DurableJsonlStore", "encode_row"]


def encode_row(row: dict[str, Any]) -> str:
    """Canonical one-line serialization (sorted keys, compact)."""
    return json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"


class DurableJsonlStore:
    """Fsynced append-only JSONL store with torn-tail exact resume."""

    #: Append-log file name inside the store directory.
    DATA_NAME = "data.jsonl"
    #: Exact-resume index sidecar name.
    INDEX_NAME = "index.json"
    #: Format version stamped into the index.
    SCHEMA_VERSION = 1
    #: A parsed dict must carry this key to be adopted as a row.
    REQUIRED_KEY = ""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.data_path = self.directory / self.DATA_NAME
        self.index_path = self.directory / self.INDEX_NAME
        self._rows: list[dict[str, Any]] = []
        self._trusted_bytes = 0
        self._load()
        for row in self._rows:
            self._absorb(row)

    # -- hooks ---------------------------------------------------------
    def _absorb(self, row: dict[str, Any]) -> None:
        """Index one adopted row (loaded or appended).  Default: no-op."""

    # -- load / resume -------------------------------------------------
    def _read_index(self) -> dict[str, int] | None:
        if not self.index_path.is_file():
            return None
        try:
            data = json.loads(self.index_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(data, dict):
            return None
        try:
            return {
                "records": int(data["records"]),
                "bytes": int(data["bytes"]),
            }
        except (KeyError, TypeError, ValueError):
            return None

    def _parse_lines(self, data: bytes) -> Iterator[dict[str, Any]]:
        for line in data.split(b"\n"):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                # Torn tail from a crash mid-append: the row was never
                # acknowledged (fsync happens before the caller
                # returns), so dropping it is the correct resume.
                continue
            if isinstance(row, dict) and self.REQUIRED_KEY in row:
                yield row

    def _load(self) -> None:
        if not self.data_path.is_file():
            return
        data = self.data_path.read_bytes()
        tail_start = data.rfind(b"\n") + 1
        if tail_start < len(data):
            # Physically truncate the torn final line before anything
            # else appends after it.
            with open(self.data_path, "r+b") as fh:
                fh.truncate(tail_start)
                fh.flush()
                os.fsync(fh.fileno())
            data = data[:tail_start]
        index = self._read_index()
        trusted = 0
        if index is not None and 0 <= index["bytes"] <= len(data):
            # Exact resume: replay the indexed prefix verbatim, then
            # re-validate only bytes appended after the last checkpoint.
            prefix = list(self._parse_lines(data[: index["bytes"]]))
            if len(prefix) == index["records"]:
                trusted = index["bytes"]
                self._rows.extend(prefix)
        if trusted == 0:
            self._rows = list(self._parse_lines(data))
            # Everything parseable was absorbed; trust up to the last
            # newline so the next checkpoint covers the whole file.
            trusted = data.rfind(b"\n") + 1
        else:
            self._rows.extend(self._parse_lines(data[trusted:]))
            tail_end = data.rfind(b"\n") + 1
            trusted = max(trusted, tail_end)
        self._trusted_bytes = trusted

    def checkpoint(self) -> None:
        """Atomically publish the exact-resume index."""
        doc = {
            "schema_version": self.SCHEMA_VERSION,
            "records": len(self._rows),
            "bytes": self._trusted_bytes,
        }
        tmp = self.index_path.with_name(self.index_path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(self.index_path)

    # -- append --------------------------------------------------------
    def _append_row(self, row: dict[str, Any]) -> dict[str, Any]:
        """Durably append one row: write, flush, fsync, then adopt."""
        encoded = encode_row(row)
        with open(self.data_path, "a", encoding="utf-8") as fh:
            fh.write(encoded)
            fh.flush()
            os.fsync(fh.fileno())
        self._trusted_bytes = self.data_path.stat().st_size
        self._rows.append(row)
        self._absorb(row)
        return row

    # -- queries -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def iter_rows(self) -> Iterable[dict[str, Any]]:
        return iter(self._rows)
