"""The kernel protocol: what an application must provide to run on the AMR
substrate.

A kernel is a *local* numerical method: it owns the physics (initial
condition, flux/stencil update, stability bound, refinement criterion) and
never sees the hierarchy -- the integrator hands it one patch-sized array at
a time, ghost cells already filled.  This is the same division of labour as
GrACE's "method-specific computations" layer over the data-management
substrate.

Array convention: field data has shape ``(num_fields, *spatial)``; spatial
extents include ``ghost_width`` cells on every side when passed to
:meth:`AmrKernel.step`.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.util.geometry import Box

__all__ = ["AmrKernel"]


class AmrKernel(abc.ABC):
    """Abstract base for AMR application kernels.

    Concrete kernels (Richtmyer-Meshkov hydrodynamics, Buckley-Leverett
    transport, scalar advection) subclass this; the Berger-Oliger
    integrator and the regridder consume it.
    """

    #: number of conserved/evolved fields
    num_fields: int = 1
    #: spatial dimensionality the kernel is written for
    ndim: int = 2
    #: stencil radius: ghost cells required on each side per step
    ghost_width: int = 1
    #: boundary condition at the physical domain edge: "periodic"|"outflow"
    boundary: str = "periodic"

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def initial_condition(self, box: Box, dx: float) -> np.ndarray:
        """Field data for ``box`` (interior only, no ghosts).

        ``dx`` is the cell width on the box's level; cell centers sit at
        ``(i + 0.5) * dx`` in level coordinates.
        """

    @abc.abstractmethod
    def step(self, u: np.ndarray, dt: float, dx: float) -> np.ndarray:
        """Advance ``u`` (with ghosts filled) by ``dt``; returns the updated
        array of the same shape.  Only the interior of the result is kept;
        ghost values in the return are ignored."""

    @abc.abstractmethod
    def error_indicator(self, u: np.ndarray, dx: float) -> np.ndarray:
        """Per-cell scalar refinement indicator for interior data ``u``
        (shape ``(num_fields, *spatial)`` -> ``spatial``).  Cells whose
        indicator exceeds the regridder's threshold get flagged."""

    @abc.abstractmethod
    def max_wave_speed(self, u: np.ndarray) -> float:
        """Fastest signal speed in ``u``; used for the CFL time-step bound."""

    # ------------------------------------------------------------------
    def stable_dt(self, u: np.ndarray, dx: float, cfl: float = 0.4) -> float:
        """CFL-limited time step for data ``u`` at spacing ``dx``."""
        speed = self.max_wave_speed(u)
        if speed <= 0:
            return float("inf")
        return cfl * dx / speed

    def validate(self) -> None:
        """Sanity-check the static attributes; raises ``ValueError``."""
        if self.num_fields < 1:
            raise ValueError(f"num_fields must be >= 1, got {self.num_fields}")
        if self.ndim not in (1, 2, 3):
            raise ValueError(f"ndim must be 1, 2 or 3, got {self.ndim}")
        if self.ghost_width < 1:
            raise ValueError(f"ghost_width must be >= 1, got {self.ghost_width}")
        if self.boundary not in ("periodic", "outflow"):
            raise ValueError(f"unknown boundary {self.boundary!r}")
