"""The regrid operation (paper section 3): flag, cluster, regenerate.

``regrid_hierarchy`` rebuilds every refinable level of a hierarchy:

1. **Flagging** -- each parent level's cells are tagged with the kernel's
   error criterion (:mod:`repro.amr.flagging`), buffered so features stay
   refined between regrids;
2. **Clustering** -- flagged cells are clustered into boxes with
   Berger-Rigoutsos (:mod:`repro.amr.clustering`);
3. **Grid generation** -- clustered boxes are refined one level and
   installed with :meth:`GridHierarchy.set_level_boxes`, which transfers
   data from the old grids (copy where footprints overlap, prolongation
   elsewhere).

Levels are processed finest-parent-first so that the footprint of level
``l+2`` can be folded into level ``l``'s flags, preserving proper nesting.
"""

from __future__ import annotations

import numpy as np

from repro.amr.clustering import berger_rigoutsos
from repro.amr.flagging import buffer_flags, flag_level
from repro.amr.hierarchy import GridHierarchy
from repro.util.geometry import Box, BoxList

__all__ = ["regrid_hierarchy", "RegridParams"]


class RegridParams:
    """Knobs of the regrid pipeline.

    Attributes
    ----------
    flag_threshold:
        Error-indicator value above which a cell is flagged.  Note the
        scale depends on the criterion: the kernel's gradient indicators
        are O(field range), Richardson estimates are O(truncation error).
    flag_buffer:
        Dilation (cells) applied to the flag mask.
    efficiency:
        Berger-Rigoutsos target flagged fraction per box.
    min_box_size:
        Minimum clustered box side (in parent-level cells).
    criterion:
        ``"gradient"`` -- the kernel's own error indicator (default) --
        or ``"richardson"`` -- Richardson-extrapolation truncation-error
        estimation (:func:`repro.amr.flagging.richardson_indicator`).
    """

    def __init__(
        self,
        flag_threshold: float = 0.1,
        flag_buffer: int = 1,
        efficiency: float = 0.7,
        min_box_size: int = 2,
        criterion: str = "gradient",
    ):
        if criterion not in ("gradient", "richardson"):
            raise ValueError(
                f"unknown criterion {criterion!r}; "
                "use 'gradient' or 'richardson'"
            )
        self.flag_threshold = flag_threshold
        self.flag_buffer = flag_buffer
        self.efficiency = efficiency
        self.min_box_size = min_box_size
        self.criterion = criterion


def _nesting_flags(
    hierarchy: GridHierarchy, parent_level: int, frame: Box, mask: np.ndarray
) -> np.ndarray:
    """Fold the (already regridded) level ``parent_level + 2`` footprint into
    ``mask`` so the new child level keeps covering its grandchildren."""
    grandchild = parent_level + 2
    if grandchild >= hierarchy.num_levels:
        return mask
    f = hierarchy.refine_factor
    out = mask.copy()
    for patch in hierarchy.levels[grandchild]:
        coarse = patch.box.coarsen(f).coarsen(f)  # down to parent level
        inter = coarse.intersection(frame)
        if inter is not None:
            out[inter.slices(origin=frame.lower)] = True
    return out


def regrid_hierarchy(
    hierarchy: GridHierarchy, params: RegridParams | None = None
) -> None:
    """Rebuild all refinable levels of ``hierarchy`` in place."""
    params = params or RegridParams()
    deepest_parent = min(hierarchy.num_levels - 1, hierarchy.max_levels - 2)
    for lvl in range(deepest_parent, -1, -1):
        _regrid_child_of(hierarchy, lvl, params)


def _regrid_child_of(
    hierarchy: GridHierarchy, parent: int, params: RegridParams
) -> None:
    from repro.amr.flagging import richardson_indicator
    from repro.amr.ghost import GhostFiller  # local import: regrid<->ghost

    child = parent + 1
    dx = hierarchy.cell_width(parent)
    indicator_fn = None
    if params.criterion == "richardson":
        indicator_fn = lambda data, d: richardson_indicator(  # noqa: E731
            hierarchy.kernel, data, d, factor=hierarchy.refine_factor
        )
    flagged = flag_level(
        hierarchy.kernel,
        hierarchy.levels[parent],
        dx,
        params.flag_threshold,
        buffer_cells=params.flag_buffer,
        bounding=hierarchy.domain_at(parent),
        fetch=GhostFiller(hierarchy).fetch,
        indicator_fn=indicator_fn,
    )
    if flagged is None:
        mask = None
        frame = hierarchy.levels[parent].boxes.bounding_box()
        mask = np.zeros(frame.shape, dtype=bool)
    else:
        mask, frame = flagged
    mask = _nesting_flags(hierarchy, parent, frame, mask)
    if not mask.any():
        # Nothing to refine: drop the child level if it exists and has no
        # grandchildren (the nesting fold guarantees that).
        if child < hierarchy.num_levels:
            hierarchy.set_level_boxes(child, BoxList())
        return
    # Re-buffer after folding nesting flags so grandchildren keep a margin.
    mask = buffer_flags(mask, 0)
    clusters = berger_rigoutsos(
        mask,
        origin=frame.lower,
        level=parent,
        efficiency=params.efficiency,
        min_size=params.min_box_size,
    )
    dom = hierarchy.domain_at(child)
    new_boxes = []
    for box in clusters:
        fine = box.refine(hierarchy.refine_factor)
        clipped = fine.intersection(dom)
        if clipped is not None:
            new_boxes.append(clipped)
    hierarchy.set_level_boxes(child, BoxList(new_boxes))


def build_initial_hierarchy(
    hierarchy: GridHierarchy, params: RegridParams | None = None
) -> None:
    """Initialize level 0 and regrid repeatedly until every admissible level
    exists (or no more cells are flagged)."""
    hierarchy.initialize()
    for _ in range(hierarchy.max_levels - 1):
        before = hierarchy.num_levels
        regrid_hierarchy(hierarchy, params)
        if hierarchy.num_levels == before:
            break
