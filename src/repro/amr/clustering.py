"""Berger-Rigoutsos point clustering (regrid step 2).

Given a boolean mask of flagged cells, produce a small set of rectangular
boxes covering every flag with at least a target *efficiency* (fraction of
cells inside the boxes that are actually flagged).  This is the standard
signature/hole/inflection algorithm of Berger & Rigoutsos (IEEE Trans.
Systems, Man and Cybernetics, 1991):

1. shrink the candidate box to the flags' bounding box;
2. accept it when its efficiency meets the target or it cannot be split;
3. otherwise split at the best *hole* (a zero of the flag signature) or,
   failing that, at the strongest inflection of the signature's second
   derivative, and recurse on both halves.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import GeometryError
from repro.util.geometry import Box, BoxList

__all__ = ["berger_rigoutsos"]


def _bounding_box_of_flags(mask: np.ndarray) -> tuple[tuple[int, int], ...] | None:
    """Per-axis (lo, hi_exclusive) bounds of True cells, or None if empty."""
    if not mask.any():
        return None
    bounds = []
    for axis in range(mask.ndim):
        other = tuple(a for a in range(mask.ndim) if a != axis)
        line = mask.any(axis=other) if other else mask
        idx = np.nonzero(line)[0]
        bounds.append((int(idx[0]), int(idx[-1]) + 1))
    return tuple(bounds)


def _signatures(mask: np.ndarray) -> list[np.ndarray]:
    """Flag counts projected onto each axis."""
    sigs = []
    for axis in range(mask.ndim):
        other = tuple(a for a in range(mask.ndim) if a != axis)
        sigs.append(mask.sum(axis=other) if other else mask.astype(np.int64))
    return sigs


def _best_hole_split(
    sigs: list[np.ndarray], min_size: int
) -> tuple[int, int] | None:
    """The most central zero-signature plane respecting min_size, if any."""
    best: tuple[int, int] | None = None
    best_score = -1.0
    for axis, sig in enumerate(sigs):
        n = len(sig)
        for cut in range(min_size, n - min_size + 1):
            # A hole at `cut` means the plane just below the cut is empty.
            if sig[cut - 1] == 0 or (cut < n and sig[cut] == 0):
                centrality = 1.0 - abs(cut - n / 2) / (n / 2)
                if centrality > best_score:
                    best_score = centrality
                    best = (axis, cut)
    return best


def _best_inflection_split(
    sigs: list[np.ndarray], min_size: int
) -> tuple[int, int] | None:
    """Strongest sign change of the signature Laplacian, respecting min_size."""
    best: tuple[int, int] | None = None
    best_strength = -1
    for axis, sig in enumerate(sigs):
        n = len(sig)
        if n < 2 * min_size or n < 4:
            continue
        lap = sig[2:] - 2 * sig[1:-1] + sig[:-2]  # second difference
        for i in range(len(lap) - 1):
            cut = i + 2  # split between cells i+1 and i+2
            if not min_size <= cut <= n - min_size:
                continue
            if (lap[i] < 0 <= lap[i + 1]) or (lap[i] >= 0 > lap[i + 1]):
                strength = abs(int(lap[i + 1]) - int(lap[i]))
                if strength > best_strength:
                    best_strength = strength
                    best = (axis, cut)
    if best is None:
        # Fall back: bisect the longest admissible axis.
        lengths = [len(s) for s in sigs]
        axis = int(np.argmax(lengths))
        n = lengths[axis]
        if n >= 2 * min_size:
            return (axis, n // 2)
        return None
    return best


def _cluster(
    mask: np.ndarray,
    offset: tuple[int, ...],
    efficiency: float,
    min_size: int,
    out: list[tuple[tuple[int, ...], tuple[int, ...]]],
    depth: int,
    max_depth: int = 64,
) -> None:
    bounds = _bounding_box_of_flags(mask)
    if bounds is None:
        return
    # Shrink to the flag bounding box.
    sl = tuple(slice(lo, hi) for lo, hi in bounds)
    sub = mask[sl]
    sub_offset = tuple(o + lo for o, (lo, _) in zip(offset, bounds))
    eff = sub.sum() / sub.size
    small = all(s <= min_size for s in sub.shape)
    if eff >= efficiency or small or depth >= max_depth:
        out.append(
            (sub_offset, tuple(o + s for o, s in zip(sub_offset, sub.shape)))
        )
        return
    sigs = _signatures(sub)
    split = _best_hole_split(sigs, min_size)
    if split is None:
        split = _best_inflection_split(sigs, min_size)
    if split is None:
        out.append(
            (sub_offset, tuple(o + s for o, s in zip(sub_offset, sub.shape)))
        )
        return
    axis, cut = split
    lo_sl = tuple(
        slice(0, cut) if a == axis else slice(None) for a in range(sub.ndim)
    )
    hi_sl = tuple(
        slice(cut, None) if a == axis else slice(None) for a in range(sub.ndim)
    )
    hi_offset = tuple(
        o + cut if a == axis else o for a, o in enumerate(sub_offset)
    )
    _cluster(sub[lo_sl], sub_offset, efficiency, min_size, out, depth + 1)
    _cluster(sub[hi_sl], hi_offset, efficiency, min_size, out, depth + 1)


def berger_rigoutsos(
    mask: np.ndarray,
    origin: tuple[int, ...] | None = None,
    level: int = 0,
    efficiency: float = 0.7,
    min_size: int = 2,
) -> BoxList:
    """Cluster flagged cells into boxes.

    Parameters
    ----------
    mask:
        Boolean array of flags over some frame of a level's index space.
    origin:
        Level coordinates of ``mask[0, 0, ...]`` (default: the origin).
    level:
        Refinement level the boxes should carry.
    efficiency:
        Target flagged-cell fraction per box, in (0, 1].
    min_size:
        Minimum box side length; splits never produce thinner boxes.

    Returns
    -------
    BoxList
        Disjoint boxes jointly covering every flagged cell.
    """
    if mask.dtype != bool:
        raise GeometryError("mask must be a boolean array")
    if not 0.0 < efficiency <= 1.0:
        raise GeometryError(f"efficiency must be in (0, 1], got {efficiency}")
    if min_size < 1:
        raise GeometryError(f"min_size must be >= 1, got {min_size}")
    if origin is None:
        origin = (0,) * mask.ndim
    if len(origin) != mask.ndim:
        raise GeometryError("origin dimensionality mismatch")
    found: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
    _cluster(mask, tuple(origin), efficiency, min_size, found, 0)
    return BoxList(Box(lo, hi, level) for lo, hi in found)
