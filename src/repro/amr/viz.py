"""Plain-text visualization of grid hierarchies and partitions.

Renders a 2-D hierarchy (or an axis-plane slice of a 3-D one) as a
character map: digits mark the finest refinement level covering each base
cell, or -- given an assignment -- letters mark the owning rank.  Used by
examples and handy in a REPL; no plotting dependency.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import GeometryError
from repro.util.geometry import Box, BoxList

__all__ = ["render_levels", "render_owners"]

_RANK_CHARS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _slice_boxes(
    boxes: BoxList, axis: int, index: int, refine_factor: int
) -> list[tuple[Box, Box]]:
    """Project 3-D boxes crossing base-plane ``index`` on ``axis`` to 2-D.

    Returns (original, projected-2D-box) pairs; 2-D inputs pass through.
    """
    out = []
    for b in boxes:
        if b.ndim == 2:
            out.append((b, b))
            continue
        scale = refine_factor**b.level
        lo, hi = b.lower[axis], b.upper[axis]
        if not lo <= index * scale < hi:
            continue
        keep = [d for d in range(3) if d != axis]
        out.append(
            (
                b,
                Box(
                    tuple(b.lower[d] for d in keep),
                    tuple(b.upper[d] for d in keep),
                    b.level,
                ),
            )
        )
    return out


def _base_footprint(box2d: Box, refine_factor: int) -> tuple[slice, slice]:
    scale = refine_factor**box2d.level
    return tuple(
        slice(l // scale, -(-u // scale))
        for l, u in zip(box2d.lower, box2d.upper)
    )


def render_levels(
    boxes: BoxList,
    domain: Box,
    refine_factor: int = 2,
    slice_axis: int = 2,
    slice_index: int = 0,
) -> str:
    """Character map of the finest level covering each base cell.

    ``'.'`` = level 0 only, digits = deepest overlying refinement level.
    3-D hierarchies are sliced at base-cell ``slice_index`` along
    ``slice_axis``.
    """
    if domain.ndim not in (2, 3):
        raise GeometryError("render supports 2-D and 3-D hierarchies")
    if domain.ndim == 3:
        keep = [d for d in range(3) if d != slice_axis]
        shape = tuple(domain.shape[d] for d in keep)
    else:
        shape = domain.shape
    grid = np.zeros(shape, dtype=int)
    pairs = (
        _slice_boxes(boxes, slice_axis, slice_index, refine_factor)
        if domain.ndim == 3
        else [(b, b) for b in boxes]
    )
    for original, b2 in pairs:
        if original.level == 0:
            continue
        sl = _base_footprint(b2, refine_factor)
        grid[sl] = np.maximum(grid[sl], original.level)
    lines = []
    for j in range(shape[1] - 1, -1, -1):  # y upward
        row = "".join(
            "." if grid[i, j] == 0 else str(min(grid[i, j], 9))
            for i in range(shape[0])
        )
        lines.append(row)
    return "\n".join(lines)


def render_owners(
    assignment: dict[Box, int] | list[tuple[Box, int]],
    domain: Box,
    refine_factor: int = 2,
    level: int = 0,
    slice_axis: int = 2,
    slice_index: int = 0,
) -> str:
    """Character map of rank ownership at one refinement level.

    Letters a, b, c, ... mark ranks; ``' '`` marks base cells the level
    does not cover.
    """
    items = (
        list(assignment.items())
        if isinstance(assignment, dict)
        else list(assignment)
    )
    level_boxes = BoxList([b for b, _ in items if b.level == level])
    ranks = {b: r for b, r in items if b.level == level}
    if domain.ndim == 3:
        keep = [d for d in range(3) if d != slice_axis]
        shape = tuple(domain.shape[d] for d in keep)
        pairs = _slice_boxes(level_boxes, slice_axis, slice_index, refine_factor)
    else:
        shape = domain.shape
        pairs = [(b, b) for b in level_boxes]
    grid = np.full(shape, -1, dtype=int)
    for original, b2 in pairs:
        sl = _base_footprint(b2, refine_factor)
        grid[sl] = ranks[original]
    lines = []
    for j in range(shape[1] - 1, -1, -1):
        row = "".join(
            " " if grid[i, j] < 0 else _RANK_CHARS[grid[i, j] % len(_RANK_CHARS)]
            for i in range(shape[0])
        )
        lines.append(row)
    return "\n".join(lines)
