"""Error estimation and cell tagging (regrid step 1).

The regrid operation starts by "flagging regions needing refinement based
on an application specific error criterion".  The criterion itself lives in
the kernel (:meth:`repro.amr.api.AmrKernel.error_indicator`); this module
turns indicator fields into flag masks and collects flags across a level,
with optional buffering so features cannot escape the refined region
between regrids.
"""

from __future__ import annotations

import numpy as np
import scipy.ndimage as ndi

from repro.amr.api import AmrKernel
from repro.amr.level import GridLevel
from repro.util.errors import GeometryError
from repro.util.geometry import Box

__all__ = [
    "flag_patch",
    "flag_level",
    "buffer_flags",
    "richardson_indicator",
    "coverage_mask",
]


def richardson_indicator(
    kernel: AmrKernel,
    data: np.ndarray,
    dx: float,
    factor: int = 2,
    cfl: float = 0.4,
) -> np.ndarray:
    """Richardson-extrapolation truncation-error estimate (Berger-Oliger).

    Advance the data twice with step ``dt`` on the given grid and once with
    ``factor * dt`` on a ``factor``-times coarsened copy; where the scheme
    is resolving the solution the two agree to the scheme's order, so their
    pointwise difference estimates the local truncation error.  This is the
    paper-era alternative to gradient-based criteria: it flags wherever the
    *numerics* struggle, not merely where gradients are large.

    ``data`` has shape ``(num_fields, *spatial)``; spatial extents not
    divisible by ``factor`` are handled by estimating on the aligned core
    and edge-padding the fringe.  Returns a non-negative per-cell scalar.
    """
    from repro.amr.intergrid import prolong, restrict  # avoid import cycle

    if data.ndim < 2:
        raise GeometryError("expected (num_fields, *spatial) data")
    spatial = data.shape[1:]
    core = tuple((s // factor) * factor for s in spatial)
    if any(c < factor for c in core):
        return np.zeros(spatial)  # too small to coarsen: nothing to flag
    core_sl = (slice(None),) + tuple(slice(0, c) for c in core)
    u = data[core_sl]
    dt = kernel.stable_dt(u, dx, cfl)
    if not np.isfinite(dt):
        return np.zeros(spatial)  # static field: no truncation error
    fine = kernel.step(kernel.step(u, dt, dx), dt, dx)
    coarse = kernel.step(restrict(u, factor), factor * dt, factor * dx)
    diff = np.abs(fine - prolong(coarse, factor)).sum(axis=0)
    out = np.zeros(spatial)
    out[tuple(slice(0, c) for c in core)] = diff
    # Edge-pad the unaligned fringe with the nearest estimated value.
    for axis, (s, c) in enumerate(zip(spatial, core)):
        if s > c:
            src = [slice(None)] * len(spatial)
            dst = [slice(None)] * len(spatial)
            src[axis] = slice(c - 1, c)
            dst[axis] = slice(c, s)
            out[tuple(dst)] = out[tuple(src)]
    return out


def flag_patch(
    kernel: AmrKernel, interior: np.ndarray, dx: float, threshold: float
) -> np.ndarray:
    """Boolean flag mask for one patch's interior data."""
    if threshold < 0:
        raise GeometryError(f"negative flag threshold {threshold}")
    indicator = kernel.error_indicator(interior, dx)
    if indicator.shape != interior.shape[1:]:
        raise GeometryError(
            f"error indicator shape {indicator.shape} does not match the "
            f"patch spatial shape {interior.shape[1:]}"
        )
    return indicator > threshold


def buffer_flags(flags: np.ndarray, buffer_cells: int) -> np.ndarray:
    """Dilate the flag mask by ``buffer_cells`` so moving features stay
    inside the refined region until the next regrid."""
    if buffer_cells < 0:
        raise GeometryError(f"negative flag buffer {buffer_cells}")
    if buffer_cells == 0 or not flags.any():
        return flags
    structure = ndi.generate_binary_structure(flags.ndim, flags.ndim)
    return ndi.binary_dilation(flags, structure=structure, iterations=buffer_cells)


def coverage_mask(level: GridLevel, frame: Box) -> np.ndarray:
    """Boolean mask over ``frame``: True where the level has patches."""
    mask = np.zeros(frame.shape, dtype=bool)
    for patch in level:
        region = patch.box.intersection(frame)
        if region is not None:
            mask[region.slices(origin=frame.lower)] = True
    return mask


def flag_level(
    kernel: AmrKernel,
    level: GridLevel,
    dx: float,
    threshold: float,
    buffer_cells: int = 1,
    bounding: Box | None = None,
    fetch=None,
    indicator_fn=None,
) -> tuple[np.ndarray, Box] | None:
    """Collect flags over a level into one mask.

    Returns ``(mask, frame)`` where ``frame`` is the bounding box (in the
    level's index space) that the mask covers, or ``None`` when nothing is
    flagged.  ``bounding`` clips flags to a region (the domain).

    When ``fetch`` (a composite-grid reader, e.g.
    :meth:`repro.amr.ghost.GhostFiller.fetch`) is given, the error
    indicator is evaluated once on the composite data of the frame (grown
    by one cell where the domain allows, so gradients at internal patch
    edges are two-sided).  This makes flagging independent of the patch
    layout -- the property that lets a partitioner re-tile the hierarchy
    without perturbing the numerics.  Without ``fetch``, indicators are
    computed per patch (one-sided at patch edges).

    ``indicator_fn(data, dx) -> spatial array`` overrides the kernel's own
    error indicator on the composite path (e.g. a
    :func:`richardson_indicator` closure).
    """
    if len(level) == 0:
        return None
    frame = level.boxes.bounding_box()
    if bounding is not None:
        clipped = frame.intersection(bounding)
        if clipped is None:
            return None
        frame = clipped
    if fetch is not None:
        read_frame = frame.grow(1)
        if bounding is not None:
            read_frame = read_frame.intersection(bounding)
        data = fetch(read_frame, frame.level)
        if indicator_fn is not None:
            indicator = indicator_fn(data, dx)
        else:
            indicator = kernel.error_indicator(data, dx)
        sl = frame.slices(origin=read_frame.lower)
        mask = indicator[sl] > threshold
    else:
        mask = np.zeros(frame.shape, dtype=bool)
        for patch in level:
            region = patch.box.intersection(frame)
            if region is None:
                continue
            flags = flag_patch(kernel, patch.interior, dx, threshold)
            patch_sl = region.slices(origin=patch.box.lower)
            frame_sl = region.slices(origin=frame.lower)
            mask[frame_sl] |= flags[patch_sl]
    # Only cells the level actually covers are refinable (keeps children
    # nested when the level footprint is sparse).
    mask &= coverage_mask(level, frame)
    if not mask.any():
        return None
    mask = buffer_flags(mask, buffer_cells)
    mask &= coverage_mask(level, frame)
    return mask, frame
