"""Inter-grid transfer operators: prolongation and restriction.

The two primary inter-grid operations of the Berger-Oliger scheme:
*prolongation* moves solution values from a coarse grid to a newly created
(or ghost-hungry) fine grid; *restriction* averages fine values back onto
the underlying coarse cells at synchronization points.

Operators are conservative and cell-centered:

- ``prolong``: piecewise-constant injection (each coarse cell's value copied
  into its ``factor**ndim`` children) -- first-order, positivity-preserving,
  which matters for hydrodynamics fields like density.
- ``restrict``: arithmetic mean over each coarse cell's children -- the
  adjoint of injection, conserving the field's integral.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.util.errors import GeometryError

__all__ = ["prolong", "restrict"]


def prolong(coarse: np.ndarray, factor: int) -> np.ndarray:
    """Inject coarse data onto a ``factor``-times finer grid.

    ``coarse`` has shape ``(num_fields, *spatial)``; the result's spatial
    extents are multiplied by ``factor``.
    """
    if factor < 2:
        raise GeometryError(f"refinement factor must be >= 2, got {factor}")
    if coarse.ndim < 2:
        raise GeometryError("expected (num_fields, *spatial) array")
    out = coarse
    for axis in range(1, coarse.ndim):
        out = np.repeat(out, factor, axis=axis)
    return out


def restrict(fine: np.ndarray, factor: int) -> np.ndarray:
    """Average fine data onto a ``factor``-times coarser grid.

    Every spatial extent of ``fine`` must be divisible by ``factor``.

    The children of each coarse cell are accumulated in a fixed
    lexicographic offset order (not via ``mean``'s shape-dependent pairwise
    summation), so the result is *bitwise* independent of how the fine
    region was carved into patches -- the partition-invariance property the
    distributed runtime's tests pin down.
    """
    if factor < 2:
        raise GeometryError(f"refinement factor must be >= 2, got {factor}")
    if fine.ndim < 2:
        raise GeometryError("expected (num_fields, *spatial) array")
    spatial = fine.shape[1:]
    for s in spatial:
        if s % factor:
            raise GeometryError(
                f"spatial extent {s} not divisible by factor {factor}"
            )
    ndim = len(spatial)
    coarse_shape = (fine.shape[0],) + tuple(s // factor for s in spatial)
    acc = np.zeros(coarse_shape, dtype=fine.dtype)
    for offsets in itertools.product(range(factor), repeat=ndim):
        sl = (slice(None),) + tuple(
            slice(o, None, factor) for o in offsets
        )
        acc += fine[sl]
    return acc / factor**ndim
