"""Ghost-cell filling and communication-volume planning.

Two jobs live here:

1. :class:`GhostFiller` -- before each kernel step, fill every patch's ghost
   frame from (in priority order) same-level sibling patches, then coarser
   ancestor levels via prolongation, with periodic wrapping or outflow
   replication at the physical domain boundary.  This is the sequential
   (in-memory) realization of what MPI ghost exchanges do on a real cluster.

2. :func:`plan_exchange_volumes` -- given the partitioner's box->rank
   assignment, compute how many bytes *would* cross each rank pair during
   one ghost exchange.  The runtime's time model prices this against the
   simulated interconnect, which is how partitioning locality shows up in
   execution time.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.amr.intergrid import prolong
from repro.util.errors import GeometryError
from repro.util.geometry import Box, BoxList

__all__ = ["GhostFiller", "plan_exchange_volumes"]


class GhostFiller:
    """Fills ghost frames of hierarchy patches.

    Parameters
    ----------
    hierarchy:
        The :class:`~repro.amr.hierarchy.GridHierarchy` to serve.
    """

    def __init__(self, hierarchy):
        self.hierarchy = hierarchy

    # ------------------------------------------------------------------
    def fetch(self, region: Box, level: int) -> np.ndarray:
        """Composite-grid read: data for ``region`` (inside the domain at
        ``level``), taken from the finest available source at each cell --
        same-level patches where they exist, prolonged ancestor data
        elsewhere.  Level 0 always covers the domain, so this never fails.
        """
        dom = self.hierarchy.domain_at(level)
        if not dom.contains_box(region):
            raise GeometryError(f"fetch region {region} outside domain {dom}")
        if level == 0:
            return self._read_level(region, 0)
        f = self.hierarchy.refine_factor
        coarse_region = region.coarsen(f)
        coarse = self.fetch(coarse_region, level - 1)
        fine_frame = coarse_region.refine(f)
        data = prolong(coarse, f)
        sl = (slice(None),) + region.slices(origin=fine_frame.lower)
        out = np.ascontiguousarray(data[sl])
        if level >= self.hierarchy.num_levels:
            return out  # level not instantiated yet: pure prolongation
        # Overlay same-level truth where patches cover the region.
        for patch in self.hierarchy.levels[level]:
            inter = patch.box.intersection(region)
            if inter is None:
                continue
            dst = (slice(None),) + inter.slices(origin=region.lower)
            out[dst] = patch.view_for(inter)
        return out

    def _read_level(self, region: Box, level: int) -> np.ndarray:
        """Read a region fully covered by one level's patches (level 0)."""
        shape = (self.hierarchy.kernel.num_fields,) + region.shape
        out = np.zeros(shape)
        for patch in self.hierarchy.levels[level]:
            inter = patch.box.intersection(region)
            if inter is None:
                continue
            dst = (slice(None),) + inter.slices(origin=region.lower)
            out[dst] = patch.view_for(inter)
        return out

    # ------------------------------------------------------------------
    def fill_patch_ghosts(self, patch, level: int) -> None:
        """Fill one patch's ghost frame (interior data left untouched)."""
        g = patch.ghost_width
        if g == 0:
            return
        dom = self.hierarchy.domain_at(level)
        gb = patch.ghost_box()
        boundary = self.hierarchy.kernel.boundary
        for piece in gb.difference(patch.box):
            if boundary == "periodic":
                self._fill_periodic_piece(patch, piece, level, dom)
            else:
                inside = piece.intersection(dom)
                if inside is not None:
                    patch.view_for(inside)[...] = self.fetch(inside, level)
        if boundary == "outflow":
            self._replicate_outflow(patch, dom)

    def _fill_periodic_piece(self, patch, piece: Box, level: int, dom: Box) -> None:
        """Fill a ghost slab, wrapping out-of-domain parts around the torus."""
        extents = dom.shape
        shifts = itertools.product(*[(-e, 0, e) for e in extents])
        for shift in shifts:
            shifted_dom = dom.translate(shift)
            part = piece.intersection(shifted_dom)
            if part is None:
                continue
            source = part.translate(tuple(-s for s in shift))
            patch.view_for(part)[...] = self.fetch(source, level)

    def _replicate_outflow(self, patch, dom: Box) -> None:
        """Zero-gradient boundary: copy the outermost in-domain plane into
        out-of-domain ghost planes, axis by axis (fills corners too)."""
        g = patch.ghost_width
        data = patch.data
        gb = patch.ghost_box()
        for axis in range(patch.box.ndim):
            ax = axis + 1  # account for the fields axis
            low_out = dom.lower[axis] - gb.lower[axis]  # ghosts below domain
            if low_out > 0:
                edge = np.take(data, [low_out], axis=ax)
                idx = [slice(None)] * data.ndim
                idx[ax] = slice(0, low_out)
                data[tuple(idx)] = edge
            high_out = gb.upper[axis] - dom.upper[axis]  # ghosts above domain
            if high_out > 0:
                n = data.shape[ax]
                edge = np.take(data, [n - high_out - 1], axis=ax)
                idx = [slice(None)] * data.ndim
                idx[ax] = slice(n - high_out, n)
                data[tuple(idx)] = edge

    def fill_level_ghosts(self, level: int) -> None:
        """Fill every patch of a level."""
        for patch in self.hierarchy.levels[level]:
            self.fill_patch_ghosts(patch, level)


# ---------------------------------------------------------------------------
# Communication-volume planning
# ---------------------------------------------------------------------------
def plan_exchange_volumes(
    boxes: BoxList,
    owners: dict[Box, int],
    ghost_width: int = 1,
    bytes_per_cell: float = 8.0,
    refine_factor: int = 2,
) -> dict[tuple[int, int], float]:
    """Bytes crossing each rank pair in one ghost-exchange phase.

    Intra-level traffic: for same-level boxes A, B with different owners,
    the cells of ``B`` inside ``A.grow(ghost_width)`` must be shipped from
    B's owner to A's owner.  Inter-level traffic: each fine box needs a
    prolongation source -- its coarsened ghost footprint -- from every
    parent-level box it overlaps that lives on another rank.

    Parameters mirror the partitioner output: ``owners`` maps every box in
    ``boxes`` to its rank.
    """
    if ghost_width < 0:
        raise GeometryError(f"negative ghost width {ghost_width}")
    volumes: dict[tuple[int, int], float] = {}

    def add(src: int, dst: int, cells: int) -> None:
        if src == dst or cells <= 0:
            return
        key = (src, dst)
        volumes[key] = volumes.get(key, 0.0) + cells * bytes_per_cell

    by_level: dict[int, list[Box]] = {}
    for b in boxes:  # per-box ok: keyed against the Box-keyed owners map
        if b not in owners:
            raise GeometryError(f"box {b} missing from ownership map")
        by_level.setdefault(b.level, []).append(b)

    # Intra-level ghost traffic.
    for level_boxes in by_level.values():
        for a in level_boxes:
            if ghost_width == 0:
                continue
            grown = a.grow(ghost_width)
            for b in level_boxes:
                if a is b:
                    continue
                inter = grown.intersection(b)
                if inter is not None:
                    add(owners[b], owners[a], inter.num_cells)

    # Inter-level prolongation traffic (fine pulls from coarse).
    for level, level_boxes in sorted(by_level.items()):
        parents = by_level.get(level - 1, [])
        if not parents:
            continue
        for fine in level_boxes:
            footprint = fine.grow(ghost_width) if ghost_width else fine
            coarse_fp = footprint.coarsen(refine_factor)
            for parent in parents:
                inter = parent.intersection(coarse_fp)
                if inter is not None:
                    add(owners[parent], owners[fine], inter.num_cells)
    return volumes
