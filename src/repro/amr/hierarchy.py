"""The dynamic adaptive grid hierarchy (Berger-Oliger, paper fig. 2).

A :class:`GridHierarchy` owns the level stack: level 0 covers the whole
computational domain at base resolution; each finer level is a union of
patches overlaying flagged regions of its parent, refined by a fixed factor
in space (and, under Berger-Oliger subcycling, in time).

The hierarchy is what the partitioner sees: :meth:`GridHierarchy.box_list`
returns the flattened bounding-box list that GrACE hands to the partitioning
routine at every regrid.
"""

from __future__ import annotations

import numpy as np

from repro.amr.api import AmrKernel
from repro.amr.intergrid import prolong, restrict
from repro.amr.level import GridLevel
from repro.amr.patch import GridPatch
from repro.util.errors import GeometryError
from repro.util.geometry import Box, BoxArray, BoxList

__all__ = ["GridHierarchy"]


class GridHierarchy:
    """Dynamic hierarchy of refinement levels over a rectangular domain.

    Parameters
    ----------
    domain:
        Level-0 box, lower corner at the origin.
    kernel:
        The application kernel (fixes num_fields, ghost width, physics).
    max_levels:
        Maximum hierarchy depth (paper's RM3D runs use 3).
    refine_factor:
        Space (and time) refinement ratio between levels (paper: 2).
    dx0:
        Cell width on level 0.
    """

    def __init__(
        self,
        domain: Box,
        kernel: AmrKernel,
        max_levels: int = 3,
        refine_factor: int = 2,
        dx0: float = 1.0,
    ):
        if domain.level != 0 or any(l != 0 for l in domain.lower):
            raise GeometryError("domain must be a level-0 box at the origin")
        if domain.ndim != kernel.ndim:
            raise GeometryError(
                f"domain is {domain.ndim}-D but kernel expects {kernel.ndim}-D"
            )
        if max_levels < 1:
            raise GeometryError(f"max_levels must be >= 1, got {max_levels}")
        if refine_factor < 2:
            raise GeometryError(f"refine_factor must be >= 2, got {refine_factor}")
        if dx0 <= 0:
            raise GeometryError(f"dx0 must be > 0, got {dx0}")
        kernel.validate()
        self.domain = domain
        self.kernel = kernel
        self.max_levels = max_levels
        self.refine_factor = refine_factor
        self.dx0 = dx0
        self._levels: list[GridLevel] = []
        self._flat_cache: BoxList | None = None
        self.time = 0.0
        self.step_count = 0

    @property
    def levels(self) -> list[GridLevel]:
        """The level stack (replacing it invalidates the box-list cache)."""
        return self._levels

    @levels.setter
    def levels(self, value: list[GridLevel]) -> None:
        self._levels = value
        self._flat_cache = None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """Create level 0 (one patch covering the domain) with initial data."""
        patch = GridPatch(
            self.domain,
            num_fields=self.kernel.num_fields,
            ghost_width=self.kernel.ghost_width,
        )
        patch.interior = self.kernel.initial_condition(self.domain, self.dx0)
        self.levels = [GridLevel(0, [patch])]
        self.time = 0.0
        self.step_count = 0

    # ------------------------------------------------------------------
    # Geometry queries
    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def cell_width(self, level: int) -> float:
        """dx on the given level."""
        return self.dx0 / self.refine_factor**level

    def domain_at(self, level: int) -> Box:
        """The whole domain expressed in ``level`` index space."""
        box = self.domain
        for _ in range(level):
            box = box.refine(self.refine_factor)
        return box

    def box_list(self) -> BoxList:
        """Flattened bounding boxes of every level (what partitioners see).

        The list -- and through it the :class:`BoxArray` column cache every
        downstream consumer shares (SFC keys, work vectors, disjointness
        sweeps) -- is memoized until the hierarchy's geometry changes, so
        repeated repartitions of an unchanged hierarchy extract box
        coordinates exactly once.
        """
        cached = self._flat_cache
        if cached is not None and len(cached) == sum(
            len(lvl) for lvl in self._levels
        ):
            return cached
        out: list[Box] = []
        for lvl in self._levels:
            out.extend(lvl.boxes)
        cached = BoxList(out)
        self._flat_cache = cached
        return cached

    def box_array(self) -> BoxArray:
        """Columnar view of :meth:`box_list` (shared cached columns)."""
        return self.box_list().array

    def subcycles(self, level: int) -> int:
        """Kernel steps taken on ``level`` per coarse (level-0) step."""
        return self.refine_factor**level

    def work_by_level(self) -> np.ndarray:
        """Work units per level for one coarse step: cells x subcycles.

        This is the paper's observation that finer grids "not only have a
        larger number of grid elements but are also updated more frequently".
        """
        return np.array(
            [lvl.total_cells * self.subcycles(lvl.level) for lvl in self.levels],
            dtype=np.int64,
        )

    def total_work(self) -> int:
        """Total work units for one coarse step over the whole hierarchy."""
        return int(self.work_by_level().sum())

    def work_of_box(self, box: Box) -> int:
        """Work units one box contributes to a coarse step."""
        return box.num_cells * self.subcycles(box.level)

    # ------------------------------------------------------------------
    # Nesting
    # ------------------------------------------------------------------
    def proper_nesting_ok(self) -> bool:
        """Every fine box, coarsened, must be covered by its parent level
        and lie inside the domain."""
        for idx in range(1, self.num_levels):
            parent = self.levels[idx - 1]
            dom = self.domain_at(idx)
            for patch in self.levels[idx]:
                if not dom.contains_box(patch.box):
                    return False
                coarse = patch.box.coarsen(self.refine_factor)
                if not parent.covers(coarse):
                    return False
        return True

    # ------------------------------------------------------------------
    # Level rebuild (regrid step 3)
    # ------------------------------------------------------------------
    def set_level_boxes(self, level: int, boxes: BoxList) -> None:
        """Replace the patches of ``level`` with ``boxes``, transferring data.

        New patches are first filled by prolongation from the parent level,
        then overwritten with old same-level data wherever the footprints
        overlap -- the standard regrid data transfer.  Level 0 cannot be
        replaced (it always covers the domain).
        """
        if level == 0:
            raise GeometryError("level 0 is static; regrid finer levels only")
        if not 1 <= level <= self.num_levels:
            raise GeometryError(
                f"cannot set level {level}: hierarchy has {self.num_levels} "
                "levels (may extend by at most one)"
            )
        if level >= self.max_levels:
            raise GeometryError(
                f"level {level} exceeds max_levels={self.max_levels}"
            )
        dom = self.domain_at(level)
        self._check_level_boxes(boxes, level, dom)

        old_level = self.levels[level] if level < self.num_levels else None
        new_level = GridLevel(level)
        parent = self.levels[level - 1]
        for box in boxes:  # per-box ok: allocates GridPatch field storage
            patch = GridPatch(
                box,
                num_fields=self.kernel.num_fields,
                ghost_width=self.kernel.ghost_width,
            )
            self._fill_from_parent(patch, parent)
            if old_level is not None:
                for old in old_level:
                    inter = old.box.intersection(box)
                    if inter is not None:
                        patch.copy_region_from(old, inter)
            new_level.add_patch(patch)

        if level < self.num_levels:
            self.levels[level] = new_level
        else:
            self.levels.append(new_level)
        # Drop now-empty tail levels so num_levels reflects reality.
        while self.levels and len(self.levels[-1]) == 0:
            self.levels.pop()
        self._flat_cache = None

    def repatch_level(self, level: int, boxes: BoxList) -> None:
        """Re-tile an existing level's footprint with a new patch layout.

        This is how a partitioner's box splits become the hierarchy's patch
        structure (in GrACE the partitioner output *is* the decomposition).
        Unlike :meth:`set_level_boxes`, level 0 is allowed -- the new boxes
        must then tile the domain exactly -- and for finer levels the new
        boxes must cover exactly the old footprint (repatching never grows
        or shrinks a level; regridding does that).
        """
        if not 0 <= level < self.num_levels:
            raise GeometryError(f"cannot repatch non-existent level {level}")
        old_level = self.levels[level]
        old_cells = old_level.total_cells
        new_cells = boxes.total_cells
        if old_cells != new_cells:
            raise GeometryError(
                f"repatch changes level {level} coverage: "
                f"{old_cells} cells -> {new_cells}"
            )
        bad = np.flatnonzero(boxes.array.level != level)
        if bad.size:
            raise GeometryError(
                f"box {boxes[int(bad[0])]} is not at level {level}"
            )
        new_patches = GridLevel(level)
        for box in boxes:  # per-box ok: allocates GridPatch field storage
            patch = GridPatch(
                box,
                num_fields=self.kernel.num_fields,
                ghost_width=self.kernel.ghost_width,
            )
            covered = 0
            for old in old_level:
                inter = old.box.intersection(box)
                if inter is not None:
                    patch.copy_region_from(old, inter)
                    covered += inter.num_cells
            if covered != box.num_cells:
                raise GeometryError(
                    f"repatch box {box} not covered by the old level "
                    f"({covered}/{box.num_cells} cells)"
                )
            new_patches.add_patch(patch)
        self.levels[level] = new_patches
        self._flat_cache = None

    @staticmethod
    def _check_level_boxes(boxes: BoxList, level: int, dom: Box) -> None:
        """Columnar validation: every box at ``level`` and inside ``dom``.

        Raises for the first offending box in list order with the same
        message the old per-box walk produced (level mismatch reported
        before containment, as before).
        """
        if len(boxes) == 0:
            return
        arr = boxes.array
        bad_level = arr.level != level
        lo = np.asarray(dom.lower, dtype=arr.lower.dtype)
        up = np.asarray(dom.upper, dtype=arr.upper.dtype)
        outside = np.any(arr.lower < lo, axis=1) | np.any(arr.upper > up, axis=1)
        bad = np.flatnonzero(bad_level | outside)
        if bad.size:
            first = int(bad[0])
            if bad_level[first]:
                raise GeometryError(
                    f"box {boxes[first]} is not at level {level}"
                )
            raise GeometryError(f"box {boxes[first]} outside domain {dom}")

    def _fill_from_parent(self, patch: GridPatch, parent: GridLevel) -> None:
        """Initialize a new fine patch by prolonging parent data."""
        coarse_box = patch.box.coarsen(self.refine_factor)
        for pp in parent:
            inter = pp.box.intersection(coarse_box)
            if inter is None:
                continue
            coarse_data = pp.view_for(inter)
            fine_data = prolong(coarse_data, self.refine_factor)
            fine_region = inter.refine(self.refine_factor)
            target = fine_region.intersection(patch.box)
            if target is None:
                continue
            sl = (slice(None),) + target.slices(origin=fine_region.lower)
            patch.view_for(target)[...] = fine_data[sl]

    # ------------------------------------------------------------------
    # Restriction (fine -> coarse sync)
    # ------------------------------------------------------------------
    def restrict_level(self, fine_level: int) -> None:
        """Average fine data onto the parent level where they overlap.

        Fine boxes need not be refinement-aligned (the partitioner may have
        split them anywhere): only the aligned core of each box -- lower
        corner rounded up, upper corner rounded down to coarse-cell
        boundaries -- is restricted; the sub-cell fringe is covered by the
        sibling box that owns the other part of the coarse cell.
        """
        if not 1 <= fine_level < self.num_levels:
            raise GeometryError(f"no fine level {fine_level} to restrict")
        f = self.refine_factor
        parent = self.levels[fine_level - 1]
        for fp in self.levels[fine_level]:
            lo = tuple(-(-l // f) * f for l in fp.box.lower)  # ceil to grid
            up = tuple((u // f) * f for u in fp.box.upper)  # floor to grid
            if any(a >= b for a, b in zip(lo, up)):
                continue  # box thinner than one coarse cell
            aligned = Box(lo, up, fp.box.level)
            coarse_box = Box(
                tuple(l // f for l in lo), tuple(u // f for u in up),
                fp.box.level - 1,
            )
            coarsened = restrict(fp.view_for(aligned), f)
            for pp in parent:
                inter = pp.box.intersection(coarse_box)
                if inter is None:
                    continue
                sl = (slice(None),) + inter.slices(origin=coarse_box.lower)
                pp.view_for(inter)[...] = coarsened[sl]
