"""Grid patches: a bounding box plus field storage with ghost cells.

A :class:`GridPatch` is one component grid of the hierarchy.  Its data array
covers the box interior plus ``ghost_width`` cells on every side; the ghost
frame is filled by :mod:`repro.amr.ghost` before each kernel step.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import GeometryError
from repro.util.geometry import Box

__all__ = ["GridPatch"]


class GridPatch:
    """Field data living on one bounding box of one refinement level.

    Parameters
    ----------
    box:
        Interior region in the patch's level index space.
    num_fields:
        Leading data dimension.
    ghost_width:
        Ghost cells per side.
    data:
        Optional pre-existing array of shape
        ``(num_fields, *(s + 2*ghost_width))``; allocated zero-filled when
        omitted.
    """

    __slots__ = ("box", "num_fields", "ghost_width", "data")

    def __init__(
        self,
        box: Box,
        num_fields: int = 1,
        ghost_width: int = 1,
        data: np.ndarray | None = None,
    ):
        if num_fields < 1:
            raise GeometryError(f"num_fields must be >= 1, got {num_fields}")
        if ghost_width < 0:
            raise GeometryError(f"ghost_width must be >= 0, got {ghost_width}")
        self.box = box
        self.num_fields = num_fields
        self.ghost_width = ghost_width
        expected = (num_fields,) + tuple(
            s + 2 * ghost_width for s in box.shape
        )
        if data is None:
            self.data = np.zeros(expected)
        else:
            if data.shape != expected:
                raise GeometryError(
                    f"patch data shape {data.shape} != expected {expected}"
                )
            self.data = data

    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        return self.box.level

    @property
    def interior(self) -> np.ndarray:
        """View of the interior (no ghosts), shape (num_fields, *box.shape)."""
        g = self.ghost_width
        if g == 0:
            return self.data
        sl = (slice(None),) + (slice(g, -g),) * self.box.ndim
        return self.data[sl]

    @interior.setter
    def interior(self, values: np.ndarray) -> None:
        self.interior[...] = values

    def ghost_box(self) -> Box:
        """The box including the ghost frame (may extend past the domain)."""
        if self.ghost_width == 0:
            return self.box
        return self.box.grow(self.ghost_width)

    # ------------------------------------------------------------------
    def view_for(self, region: Box) -> np.ndarray:
        """Writable view of ``region`` (level coords) within this patch's
        data, ghost frame included.  ``region`` must fit in the ghost box."""
        gb = self.ghost_box()
        if not gb.contains_box(region):
            raise GeometryError(
                f"region {region} not contained in patch ghost box {gb}"
            )
        sl = (slice(None),) + region.slices(origin=gb.lower)
        return self.data[sl]

    def copy_region_from(self, other: "GridPatch", region: Box) -> None:
        """Copy ``region`` of ``other``'s *interior* into this patch
        (typically into this patch's ghost frame)."""
        if other.box.intersection(region) != region:
            raise GeometryError(
                f"source patch {other.box} does not cover region {region}"
            )
        src = other.view_for(region)
        self.view_for(region)[...] = src

    @property
    def work(self) -> int:
        """Computational weight: interior cell count."""
        return self.box.num_cells

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GridPatch({self.box!r}, fields={self.num_fields})"
