"""Berger-Oliger time integration with subcycling.

The recursive scheme of section 3: each level advances with its own time
step (``dt_level = dt0 / refine_factor**level``); a fine level takes
``refine_factor`` substeps per parent step, after which fine data is
restricted onto the parent.  Ghost frames are refilled before every kernel
application (periodically wrapped or outflow-replicated at the physical
boundary, prolonged from coarser data at internal fine-grid boundaries).

The integrator also owns the regrid cadence: the paper's experiments regrid
every few iterations ("the application regrid[s] every 5 iterations"), which
is exactly when the partitioner is invoked in the full runtime.
"""

from __future__ import annotations

from typing import Callable

from repro.amr.ghost import GhostFiller
from repro.amr.hierarchy import GridHierarchy
from repro.amr.regrid import RegridParams, build_initial_hierarchy, regrid_hierarchy
from repro.util.errors import KernelError

__all__ = ["BergerOligerIntegrator"]


class BergerOligerIntegrator:
    """Drives a hierarchy + kernel through adaptive time steps.

    Parameters
    ----------
    hierarchy:
        The grid hierarchy (need not be initialized yet; see :meth:`setup`).
    cfl:
        Courant number for the stable-step computation.
    regrid_interval:
        Regrid every this many coarse steps (paper experiments use 5);
        0 disables regridding.
    regrid_params:
        Flagging/clustering knobs.
    on_regrid:
        Optional callback invoked after each regrid with the hierarchy --
        the hook the partitioning runtime attaches to.
    """

    def __init__(
        self,
        hierarchy: GridHierarchy,
        cfl: float = 0.4,
        regrid_interval: int = 5,
        regrid_params: RegridParams | None = None,
        on_regrid: Callable[[GridHierarchy], None] | None = None,
    ):
        if cfl <= 0 or cfl > 1:
            raise KernelError(f"cfl must be in (0, 1], got {cfl}")
        if regrid_interval < 0:
            raise KernelError(f"negative regrid_interval {regrid_interval}")
        self.hierarchy = hierarchy
        self.cfl = cfl
        self.regrid_interval = regrid_interval
        self.regrid_params = regrid_params or RegridParams()
        self.on_regrid = on_regrid
        self.filler = GhostFiller(hierarchy)
        self.num_regrids = 0

    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Build the initial hierarchy from the kernel's initial condition."""
        build_initial_hierarchy(self.hierarchy, self.regrid_params)
        self.num_regrids += 1
        if self.on_regrid is not None:
            self.on_regrid(self.hierarchy)

    def stable_dt(self) -> float:
        """Largest level-0 step for which every level is CFL-stable."""
        h = self.hierarchy
        dt = float("inf")
        for lvl in h.levels:
            dx = h.cell_width(lvl.level)
            scale = h.refine_factor**lvl.level
            for patch in lvl:
                local = h.kernel.stable_dt(patch.interior, dx, self.cfl)
                dt = min(dt, local * scale)
        if dt <= 0 or dt != dt:  # non-positive or NaN
            raise KernelError(f"unusable stable dt {dt}")
        return dt

    # ------------------------------------------------------------------
    def advance(self, dt: float | None = None) -> float:
        """Take one coarse (level-0) step; returns the dt used.

        Regridding happens *before* the step whenever the step counter hits
        the regrid interval (and after setup has created step 0 state).
        """
        h = self.hierarchy
        if not h.levels:
            raise KernelError("hierarchy not initialized; call setup() first")
        if (
            self.regrid_interval
            and h.step_count > 0
            and h.step_count % self.regrid_interval == 0
        ):
            self.regrid()
        if dt is None:
            dt = self.stable_dt()
            if dt == float("inf"):
                dt = self.cfl * h.cell_width(0)  # static field: nominal step
        self._advance_level(0, dt)
        h.time += dt
        h.step_count += 1
        return dt

    def run(self, num_steps: int) -> None:
        """Advance ``num_steps`` coarse steps."""
        for _ in range(num_steps):
            self.advance()

    def regrid(self) -> None:
        """Rebuild the refined levels and fire the regrid hook."""
        regrid_hierarchy(self.hierarchy, self.regrid_params)
        self.num_regrids += 1
        if self.on_regrid is not None:
            self.on_regrid(self.hierarchy)

    # ------------------------------------------------------------------
    def _advance_level(self, level: int, dt: float) -> None:
        h = self.hierarchy
        dx = h.cell_width(level)
        self.filler.fill_level_ghosts(level)
        for patch in h.levels[level]:
            updated = h.kernel.step(patch.data, dt, dx)
            if updated.shape != patch.data.shape:
                raise KernelError(
                    f"kernel.step changed the array shape: {patch.data.shape}"
                    f" -> {updated.shape}"
                )
            g = patch.ghost_width
            if g:
                sl = (slice(None),) + (slice(g, -g),) * patch.box.ndim
                patch.interior = updated[sl]
            else:
                patch.data[...] = updated
        if level + 1 < h.num_levels:
            sub_dt = dt / h.refine_factor
            for _ in range(h.refine_factor):
                self._advance_level(level + 1, sub_dt)
            h.restrict_level(level + 1)
