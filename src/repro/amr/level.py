"""Grid levels: the set of patches at one refinement depth."""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.amr.patch import GridPatch
from repro.util.errors import GeometryError
from repro.util.geometry import Box, BoxList

__all__ = ["GridLevel"]


class GridLevel:
    """All patches of one refinement level.

    Invariants: every patch carries the level's index; patch boxes are
    pairwise disjoint (they may touch).  Both are enforced on mutation.
    """

    __slots__ = ("level", "patches")

    def __init__(self, level: int, patches: Sequence[GridPatch] = ()):
        if level < 0:
            raise GeometryError(f"negative level {level}")
        self.level = level
        self.patches: list[GridPatch] = []
        for p in patches:
            self.add_patch(p)

    def add_patch(self, patch: GridPatch) -> None:
        if patch.level != self.level:
            raise GeometryError(
                f"patch at level {patch.level} added to GridLevel {self.level}"
            )
        for existing in self.patches:
            if existing.box.intersects(patch.box):
                raise GeometryError(
                    f"patch {patch.box} overlaps existing {existing.box}"
                )
        self.patches.append(patch)

    def __iter__(self) -> Iterator[GridPatch]:
        return iter(self.patches)

    def __len__(self) -> int:
        return len(self.patches)

    @property
    def boxes(self) -> BoxList:
        return BoxList(p.box for p in self.patches)

    @property
    def total_cells(self) -> int:
        return sum(p.box.num_cells for p in self.patches)

    def patch_containing(self, point: tuple[int, ...]) -> GridPatch | None:
        """The patch whose interior holds ``point`` (level coords), if any."""
        for p in self.patches:
            if point in p.box:
                return p
        return None

    def covers(self, box: Box) -> bool:
        """True if the union of patch boxes covers every cell of ``box``."""
        remaining = [box]
        for p in self.patches:
            nxt: list[Box] = []
            for r in remaining:
                nxt.extend(r.difference(p.box))
            remaining = nxt
            if not remaining:
                return True
        return not remaining
