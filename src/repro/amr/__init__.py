"""Structured adaptive mesh refinement substrate (the GrACE analogue).

Implements the Berger-Oliger AMR scheme the paper's applications run on:

- :mod:`repro.amr.api` -- the kernel protocol applications implement
  (initial condition, stencil step, error indicator, CFL bound);
- :mod:`repro.amr.patch` -- :class:`GridPatch`, a bounding box plus field
  data with ghost cells;
- :mod:`repro.amr.level` -- :class:`GridLevel`, the patches of one
  refinement level;
- :mod:`repro.amr.hierarchy` -- :class:`GridHierarchy`, the dynamic
  adaptive grid hierarchy (fig. 2 of the paper), including the flattened
  bounding-box list handed to partitioners at every regrid;
- :mod:`repro.amr.flagging` -- error estimation and cell tagging;
- :mod:`repro.amr.clustering` -- Berger-Rigoutsos point clustering;
- :mod:`repro.amr.regrid` -- the three-step regrid operation (flag,
  cluster, generate refined grids) with proper-nesting enforcement;
- :mod:`repro.amr.intergrid` -- prolongation and restriction;
- :mod:`repro.amr.ghost` -- ghost filling within a level and from parents,
  plus the exchange-volume planner the runtime prices communication with;
- :mod:`repro.amr.integrator` -- recursive Berger-Oliger time integration
  with time subcycling.
"""

from repro.amr.api import AmrKernel
from repro.amr.patch import GridPatch
from repro.amr.level import GridLevel
from repro.amr.hierarchy import GridHierarchy
from repro.amr.clustering import berger_rigoutsos
from repro.amr.integrator import BergerOligerIntegrator

__all__ = [
    "AmrKernel",
    "GridPatch",
    "GridLevel",
    "GridHierarchy",
    "berger_rigoutsos",
    "BergerOligerIntegrator",
]
