"""``repro serve``: a stdlib HTTP front over campaign directories.

Serves every campaign directory found under one root (a *campaign
directory* is any child directory containing ``campaign.json``; its
directory name is its URL id).  Routes:

- ``GET /healthz`` -- liveness probe.
- ``GET /campaigns`` -- list campaigns with progress.
- ``GET /campaigns/<id>`` -- one campaign's status.
- ``GET /campaigns/<id>/cells`` -- cell keys + index summaries.
- ``GET /campaigns/<id>/cells/<key>`` -- one cell's full record.
- ``GET /campaigns/<id>/report`` -- self-contained HTML report.
- ``GET /campaigns/<id>/dashboard`` -- the telemetry HTML dashboard,
  rendered from the campaign's ``events.jsonl`` trace when present.

Rendered responses are cached per (campaign, route) keyed on the result
store's file-stat signature: a repeat request for an unchanged store is
answered from memory (well under the 50 ms budget) and carries an ETag,
so a client sending ``If-None-Match`` gets a body-less ``304``.  Any
append or compaction changes the signature and invalidates the entry.

Everything here is the standard library -- ``http.server`` threading
server, no framework -- matching the repo's no-new-dependencies rule.
"""

from __future__ import annotations

import hashlib
import html
import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import unquote, urlparse

from repro.campaign.orchestrator import META_NAME, campaign_status
from repro.campaign.store import ResultStore
from repro.util.errors import CampaignError

__all__ = ["CampaignServer", "make_server"]

#: URL ids are directory names; reject anything that could escape root.
_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _etag_of(signature: tuple) -> str:
    digest = hashlib.sha256(repr(signature).encode("utf-8")).hexdigest()
    return f'"{digest[:24]}"'


class _RenderCache:
    """Per-(campaign, route) cache of rendered bodies, signature-keyed."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], tuple[tuple, str, bytes, str]] = {}
        self.hits = 0
        self.misses = 0

    def get(
        self, campaign: str, route: str, signature: tuple
    ) -> tuple[str, bytes, str] | None:
        entry = self._entries.get((campaign, route))
        if entry is not None and entry[0] == signature:
            self.hits += 1
            return entry[1], entry[2], entry[3]
        self.misses += 1
        return None

    def put(
        self,
        campaign: str,
        route: str,
        signature: tuple,
        body: bytes,
        content_type: str,
    ) -> tuple[str, bytes, str]:
        etag = _etag_of(signature)
        self._entries[(campaign, route)] = (
            signature,
            etag,
            body,
            content_type,
        )
        return etag, body, content_type


class CampaignServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one campaign root directory."""

    daemon_threads = True

    def __init__(self, root: str | Path, host: str = "127.0.0.1", port: int = 0):
        self.root = Path(root)
        if not self.root.is_dir():
            raise CampaignError(f"campaign root is not a directory: {self.root}")
        self.cache = _RenderCache()
        super().__init__((host, port), _Handler)

    # -- campaign discovery -------------------------------------------
    def campaign_ids(self) -> list[str]:
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_dir() and (p / META_NAME).is_file()
        )

    def campaign_dir(self, campaign_id: str) -> Path:
        if not _ID_RE.match(campaign_id):
            raise CampaignError(f"invalid campaign id {campaign_id!r}")
        directory = self.root / campaign_id
        if not (directory / META_NAME).is_file():
            raise CampaignError(f"no campaign {campaign_id!r} under {self.root}")
        return directory


class _Handler(BaseHTTPRequestHandler):
    server: CampaignServer

    # Quiet by default: access logs go nowhere unless subclassed.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # -- response plumbing --------------------------------------------
    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str,
        etag: str | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if etag is not None:
            self.send_header("ETag", etag)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode(
            "utf-8"
        )
        self._send(status, body, "application/json; charset=utf-8")

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _send_cached(
        self,
        campaign: str,
        route: str,
        signature: tuple,
        render: Any,
        content_type: str,
    ) -> None:
        """Serve from the render cache; honour ``If-None-Match``."""
        cache = self.server.cache
        hit = cache.get(campaign, route, signature)
        if hit is None:
            body = render()
            if isinstance(body, str):
                body = body.encode("utf-8")
            etag, body, content_type = cache.put(
                campaign, route, signature, body, content_type
            )
        else:
            etag, body, content_type = hit
        if self.headers.get("If-None-Match") == etag:
            self.send_response(304)
            self.send_header("ETag", etag)
            self.end_headers()
            return
        self._send(200, body, content_type, etag=etag)

    # -- routing -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = unquote(urlparse(self.path).path)
        try:
            self._route(path)
        except CampaignError as exc:
            self._send_error_json(404, str(exc))
        except BrokenPipeError:
            pass
        except Exception as exc:  # noqa: BLE001 - one request, one error
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")

    def _route(self, path: str) -> None:
        if path in ("/healthz", "/healthz/"):
            self._send_json({"status": "ok"})
            return
        parts = [p for p in path.split("/") if p]
        if not parts or parts[0] != "campaigns":
            self._send_error_json(404, f"no route {path!r}")
            return
        if len(parts) == 1:
            self._list_campaigns()
            return
        campaign_id = parts[1]
        directory = self.server.campaign_dir(campaign_id)
        if len(parts) == 2:
            self._send_json(campaign_status(directory))
        elif parts[2] == "cells" and len(parts) == 3:
            self._list_cells(campaign_id, directory)
        elif parts[2] == "cells" and len(parts) == 4:
            self._send_json(ResultStore(directory).get(parts[3]))
        elif parts[2] == "report" and len(parts) == 3:
            self._report(campaign_id, directory)
        elif parts[2] == "dashboard" and len(parts) == 3:
            self._dashboard(campaign_id, directory)
        else:
            self._send_error_json(404, f"no route {path!r}")

    # -- route bodies --------------------------------------------------
    def _list_campaigns(self) -> None:
        rows = []
        for campaign_id in self.server.campaign_ids():
            try:
                status = campaign_status(self.server.root / campaign_id)
            except CampaignError:
                continue
            rows.append({"id": campaign_id, **status})
        self._send_json({"campaigns": rows})

    def _list_cells(self, campaign_id: str, directory: Path) -> None:
        store = ResultStore(directory)

        def render() -> bytes:
            index = store._load_index()
            if index is not None:
                cells = index.get("cells", {})
            else:
                cells = {
                    r["cell_key"]: {
                        k: r.get(k)
                        for k in ("scenario", "partitioner", "seed")
                    }
                    for r in store.records()
                }
            payload = {
                "campaign": campaign_id,
                "num_cells": len(cells),
                "cells": cells,
            }
            return (
                json.dumps(payload, sort_keys=True, indent=1) + "\n"
            ).encode("utf-8")

        self._send_cached(
            campaign_id,
            "cells",
            store.signature(),
            render,
            "application/json; charset=utf-8",
        )

    def _report(self, campaign_id: str, directory: Path) -> None:
        store = ResultStore(directory)

        def render() -> str:
            return _render_report(
                campaign_id, campaign_status(directory), store.summary()
            )

        self._send_cached(
            campaign_id,
            "report",
            store.signature(),
            render,
            "text/html; charset=utf-8",
        )

    def _dashboard(self, campaign_id: str, directory: Path) -> None:
        trace_path = directory / "events.jsonl"
        if not trace_path.is_file():
            raise CampaignError(
                f"campaign {campaign_id!r} has no events.jsonl trace; "
                f"run it with tracing enabled first"
            )
        st = trace_path.stat()
        signature = (("events.jsonl", st.st_mtime_ns, st.st_size),)

        def render() -> str:
            from repro.telemetry.report import render_dashboard

            return render_dashboard(
                trace_path, title=f"Campaign {campaign_id}"
            )

        self._send_cached(
            campaign_id,
            "dashboard",
            signature,
            render,
            "text/html; charset=utf-8",
        )


# ----------------------------------------------------------------------
def _render_report(
    campaign_id: str, status: dict[str, Any], summary: dict[str, Any]
) -> str:
    """A small self-contained HTML report: progress + grid aggregates."""
    esc = html.escape
    rows = "".join(
        f"<tr><td>{esc(str(g['scenario']))}</td>"
        f"<td>{esc(str(g['partitioner']))}</td>"
        f"<td>{g['cells']}</td>"
        f"<td>{g['mean_total_seconds']:.3f}</td></tr>"
        for g in summary["grid"]
    )
    failed = status.get("failed", {})
    failed_html = ""
    if failed:
        items = "".join(
            f"<li><code>{esc(k)}</code>: {esc(v)}</li>"
            for k, v in sorted(failed.items())
        )
        failed_html = f"<h2>Failed cells</h2><ul>{items}</ul>"
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>Campaign {esc(campaign_id)}</title>
<style>
 body {{ font-family: system-ui, sans-serif; margin: 2rem; }}
 table {{ border-collapse: collapse; }}
 td, th {{ border: 1px solid #ccc; padding: .3rem .6rem; text-align: left; }}
 .muted {{ color: #666; }}
</style></head><body>
<h1>Campaign {esc(campaign_id)}</h1>
<p class="muted">{esc(str(status.get('name', '')))} &mdash;
{status.get('completed', 0)}/{status.get('num_cells', 0)} cells completed
{'(complete)' if status.get('complete') else '(in progress)'}</p>
<h2>Grid aggregates (simulated seconds)</h2>
<table>
<tr><th>scenario</th><th>partitioner</th><th>cells</th>
<th>mean total</th></tr>
{rows}
</table>
{failed_html}
</body></html>
"""


def make_server(
    root: str | Path, host: str = "127.0.0.1", port: int = 8765
) -> CampaignServer:
    """Build a ready-to-serve :class:`CampaignServer` (call serve_forever)."""
    return CampaignServer(root, host=host, port=port)
