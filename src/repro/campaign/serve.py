"""``repro serve``: a stdlib HTTP front over campaign directories.

Serves every campaign directory found under one root (a *campaign
directory* is any child directory containing ``campaign.json``; its
directory name is its URL id).  Routes:

- ``GET /healthz`` -- liveness probe.
- ``GET /metrics`` -- OpenMetrics exposition over every campaign's
  progress log plus the server's own request/cache counters.  Rebuilt
  per scrape and self-checked before it leaves the process.
- ``GET /campaigns`` -- list campaigns with progress.
- ``GET /campaigns/<id>`` -- one campaign's status.
- ``GET /campaigns/<id>/cells`` -- every grid cell with its status and
  artifact availability; supports ``?limit=``/``?offset=`` pagination
  and a ``?status=completed|failed|pending`` filter, key-sorted so
  pages are deterministic.
- ``GET /campaigns/<id>/cells/<key>`` -- one cell's full record.
- ``GET /campaigns/<id>/cells/<key>/artifacts/<kind>`` -- one file of
  the cell's trace-artifact bundle (``trace``/``flamegraph``/
  ``profile``).
- ``GET /campaigns/<id>/live`` -- a server-sent-events stream of the
  campaign's progress log: one frame per cell start/finish/failure,
  with running throughput and ETA.  Replays history, then tail-follows.
- ``GET /campaigns/<id>/decisions`` -- the reconciled decision-ledger
  report (calibration, regret, gate mix) when the campaign carries a
  ``learn/decisions.jsonl`` audit ledger; 404 otherwise.
- ``GET /campaigns/<id>/report`` -- self-contained HTML report.
- ``GET /campaigns/<id>/dashboard`` -- the telemetry HTML dashboard,
  rendered from the orchestrator trace when present.

Rendered responses are cached per (campaign, route) keyed on a
file-stat signature: a repeat request for unchanged files is answered
from memory (well under the 50 ms budget) and carries an ETag, so a
client sending ``If-None-Match`` gets a body-less ``304``.  Any append,
compaction or checkpoint changes the signature and invalidates the
entry.  ``/metrics`` and ``/live`` are deliberately uncached: both
exist to show the present, not a snapshot.

Error discipline: a bad identifier or missing resource is a one-line
404 JSON body, an invalid value for a *known* query parameter is a
one-line 400, and unknown query parameters are ignored -- a dashboard
probe or an over-eager client never sees a traceback.

Everything here is the standard library -- ``http.server`` threading
server, no framework -- matching the repo's no-new-dependencies rule.
"""

from __future__ import annotations

import hashlib
import html
import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Mapping
from urllib.parse import parse_qs, unquote, urlparse

from repro.campaign.orchestrator import (
    CHECKPOINT_DIRNAME,
    META_NAME,
    ORCHESTRATOR_TRACE_NAME,
    campaign_status,
)
from repro.campaign.spec import CampaignSpec
from repro.campaign.state import CampaignCheckpointer
from repro.campaign.store import ResultStore
from repro.telemetry.live import (
    ARTIFACT_CONTENT_TYPES,
    ARTIFACT_FILES,
    EVENTS_NAME,
    LiveProgress,
    ProgressLog,
    format_sse,
    registry_from_progress,
)
from repro.telemetry.metrics import MetricsRegistry, openmetrics_selfcheck
from repro.util.errors import CampaignError

__all__ = ["CampaignServer", "make_server"]

#: URL ids are directory names; reject anything that could escape root.
#: Cell keys obey the same grammar (coordinates + hex digest), so the
#: one pattern guards both path positions.
_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Vocabulary of the ``?status=`` filter on the cells route.
_CELL_STATUSES = ("completed", "failed", "pending")

#: SSE tail-follow poll interval and idle-heartbeat period (seconds).
_LIVE_POLL_S = 0.2
_LIVE_HEARTBEAT_S = 2.0

_OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


class _BadRequestError(Exception):
    """An invalid value for a recognised query parameter -> 400."""


def _etag_of(key: tuple) -> str:
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
    return f'"{digest[:24]}"'


def _int_param(
    query: Mapping[str, list[str]], name: str, default: int | None
) -> int | None:
    values = query.get(name)
    if not values:
        return default
    raw = values[-1]
    try:
        value = int(raw)
    except ValueError:
        raise _BadRequestError(
            f"query parameter {name!r} must be a non-negative integer, "
            f"got {raw!r}"
        ) from None
    if value < 0:
        raise _BadRequestError(
            f"query parameter {name!r} must be >= 0, got {value}"
        )
    return value


class _RenderCache:
    """Per-(campaign, route) cache of rendered bodies, signature-keyed."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], tuple[tuple, str, bytes, str]] = {}
        self.hits = 0
        self.misses = 0

    def get(
        self, campaign: str, route: str, signature: tuple
    ) -> tuple[str, bytes, str] | None:
        entry = self._entries.get((campaign, route))
        if entry is not None and entry[0] == signature:
            self.hits += 1
            return entry[1], entry[2], entry[3]
        self.misses += 1
        return None

    def put(
        self,
        campaign: str,
        route: str,
        signature: tuple,
        body: bytes,
        content_type: str,
    ) -> tuple[str, bytes, str]:
        # The route participates in the ETag so two routes over the same
        # files (e.g. two pages of /cells) never share a validator.
        etag = _etag_of((campaign, route, signature))
        self._entries[(campaign, route)] = (
            signature,
            etag,
            body,
            content_type,
        )
        return etag, body, content_type


class CampaignServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one campaign root directory."""

    daemon_threads = True

    def __init__(self, root: str | Path, host: str = "127.0.0.1", port: int = 0):
        self.root = Path(root)
        if not self.root.is_dir():
            raise CampaignError(f"campaign root is not a directory: {self.root}")
        self.cache = _RenderCache()
        #: Set on shutdown/close; long-lived SSE handlers watch it so a
        #: graceful SIGTERM ends every stream instead of hanging them.
        self.closing = threading.Event()
        self.num_requests = 0
        super().__init__((host, port), _Handler)

    def shutdown(self) -> None:
        self.closing.set()
        super().shutdown()

    def server_close(self) -> None:
        self.closing.set()
        super().server_close()

    # -- campaign discovery -------------------------------------------
    def campaign_ids(self) -> list[str]:
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_dir() and (p / META_NAME).is_file()
        )

    def campaign_dir(self, campaign_id: str) -> Path:
        if not _ID_RE.match(campaign_id):
            raise CampaignError(f"invalid campaign id {campaign_id!r}")
        directory = self.root / campaign_id
        if not (directory / META_NAME).is_file():
            raise CampaignError(f"no campaign {campaign_id!r} under {self.root}")
        return directory


def _stat_entry(path: Path) -> tuple:
    try:
        st = path.stat()
        return (path.name, st.st_mtime_ns, st.st_size)
    except FileNotFoundError:
        return (path.name, 0, 0)


def _campaign_signature(directory: Path, store: ResultStore) -> tuple:
    """Change token covering store, progress log and state checkpoints.

    The cells route folds in ledger status, so its cache must also turn
    over when a checkpoint lands or a progress event is appended -- not
    just when the store files move.
    """
    return store.signature() + (
        _stat_entry(directory / EVENTS_NAME),
        _stat_entry(directory / CHECKPOINT_DIRNAME),
    )


class _Handler(BaseHTTPRequestHandler):
    server: CampaignServer

    # Quiet by default: access logs go nowhere unless subclassed.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # -- response plumbing --------------------------------------------
    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str,
        etag: str | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if etag is not None:
            self.send_header("ETag", etag)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode(
            "utf-8"
        )
        self._send(status, body, "application/json; charset=utf-8")

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _send_cached(
        self,
        campaign: str,
        route: str,
        signature: tuple,
        render: Any,
        content_type: str,
    ) -> None:
        """Serve from the render cache; honour ``If-None-Match``."""
        cache = self.server.cache
        hit = cache.get(campaign, route, signature)
        if hit is None:
            body = render()
            if isinstance(body, str):
                body = body.encode("utf-8")
            etag, body, content_type = cache.put(
                campaign, route, signature, body, content_type
            )
        else:
            etag, body, content_type = hit
        if self.headers.get("If-None-Match") == etag:
            self.send_response(304)
            self.send_header("ETag", etag)
            self.end_headers()
            return
        self._send(200, body, content_type, etag=etag)

    # -- routing -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        path = unquote(parsed.path)
        query = parse_qs(parsed.query)
        self.server.num_requests += 1
        try:
            self._route(path, query)
        except _BadRequestError as exc:
            self._send_error_json(400, str(exc))
        except CampaignError as exc:
            self._send_error_json(404, str(exc))
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # noqa: BLE001 - one request, one error
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")

    def _route(self, path: str, query: dict[str, list[str]]) -> None:
        if path in ("/healthz", "/healthz/"):
            self._send_json({"status": "ok"})
            return
        if path in ("/metrics", "/metrics/"):
            self._metrics()
            return
        parts = [p for p in path.split("/") if p]
        if not parts or parts[0] != "campaigns":
            self._send_error_json(404, f"no route {path!r}")
            return
        if len(parts) == 1:
            self._list_campaigns()
            return
        campaign_id = parts[1]
        directory = self.server.campaign_dir(campaign_id)
        if len(parts) == 2:
            self._send_json(campaign_status(directory))
        elif parts[2] == "cells" and len(parts) == 3:
            self._list_cells(campaign_id, directory, query)
        elif parts[2] == "cells" and len(parts) == 4:
            self._send_json(ResultStore(directory).get(parts[3]))
        elif (
            parts[2] == "cells"
            and len(parts) == 6
            and parts[4] == "artifacts"
        ):
            self._artifact(campaign_id, directory, parts[3], parts[5])
        elif parts[2] == "live" and len(parts) == 3:
            self._stream_live(directory)
        elif parts[2] == "decisions" and len(parts) == 3:
            self._decisions(campaign_id, directory)
        elif parts[2] == "report" and len(parts) == 3:
            self._report(campaign_id, directory)
        elif parts[2] == "dashboard" and len(parts) == 3:
            self._dashboard(campaign_id, directory)
        else:
            self._send_error_json(404, f"no route {path!r}")

    # -- route bodies --------------------------------------------------
    def _list_campaigns(self) -> None:
        rows = []
        for campaign_id in self.server.campaign_ids():
            try:
                status = campaign_status(self.server.root / campaign_id)
            except CampaignError:
                continue
            rows.append({"id": campaign_id, **status})
        self._send_json({"campaigns": rows})

    def _list_cells(
        self,
        campaign_id: str,
        directory: Path,
        query: dict[str, list[str]],
    ) -> None:
        limit = _int_param(query, "limit", default=None)
        offset = _int_param(query, "offset", default=0)
        status_values = query.get("status")
        status_filter = status_values[-1] if status_values else None
        if status_filter is not None and status_filter not in _CELL_STATUSES:
            raise _BadRequestError(
                f"query parameter 'status' must be one of "
                f"{list(_CELL_STATUSES)}, got {status_filter!r}"
            )
        store = ResultStore(directory)

        def render() -> bytes:
            try:
                meta = json.loads(
                    (directory / META_NAME).read_text(encoding="utf-8")
                )
                spec = CampaignSpec.from_dict(meta["spec"])
            except (json.JSONDecodeError, OSError, KeyError) as exc:
                raise CampaignError(
                    f"unreadable campaign metadata for {campaign_id!r}: "
                    f"{exc}"
                ) from exc
            state = CampaignCheckpointer(
                directory / CHECKPOINT_DIRNAME
            ).load_latest()
            store_keys = None
            cells: dict[str, dict[str, Any]] = {}
            for key, cell in sorted(spec.cell_map().items()):
                if state is not None:
                    cell_status = state.status_of(key)
                else:
                    if store_keys is None:
                        store_keys = set(store.keys())
                    cell_status = (
                        "completed" if key in store_keys else "pending"
                    )
                if status_filter and cell_status != status_filter:
                    continue
                cells[key] = {
                    "scenario": cell.scenario,
                    "partitioner": cell.partitioner,
                    "seed": cell.seed,
                    "status": cell_status,
                    "artifacts": store.has_artifacts(key),
                }
            keys = sorted(cells)
            page = keys[offset:]
            if limit is not None:
                page = page[:limit]
            payload = {
                "campaign": campaign_id,
                "num_cells": len(cells),
                "total_cells": spec.num_cells,
                "offset": offset,
                "limit": limit,
                "status": status_filter,
                "cells": {k: cells[k] for k in page},
            }
            return (
                json.dumps(payload, sort_keys=True, indent=1) + "\n"
            ).encode("utf-8")

        route = f"cells?limit={limit}&offset={offset}&status={status_filter}"
        self._send_cached(
            campaign_id,
            route,
            _campaign_signature(directory, store),
            render,
            "application/json; charset=utf-8",
        )

    def _artifact(
        self, campaign_id: str, directory: Path, key: str, kind: str
    ) -> None:
        if not _ID_RE.match(key):
            raise CampaignError(f"invalid cell key {key!r}")
        if kind not in ARTIFACT_FILES:
            raise CampaignError(
                f"unknown artifact kind {kind!r}; choose from "
                f"{sorted(ARTIFACT_FILES)}"
            )
        store = ResultStore(directory)
        path = store.artifact_path(key, ARTIFACT_FILES[kind])
        try:
            st = path.stat()
        except FileNotFoundError:
            raise CampaignError(
                f"cell {key!r} has no {kind} artifact"
            ) from None
        signature = ((path.name, st.st_mtime_ns, st.st_size),)
        self._send_cached(
            campaign_id,
            f"artifact:{key}:{kind}",
            signature,
            path.read_bytes,
            ARTIFACT_CONTENT_TYPES[kind],
        )

    def _ledger_path(self, directory: Path) -> Path:
        from repro.learn.audit import LEDGER_NAME

        return directory / "learn" / LEDGER_NAME

    def _decisions(self, campaign_id: str, directory: Path) -> None:
        """Reconciled decision-ledger report for one campaign."""
        from repro.learn.audit import load_ledger_rows, reconcile

        path = self._ledger_path(directory)
        if not path.is_file():
            raise CampaignError(
                f"campaign {campaign_id!r} has no decision ledger; "
                f"run it with --ledger to record one"
            )
        signature = (_stat_entry(path),)

        def render() -> bytes:
            report = reconcile(load_ledger_rows(path))
            payload = {"campaign": campaign_id, **report}
            return (
                json.dumps(payload, sort_keys=True, indent=1) + "\n"
            ).encode("utf-8")

        self._send_cached(
            campaign_id,
            "decisions",
            signature,
            render,
            "application/json; charset=utf-8",
        )

    def _metrics(self) -> None:
        """OpenMetrics over every campaign's progress log, self-checked.

        Rebuilt per scrape -- the append-only logs are the state, so a
        server restart loses nothing -- and validated by the exposition
        self-check before a byte goes out: a malformed exposition is a
        500 here, not a silent scrape failure in the collector.
        """
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(self.server.num_requests)
        registry.counter("serve.cache_hits").inc(self.server.cache.hits)
        registry.counter("serve.cache_misses").inc(self.server.cache.misses)
        for campaign_id in self.server.campaign_ids():
            log = ProgressLog(self.server.root / campaign_id / EVENTS_NAME)
            registry_from_progress(
                log.read(), registry, campaign=campaign_id
            )
            self._decision_gauges(registry, campaign_id)
        text = registry.to_openmetrics()
        problems = openmetrics_selfcheck(text)
        if problems:
            self._send_error_json(
                500, f"openmetrics self-check failed: {'; '.join(problems)}"
            )
            return
        self._send(200, text.encode("utf-8"), _OPENMETRICS_CONTENT_TYPE)

    def _decision_gauges(
        self, registry: MetricsRegistry, campaign_id: str
    ) -> None:
        """Calibration/regret gauges for a campaign's decision ledger.

        Computed by the same :func:`repro.learn.audit.reconcile` that
        backs ``/campaigns/<id>/decisions`` and ``repro explain``, so
        the scrape, the route, and the CLI can never disagree.  A
        campaign without a ledger contributes nothing; a corrupt one is
        skipped rather than failing the whole exposition.
        """
        path = self._ledger_path(self.server.root / campaign_id)
        if not path.is_file():
            return
        from repro.learn.audit import load_ledger_rows, reconcile
        from repro.util.errors import ExperimentError

        try:
            report = reconcile(load_ledger_rows(path))
        except ExperimentError:
            return
        cal = report["calibration"]
        regret = report["regret"]
        gauge = registry.gauge
        gauge("decision.records", campaign=campaign_id).set(
            float(report["records"])
        )
        gauge("decision.calibration_samples", campaign=campaign_id).set(
            float(cal["predictions"])
        )
        if cal["coverage"] is not None:
            gauge("decision.calibration_coverage", campaign=campaign_id).set(
                float(cal["coverage"])
            )
        gauge(
            "decision.cumulative_regret_seconds", campaign=campaign_id
        ).set(float(regret["cumulative_regret_seconds"]))
        if regret["agreement_rate"] is not None:
            gauge(
                "decision.oracle_agreement_rate", campaign=campaign_id
            ).set(float(regret["agreement_rate"]))

    def _stream_live(self, directory: Path) -> None:
        """SSE stream over the campaign's progress log.

        Replays the log from the top (one frame per lifecycle event, so
        a late subscriber still sees every completed cell), then
        tail-follows with heartbeat comments until the campaign
        completes, the client hangs up, or the server starts closing.
        """
        status = campaign_status(directory)
        progress = LiveProgress(num_cells=status["num_cells"])
        log = ProgressLog(directory / EVENTS_NAME)
        closing = self.server.closing
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        try:
            self.wfile.write(format_sse("snapshot", progress.snapshot()))
            self.wfile.flush()
            offset = 0
            replayed_any = False
            idle = 0.0
            while True:
                records, offset = log.read_from(offset)
                emitted = False
                for record in records:
                    if not progress.observe(record):
                        continue
                    self.wfile.write(
                        format_sse(
                            record["name"],
                            {
                                "event": record,
                                "progress": progress.snapshot(),
                            },
                        )
                    )
                    emitted = True
                    replayed_any = True
                if emitted:
                    self.wfile.flush()
                    idle = 0.0
                if progress.complete:
                    return
                if not replayed_any and status["complete"]:
                    # Legacy directory: complete per the ledger but no
                    # progress log to replay.  Close with a final frame
                    # instead of heartbeating forever.
                    progress.completed = int(status["completed"])
                    progress.complete = True
                    self.wfile.write(
                        format_sse("snapshot", progress.snapshot())
                    )
                    self.wfile.flush()
                    return
                if closing.is_set():
                    return
                if not emitted:
                    idle += _LIVE_POLL_S
                    if idle >= _LIVE_HEARTBEAT_S:
                        self.wfile.write(b": keep-alive\n\n")
                        self.wfile.flush()
                        idle = 0.0
                closing.wait(_LIVE_POLL_S)
        except (BrokenPipeError, ConnectionResetError):
            return

    def _report(self, campaign_id: str, directory: Path) -> None:
        store = ResultStore(directory)

        def render() -> str:
            return _render_report(
                campaign_id, campaign_status(directory), store.summary()
            )

        self._send_cached(
            campaign_id,
            "report",
            store.signature(),
            render,
            "text/html; charset=utf-8",
        )

    def _dashboard(self, campaign_id: str, directory: Path) -> None:
        # Prefer the orchestrator's own trace; fall back to the progress
        # log name for directories written before the two were split.
        trace_path = directory / ORCHESTRATOR_TRACE_NAME
        if not trace_path.is_file():
            trace_path = directory / EVENTS_NAME
        if not trace_path.is_file():
            raise CampaignError(
                f"campaign {campaign_id!r} has no trace to render; "
                f"run it with tracing enabled first"
            )
        signature = (_stat_entry(trace_path),)

        def render() -> str:
            from repro.telemetry.report import render_dashboard

            return render_dashboard(
                trace_path, title=f"Campaign {campaign_id}"
            )

        self._send_cached(
            campaign_id,
            "dashboard",
            signature,
            render,
            "text/html; charset=utf-8",
        )


# ----------------------------------------------------------------------
def _render_report(
    campaign_id: str, status: dict[str, Any], summary: dict[str, Any]
) -> str:
    """A small self-contained HTML report: progress + grid aggregates."""
    esc = html.escape
    rows = "".join(
        f"<tr><td>{esc(str(g['scenario']))}</td>"
        f"<td>{esc(str(g['partitioner']))}</td>"
        f"<td>{g['cells']}</td>"
        f"<td>{g['mean_total_seconds']:.3f}</td></tr>"
        for g in summary["grid"]
    )
    failed = status.get("failed", {})
    failed_html = ""
    if failed:
        items = "".join(
            f"<li><code>{esc(k)}</code>: {esc(v)}</li>"
            for k, v in sorted(failed.items())
        )
        failed_html = f"<h2>Failed cells</h2><ul>{items}</ul>"
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>Campaign {esc(campaign_id)}</title>
<style>
 body {{ font-family: system-ui, sans-serif; margin: 2rem; }}
 table {{ border-collapse: collapse; }}
 td, th {{ border: 1px solid #ccc; padding: .3rem .6rem; text-align: left; }}
 .muted {{ color: #666; }}
</style></head><body>
<h1>Campaign {esc(campaign_id)}</h1>
<p class="muted">{esc(str(status.get('name', '')))} &mdash;
{status.get('completed', 0)}/{status.get('num_cells', 0)} cells completed
{'(complete)' if status.get('complete') else '(in progress)'}</p>
<h2>Grid aggregates (simulated seconds)</h2>
<table>
<tr><th>scenario</th><th>partitioner</th><th>cells</th>
<th>mean total</th></tr>
{rows}
</table>
{failed_html}
</body></html>
"""


def make_server(
    root: str | Path, host: str = "127.0.0.1", port: int = 8765
) -> CampaignServer:
    """Build a ready-to-serve :class:`CampaignServer` (call serve_forever)."""
    return CampaignServer(root, host=host, port=port)
