"""The campaign orchestrator: shard cells across workers, resume exactly.

:class:`CampaignRunner` drives one campaign directory through its grid:

- Cells already recorded in the restored :class:`CampaignState` are
  skipped outright -- resuming an interrupted campaign re-executes
  **zero** completed cells.
- Pending cells are executed either inline (``workers <= 1``) or on a
  fork-context :class:`~concurrent.futures.ProcessPoolExecutor`.  The
  simulator is pure Python and cells are independent, so the pool is a
  straight shard with no shared state.
- Each completed cell is committed through one durability sequence:
  fsynced append to the :class:`~repro.campaign.store.ResultStore` log,
  then ``mark_completed`` in the state ledger, then an atomic
  integrity-checksummed state checkpoint.  A kill between the append and
  the checkpoint merely re-runs that one cell on resume; the store
  dedupes by cell key, so the record count still comes out exact.
- When the ledger covers the whole grid the store is compacted into its
  canonical sorted form and the campaign is marked complete.

The runner's tracer records one ``campaign.cell`` span per executed cell
(simulated-time extent = the cell's simulated run length) plus
``campaign.*`` events and counters; these are *orchestrator* telemetry
and never enter the result store, which keeps the store deterministic.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from multiprocessing import get_context
from pathlib import Path
from typing import Any

from repro.campaign.spec import CampaignSpec, CellSpec, canonical_json
from repro.campaign.state import CampaignCheckpointer, CampaignState
from repro.campaign.store import ARTIFACTS_DIRNAME, ResultStore
from repro.runtime.experiment import (
    CAMPAIGN_SCENARIOS,
    campaign_cell,
    make_partitioner,
)
from repro.telemetry.live import (
    EVENTS_NAME,
    ProgressLog,
    TelemetryDigest,
    deterministic_tracer,
    digest_from_record,
    write_cell_bundle,
)
from repro.telemetry.spans import NullTracer, Tracer
from repro.util.errors import CampaignError, ExperimentError

__all__ = ["CampaignRunner", "execute_cell", "campaign_status"]

#: File names inside a campaign directory.
META_NAME = "campaign.json"
FAILURES_NAME = "failures.jsonl"
CHECKPOINT_DIRNAME = "checkpoints"
#: The orchestrator's own trace, written by the CLI after a session
#: (``events.jsonl`` is the cross-process progress log, owned here).
ORCHESTRATOR_TRACE_NAME = "orchestrator.events.jsonl"


def execute_cell(
    cell_dict: dict[str, Any],
    artifacts_dir: str | None = None,
    events_path: str | None = None,
) -> dict[str, Any]:
    """Worker entrypoint: run one cell; return record + telemetry digest.

    Module-level so the process pool can pickle it by reference.  The
    cell runs under a :func:`deterministic_tracer` (wall readings pinned
    to zero), so both the result record and the artifact bundle written
    to ``<artifacts_dir>/<cell-key>/`` are pure functions of the cell
    spec -- byte-identical on any worker, any resume.  The bundle is
    published *before* the parent commits the cell, so a committed cell
    always has its artifacts; a crash in between merely re-runs the cell
    and rewrites identical bytes.

    Returns ``{"record": <store record>, "digest": <digest dict>}``.
    """
    cell = CellSpec.from_dict(cell_dict)
    if events_path is not None:
        ProgressLog(events_path).append(
            "live.cell_started",
            cell_key=cell.key,
            scenario=cell.scenario,
            partitioner=cell.partitioner,
            seed=cell.seed,
        )
    tracer = deterministic_tracer()
    record = campaign_cell(
        cell.scenario,
        cell.partitioner,
        cell.seed,
        dict(cell.config),
        tracer=tracer,
    )
    record["cell_key"] = cell.key
    artifacts = None
    if artifacts_dir is not None:
        artifacts = write_cell_bundle(
            tracer, Path(artifacts_dir) / cell.key, cell_key=cell.key
        )
    return {
        "record": record,
        "digest": digest_from_record(record, artifacts).to_dict(),
    }


class CampaignRunner:
    """Executes one :class:`CampaignSpec` inside one directory."""

    def __init__(
        self,
        spec: CampaignSpec,
        directory: str | Path,
        workers: int = 1,
        tracer: Tracer | NullTracer | None = None,
        artifacts: bool = True,
    ):
        self._validate_axes(spec)
        self.spec = spec
        self.directory = Path(directory)
        self.workers = max(1, int(workers))
        self.tracer = tracer if tracer is not None else Tracer()
        self.artifacts = bool(artifacts)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._claim_directory()
        self.store = ResultStore(self.directory)
        self.checkpointer = CampaignCheckpointer(
            self.directory / CHECKPOINT_DIRNAME
        )
        self.state = self._restore_state()
        self.progress = ProgressLog(self.directory / EVENTS_NAME)

    @property
    def artifacts_dir(self) -> Path:
        return self.directory / ARTIFACTS_DIRNAME

    def _worker_args(self) -> tuple[str | None, str | None]:
        """(artifacts_dir, events_path) handed to every ``execute_cell``."""
        return (
            str(self.artifacts_dir) if self.artifacts else None,
            str(self.progress.path),
        )

    # -- setup ---------------------------------------------------------
    @staticmethod
    def _validate_axes(spec: CampaignSpec) -> None:
        """Reject unknown scenario/partitioner names before any cell runs.

        A typo'd axis value should fail the campaign up front, not after
        half the grid has burned CPU.
        """
        for scenario in spec.scenarios:
            if scenario not in CAMPAIGN_SCENARIOS:
                raise CampaignError(
                    f"unknown scenario {scenario!r}; choose from "
                    f"{sorted(CAMPAIGN_SCENARIOS)}"
                )
        for partitioner in spec.partitioners:
            try:
                make_partitioner(partitioner)
            except ExperimentError as exc:
                raise CampaignError(str(exc)) from exc

    def _claim_directory(self) -> None:
        """Write (or verify) the directory's campaign metadata."""
        meta_path = self.directory / META_NAME
        if meta_path.is_file():
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, OSError) as exc:
                raise CampaignError(
                    f"unreadable campaign metadata {meta_path}: {exc}"
                ) from exc
            recorded = meta.get("campaign_id")
            if recorded != self.spec.campaign_id:
                raise CampaignError(
                    f"directory {self.directory} belongs to campaign "
                    f"{recorded!r}, not {self.spec.campaign_id!r}; "
                    f"use a fresh directory or the matching spec"
                )
            return
        meta = {
            "campaign_id": self.spec.campaign_id,
            "spec": self.spec.to_dict(),
        }
        tmp = meta_path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(meta, sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )
        tmp.replace(meta_path)

    def _restore_state(self) -> CampaignState:
        state = self.checkpointer.load_latest()
        if state is None:
            return CampaignState(self.spec.campaign_id)
        if state.campaign_id != self.spec.campaign_id:
            raise CampaignError(
                f"checkpointed state in {self.directory} belongs to "
                f"campaign {state.campaign_id!r}, not "
                f"{self.spec.campaign_id!r}"
            )
        return state

    # -- execution -----------------------------------------------------
    def pending_cells(self) -> list[CellSpec]:
        return [
            c for c in self.spec.cells() if not self.state.is_completed(c.key)
        ]

    def run(self, max_cells: int | None = None) -> dict[str, Any]:
        """Execute up to ``max_cells`` pending cells; return a status dict.

        ``max_cells`` is the deterministic interrupt used by the resume
        tests and the CI kill+resume stage: the runner stops after that
        many *newly executed* cells exactly as if the process had died
        there, except cleanly.
        """
        all_cells = self.spec.cells()
        pending = self.pending_cells()
        skipped = len(all_cells) - len(pending)
        if max_cells is not None:
            pending = pending[: max(0, int(max_cells))]

        self.tracer.event(
            "campaign.started",
            campaign_id=self.spec.campaign_id,
            num_cells=len(all_cells),
            pending=len(pending),
            skipped=skipped,
            workers=self.workers,
        )
        self.progress.append(
            "campaign.started",
            campaign_id=self.spec.campaign_id,
            num_cells=len(all_cells),
            pending=len(pending),
            completed=self.state.num_completed,
            failed=len(self.state.failed),
            workers=self.workers,
        )
        metrics = self.tracer.metrics
        metrics.counter("campaign.cells_skipped").inc(skipped)

        wall_start = time.perf_counter()
        executed = failed = 0
        if self.workers == 1:
            executed, failed = self._run_inline(pending)
        else:
            executed, failed = self._run_pool(pending)
        wall_elapsed = time.perf_counter() - wall_start

        complete = self.state.num_completed == len(all_cells)
        if complete:
            self.store.compact()
            self.tracer.event(
                "campaign.completed",
                campaign_id=self.spec.campaign_id,
                num_cells=len(all_cells),
            )
            self.progress.append(
                "campaign.completed",
                campaign_id=self.spec.campaign_id,
                num_cells=len(all_cells),
                completed=self.state.num_completed,
                failed=len(self.state.failed),
            )
        return {
            "campaign_id": self.spec.campaign_id,
            "num_cells": len(all_cells),
            "completed": self.state.num_completed,
            "executed": executed,
            "skipped": skipped,
            "failed": failed,
            "complete": complete,
            "wall_seconds": wall_elapsed,
        }

    def _run_inline(self, pending: list[CellSpec]) -> tuple[int, int]:
        executed = failed = 0
        artifacts_dir, events_path = self._worker_args()
        for cell in pending:
            t0 = time.perf_counter()
            try:
                payload = execute_cell(
                    cell.to_dict(), artifacts_dir, events_path
                )
            except Exception as exc:  # noqa: BLE001 - cell isolation
                self._commit_failure(cell, exc)
                failed += 1
                continue
            self._commit_success(cell, payload, time.perf_counter() - t0)
            executed += 1
        return executed, failed

    def _run_pool(self, pending: list[CellSpec]) -> tuple[int, int]:
        executed = failed = 0
        artifacts_dir, events_path = self._worker_args()
        # Fork start method: workers inherit the imported simulator
        # modules instead of re-importing them per process, and the
        # worker function only ever receives plain dicts and path strings.
        ctx = get_context("fork")
        with ProcessPoolExecutor(
            max_workers=self.workers, mp_context=ctx
        ) as pool:
            started = {
                pool.submit(
                    execute_cell, cell.to_dict(), artifacts_dir, events_path
                ): (
                    cell,
                    time.perf_counter(),
                )
                for cell in pending
            }
            outstanding = set(started)
            while outstanding:
                done, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in done:
                    cell, t0 = started[future]
                    exc = future.exception()
                    if exc is not None:
                        self._commit_failure(cell, exc)
                        failed += 1
                        continue
                    self._commit_success(
                        cell, future.result(), time.perf_counter() - t0
                    )
                    executed += 1
        return executed, failed

    # -- per-cell commit ----------------------------------------------
    @staticmethod
    def _unpack_payload(
        payload: dict[str, Any],
    ) -> tuple[dict[str, Any], TelemetryDigest | None]:
        """Accept both worker payloads and bare records (test doubles)."""
        if "record" in payload and isinstance(payload["record"], dict):
            digest_data = payload.get("digest")
            digest = (
                TelemetryDigest.from_dict(digest_data)
                if isinstance(digest_data, dict)
                else None
            )
            return payload["record"], digest
        return payload, None

    def _commit_success(
        self, cell: CellSpec, payload: dict[str, Any], wall_seconds: float
    ) -> None:
        """The durability sequence: store append -> ledger -> checkpoint."""
        record, digest = self._unpack_payload(payload)
        self.store.append(record)
        ordinal = self.state.mark_completed(cell.key)
        self.checkpointer.save(self.state)
        sim_seconds = float(
            record.get("metrics", {}).get("total_seconds", 0.0)
        )
        self.tracer.add_span(
            "campaign.cell",
            start_sim=0.0,
            end_sim=sim_seconds,
            cell_key=cell.key,
            scenario=cell.scenario,
            partitioner=cell.partitioner,
            seed=cell.seed,
            ordinal=ordinal,
        )
        metrics = self.tracer.metrics
        metrics.counter("campaign.cells_completed").inc()
        metrics.histogram("campaign.cell_wall_seconds").observe(wall_seconds)
        metrics.histogram("campaign.cell_sim_seconds").observe(sim_seconds)
        if digest is not None:
            self._fold_digest(cell, digest)
        self.progress.append(
            "live.cell_finished",
            cell_key=cell.key,
            scenario=cell.scenario,
            partitioner=cell.partitioner,
            seed=cell.seed,
            ordinal=ordinal,
            completed=self.state.num_completed,
            failed=len(self.state.failed),
            num_cells=self.spec.num_cells,
            wall_seconds=wall_seconds,
            sim_seconds=sim_seconds,
            artifacts=(digest.artifacts if digest is not None else None),
        )

    def _fold_digest(self, cell: CellSpec, digest: TelemetryDigest) -> None:
        """Fold a worker's telemetry digest into campaign-level metrics.

        This is the cross-process shipping step: worker tracers die with
        their process, but their phase breakdown, health flags and
        artifact sizes survive in the orchestrator's registry (and from
        there in ``GET /metrics``).
        """
        metrics = self.tracer.metrics
        for phase, sim_seconds in digest.phases.items():
            metrics.histogram(
                "campaign.phase_sim_seconds", phase=phase
            ).observe(float(sim_seconds))
        health = digest.health
        metrics.counter("campaign.health_events").inc(
            float(health.get("num_events", 0))
        )
        worst = metrics.gauge("campaign.worst_imbalance_pct")
        worst.set(
            max(worst.value, float(health.get("worst_imbalance_pct", 0.0)))
        )
        if digest.artifacts:
            total = int(digest.artifacts.get("total_bytes", 0))
            metrics.counter("campaign.artifact_bytes").inc(total)
            self.tracer.event(
                "campaign.artifact.written",
                cell_key=cell.key,
                total_bytes=total,
                files=sorted(digest.artifacts.get("files", {})),
            )
            self.tracer.add_span(
                "campaign.artifact.bundle",
                start_sim=0.0,
                end_sim=0.0,
                cell_key=cell.key,
                total_bytes=total,
            )

    def _commit_failure(self, cell: CellSpec, exc: BaseException) -> None:
        """Failed cells go to the ledger + side log, never the store."""
        message = f"{type(exc).__name__}: {exc}"
        self.state.mark_failed(cell.key, message)
        self.checkpointer.save(self.state)
        entry = {"cell_key": cell.key, "error": message}
        with open(
            self.directory / FAILURES_NAME, "a", encoding="utf-8"
        ) as fh:
            fh.write(canonical_json(entry) + "\n")
        self.tracer.event(
            "campaign.cell_failed", cell_key=cell.key, error=message
        )
        self.tracer.metrics.counter("campaign.cells_failed").inc()
        self.progress.append(
            "live.cell_failed",
            cell_key=cell.key,
            scenario=cell.scenario,
            partitioner=cell.partitioner,
            seed=cell.seed,
            error=message,
            completed=self.state.num_completed,
            failed=len(self.state.failed),
            num_cells=self.spec.num_cells,
        )


# ----------------------------------------------------------------------
def campaign_status(directory: str | Path) -> dict[str, Any]:
    """Inspect a campaign directory without executing anything."""
    directory = Path(directory)
    meta_path = directory / META_NAME
    if not meta_path.is_file():
        raise CampaignError(
            f"{directory} is not a campaign directory (no {META_NAME})"
        )
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        spec = CampaignSpec.from_dict(meta["spec"])
    except (json.JSONDecodeError, OSError, KeyError) as exc:
        raise CampaignError(
            f"unreadable campaign metadata {meta_path}: {exc}"
        ) from exc
    checkpointer = CampaignCheckpointer(directory / CHECKPOINT_DIRNAME)
    state = checkpointer.load_latest()
    completed = state.num_completed if state is not None else 0
    failed = dict(state.failed) if state is not None else {}
    store = ResultStore(directory)
    artifacts_dir = directory / ARTIFACTS_DIRNAME
    artifact_cells = (
        sum(1 for p in artifacts_dir.iterdir() if p.is_dir())
        if artifacts_dir.is_dir()
        else 0
    )
    return {
        "campaign_id": spec.campaign_id,
        "name": spec.name,
        "num_cells": spec.num_cells,
        "completed": completed,
        "failed": failed,
        "complete": completed == spec.num_cells,
        "store_records": len(store),
        "compacted": store.results_path.is_file(),
        "artifact_cells": artifact_cells,
    }
