"""Persisted campaign progress: which cells are done, checkpointed.

:class:`CampaignState` is the orchestrator's ledger -- the set of
completed cell keys (with completion ordinals) and the last error per
failed cell.  It is snapshotted through the resilience subsystem's
checkpoint machinery (:mod:`repro.resilience.checkpoint`): every
completed cell produces one integrity-checksummed, atomically published
snapshot in ``<campaign_dir>/checkpoints/``, so a campaign killed at any
instant -- SIGKILL included -- resumes from its last completed cell with
nothing re-executed and nothing half-written trusted.

Restores go through :meth:`DirectoryCheckpointStore.latest_valid`: a
snapshot corrupted mid-publish fails closed and recovery falls back to
the previous intact one, costing at most one cell of redone work.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any, Mapping

from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    Checkpoint,
    DirectoryCheckpointStore,
)
from repro.util.errors import CampaignError
from repro.util.hashing import checksum_bytes

__all__ = ["CampaignState", "CampaignCheckpointer"]

#: Snapshots kept on disk; >1 so a corrupt newest file leaves a fallback.
KEEP_CHECKPOINTS = 3


class CampaignState:
    """Mutable progress ledger for one campaign."""

    def __init__(
        self,
        campaign_id: str,
        completed: Mapping[str, int] | None = None,
        failed: Mapping[str, str] | None = None,
    ):
        self.campaign_id = campaign_id
        #: cell key -> completion ordinal (1-based, monotonically grown).
        self.completed: dict[str, int] = dict(completed or {})
        #: cell key -> last error message (cleared when the cell succeeds).
        self.failed: dict[str, str] = dict(failed or {})

    # ------------------------------------------------------------------
    def is_completed(self, key: str) -> bool:
        return key in self.completed

    def mark_completed(self, key: str) -> int:
        """Record ``key`` as done; returns its completion ordinal."""
        if key in self.completed:
            return self.completed[key]
        self.failed.pop(key, None)
        ordinal = len(self.completed) + 1
        self.completed[key] = ordinal
        return ordinal

    def mark_failed(self, key: str, error: str) -> None:
        if key in self.completed:
            raise CampaignError(
                f"cell {key!r} is already completed; refusing to mark failed"
            )
        self.failed[key] = str(error)

    def status_of(self, key: str) -> str:
        """``completed`` / ``failed`` / ``pending`` for one cell key.

        The vocabulary of the ``?status=`` filter on the HTTP cells
        route; a key outside the grid still reports ``pending`` -- grid
        membership is the spec's business, not the ledger's.
        """
        if key in self.completed:
            return "completed"
        if key in self.failed:
            return "failed"
        return "pending"

    @property
    def num_completed(self) -> int:
        return len(self.completed)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "campaign_id": self.campaign_id,
            "completed": dict(self.completed),
            "failed": dict(self.failed),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignState":
        return cls(
            campaign_id=str(data["campaign_id"]),
            completed={str(k): int(v) for k, v in data["completed"].items()},
            failed={str(k): str(v) for k, v in data["failed"].items()},
        )


class CampaignCheckpointer:
    """Snapshots a :class:`CampaignState` through the resilience store.

    Reuses :class:`~repro.resilience.checkpoint.Checkpoint` verbatim --
    same format version, header, checksum and atomic directory publish
    the grid-hierarchy snapshots use -- with the pickled state dict as
    the payload and the completion count as the step tag.
    """

    def __init__(self, directory: str | Path, keep_last: int = KEEP_CHECKPOINTS):
        self.store = DirectoryCheckpointStore(directory, keep_last=keep_last)
        self.num_saves = 0

    def save(self, state: CampaignState) -> Checkpoint:
        payload = pickle.dumps(state.to_dict(), protocol=4)
        ckpt = Checkpoint(
            version=CHECKPOINT_FORMAT_VERSION,
            step=state.num_completed,
            sim_time=0.0,
            clock_time=0.0,
            payload=payload,
            checksum=checksum_bytes(payload),
        )
        self.store.save(ckpt)
        self.num_saves += 1
        return ckpt

    def load_latest(self) -> CampaignState | None:
        """Newest restorable state, or ``None`` for a fresh directory.

        Walks back past corrupt snapshots (see ``latest_valid``); only a
        directory with *no* intact snapshot at all comes back empty.
        """
        ckpt = self.store.latest_valid()
        if ckpt is None:
            return None
        return CampaignState.from_dict(ckpt.state())
