"""The campaign result store: append-only JSONL log + compacted index.

Two-file design, mirroring how log-structured stores separate ingest
from serving:

- ``results.log.jsonl`` -- the *ingest log*.  Workers complete cells in
  nondeterministic order, so records are appended (and fsynced) here the
  moment they arrive; a crash loses at most the line being written, and
  a torn final line is skipped on read rather than poisoning the store.
- ``results.jsonl`` + ``index.json`` -- the *canonical store*.
  :meth:`ResultStore.compact` merges the log, dedupes by cell key, sorts
  by key and rewrites both atomically.  Because every record is a
  deterministic function of its cell spec (see
  :func:`repro.runtime.experiment.campaign_cell`) and the canonical
  encoding is fixed, the compacted store is **byte-identical** no matter
  how many workers ran the campaign or how often it was interrupted --
  the property the determinism acceptance test pins.

The index maps cell key -> byte offset/length into ``results.jsonl``
plus a summary row, so the HTTP layer answers cell queries with one
``seek`` instead of a scan.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator

from repro.campaign.spec import canonical_json
from repro.util.errors import CampaignError

__all__ = [
    "ResultStore",
    "RESULTS_NAME",
    "LOG_NAME",
    "INDEX_NAME",
    "ARTIFACTS_DIRNAME",
]

RESULTS_NAME = "results.jsonl"
LOG_NAME = "results.log.jsonl"
INDEX_NAME = "index.json"
#: Per-cell trace-artifact bundles live under ``artifacts/<cell-key>/``.
ARTIFACTS_DIRNAME = "artifacts"

#: Fields copied from each record into its index summary row.
_SUMMARY_FIELDS = ("scenario", "partitioner", "seed")


def _encode(record: dict[str, Any]) -> str:
    return canonical_json(record) + "\n"


class ResultStore:
    """Per-cell result records for one campaign directory."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.results_path = self.directory / RESULTS_NAME
        self.log_path = self.directory / LOG_NAME
        self.index_path = self.directory / INDEX_NAME

    # -- ingest --------------------------------------------------------
    def append(self, record: dict[str, Any]) -> None:
        """Durably append one completed-cell record to the ingest log."""
        if "cell_key" not in record:
            raise CampaignError("result record is missing 'cell_key'")
        with open(self.log_path, "a", encoding="utf-8") as fh:
            fh.write(_encode(record))
            fh.flush()
            os.fsync(fh.fileno())

    # -- reads ---------------------------------------------------------
    def _read_jsonl(self, path: Path) -> Iterator[dict[str, Any]]:
        if not path.is_file():
            return
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A torn tail line from a crash mid-append: the cell
                    # was never marked completed (the state checkpoint
                    # happens after the fsync), so dropping it is safe.
                    continue
                if isinstance(record, dict) and "cell_key" in record:
                    yield record

    def records(self) -> list[dict[str, Any]]:
        """All records, canonical first, deduped by cell key (first wins)."""
        seen: set[str] = set()
        out: list[dict[str, Any]] = []
        for path in (self.results_path, self.log_path):
            for record in self._read_jsonl(path):
                key = record["cell_key"]
                if key in seen:
                    continue
                seen.add(key)
                out.append(record)
        return out

    def keys(self) -> list[str]:
        return [r["cell_key"] for r in self.records()]

    def __len__(self) -> int:
        return len(self.records())

    def get(self, key: str) -> dict[str, Any]:
        """One record by cell key; indexed lookup when compacted."""
        index = self._load_index()
        if index is not None and key in index.get("cells", {}):
            entry = index["cells"][key]
            with open(self.results_path, "rb") as fh:
                fh.seek(entry["offset"])
                blob = fh.read(entry["length"])
            return json.loads(blob.decode("utf-8"))
        for record in self.records():
            if record["cell_key"] == key:
                return record
        raise CampaignError(f"no result record for cell {key!r}")

    def _load_index(self) -> dict[str, Any] | None:
        if not self.index_path.is_file():
            return None
        try:
            return json.loads(self.index_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            return None  # stale/torn index: fall back to scanning

    # -- compaction ----------------------------------------------------
    def compact(self) -> dict[str, Any]:
        """Merge log into the canonical store; rewrite the index.

        Records are sorted by cell key and re-encoded canonically, then
        both files are published atomically (tmp + rename).  Returns the
        fresh index payload.
        """
        records = sorted(self.records(), key=lambda r: r["cell_key"])
        index: dict[str, Any] = {"num_cells": len(records), "cells": {}}
        offset = 0
        lines: list[str] = []
        for record in records:
            line = _encode(record)
            nbytes = len(line.encode("utf-8"))
            summary = {
                k: record.get(k) for k in _SUMMARY_FIELDS if k in record
            }
            index["cells"][record["cell_key"]] = {
                "offset": offset,
                "length": nbytes,
                **summary,
            }
            offset += nbytes
            lines.append(line)

        tmp_results = self.results_path.with_suffix(".tmp")
        tmp_results.write_text("".join(lines), encoding="utf-8")
        tmp_results.replace(self.results_path)
        tmp_index = self.index_path.with_suffix(".tmp")
        tmp_index.write_text(
            json.dumps(index, sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )
        tmp_index.replace(self.index_path)
        self.log_path.unlink(missing_ok=True)
        return index

    # -- artifact bundles ---------------------------------------------
    @property
    def artifacts_root(self) -> Path:
        return self.directory / ARTIFACTS_DIRNAME

    def artifact_dir(self, key: str) -> Path:
        """The bundle directory for one cell key (may not exist yet)."""
        return self.artifacts_root / key

    def has_artifacts(self, key: str) -> bool:
        return self.artifact_dir(key).is_dir()

    def artifact_path(self, key: str, filename: str) -> Path:
        """One artifact file inside a cell's bundle directory.

        ``filename`` must be a bare name -- the serving layer maps its
        public ``kind`` segment through a fixed table before calling
        this, so no request-controlled path component ever carries a
        separator.
        """
        if "/" in filename or "\\" in filename or filename in (".", ".."):
            raise CampaignError(f"invalid artifact filename {filename!r}")
        return self.artifact_dir(key) / filename

    # -- serving helpers ----------------------------------------------
    def signature(self) -> tuple:
        """Cheap change token over the store's files (for ETag caching).

        Any append, compaction or rewrite bumps an mtime or size, so a
        cached render keyed on this tuple is invalidated exactly when
        the underlying data can have changed.
        """
        sig = []
        for path in (self.results_path, self.log_path, self.index_path):
            try:
                st = path.stat()
                sig.append((path.name, st.st_mtime_ns, st.st_size))
            except FileNotFoundError:
                sig.append((path.name, 0, 0))
        return tuple(sig)

    def summary(self) -> dict[str, Any]:
        """Aggregates for status lines and the served report."""
        records = self.records()
        by_pair: dict[tuple[str, str], list[float]] = {}
        for record in records:
            metrics = record.get("metrics", {})
            pair = (record.get("scenario"), record.get("partitioner"))
            by_pair.setdefault(pair, []).append(
                float(metrics.get("total_seconds", 0.0))
            )
        grid = [
            {
                "scenario": scenario,
                "partitioner": partitioner,
                "cells": len(times),
                "mean_total_seconds": sum(times) / len(times),
            }
            for (scenario, partitioner), times in sorted(by_pair.items())
        ]
        return {"num_cells": len(records), "grid": grid}
