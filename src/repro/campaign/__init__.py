"""Experiment campaigns: declarative grids, resumable runs, HTTP serving.

The campaign subsystem turns one-off experiment scripts into a durable
service workflow:

- :mod:`repro.campaign.spec` -- the scenario × partitioner × seed ×
  config grid and its stable cell keys.
- :mod:`repro.campaign.state` -- the completed-cell ledger, checkpointed
  through :mod:`repro.resilience.checkpoint` after every cell.
- :mod:`repro.campaign.store` -- the append-then-compact JSONL result
  store whose canonical form is byte-identical across worker counts and
  interruptions.
- :mod:`repro.campaign.orchestrator` -- the sharded (process-pool)
  runner with exact resume, per-cell artifact bundles and the
  cross-process ``events.jsonl`` progress log.
- :mod:`repro.campaign.serve` -- the ``repro serve`` HTTP layer with
  ETag/signature response caching, an OpenMetrics endpoint, per-cell
  artifact routes and a live SSE progress stream.
"""

from repro.campaign.orchestrator import (
    ORCHESTRATOR_TRACE_NAME,
    CampaignRunner,
    campaign_status,
    execute_cell,
)
from repro.campaign.serve import CampaignServer, make_server
from repro.campaign.spec import (
    SPEC_SCHEMA_VERSION,
    CampaignSpec,
    CellSpec,
    canonical_json,
)
from repro.campaign.state import CampaignCheckpointer, CampaignState
from repro.campaign.store import ARTIFACTS_DIRNAME, ResultStore

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "ARTIFACTS_DIRNAME",
    "ORCHESTRATOR_TRACE_NAME",
    "CampaignSpec",
    "CellSpec",
    "canonical_json",
    "CampaignState",
    "CampaignCheckpointer",
    "ResultStore",
    "CampaignRunner",
    "campaign_status",
    "execute_cell",
    "CampaignServer",
    "make_server",
]
