"""Campaign specifications: a scenario × partitioner × seed × config grid.

A :class:`CampaignSpec` names the full grid of runs a campaign executes.
Expanding it yields one :class:`CellSpec` per grid point, each with a
*stable cell key* -- a human-greppable coordinate string plus a digest of
the cell's resolved config.  Keys are the identity the whole subsystem
hangs off: the orchestrator dedupes completed cells by key across
interruptions, the result store indexes and sorts by key, and the
determinism acceptance test compares key-sorted stores byte for byte.

Everything here is pure data: no I/O, no clocks, no randomness.  The same
spec dict always expands to the same cells with the same keys, on any
machine, in any process.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.util.errors import CampaignError

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "CellSpec",
    "CampaignSpec",
    "canonical_json",
]

#: Version stamped into serialized specs and result records.
SPEC_SCHEMA_VERSION = 1

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def canonical_json(obj: Any) -> str:
    """The one JSON encoding used for hashing and result-store lines.

    Sorted keys, no whitespace: byte-identical for equal values, which is
    what makes cell keys stable and compacted stores comparable.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _digest(obj: Any, length: int = 10) -> str:
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()[
        :length
    ]


@dataclass(frozen=True)
class CellSpec:
    """One grid point: a single simulator run with fully resolved config."""

    scenario: str
    partitioner: str
    seed: int
    config: Mapping[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """Stable identity of this cell.

        Readable coordinates plus a config digest, so two cells differing
        only in config never collide and a human can still grep a store
        for ``linux-static--greedy--s7``.
        """
        return (
            f"{self.scenario}--{self.partitioner}--s{self.seed}"
            f"--{_digest(dict(self.config))}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "partitioner": self.partitioner,
            "seed": int(self.seed),
            "config": dict(self.config),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellSpec":
        return cls(
            scenario=str(data["scenario"]),
            partitioner=str(data["partitioner"]),
            seed=int(data["seed"]),
            config=dict(data.get("config", {})),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """The declarative grid a campaign executes.

    Attributes
    ----------
    name:
        Human label; also the prefix of :attr:`campaign_id`.
    scenarios / partitioners / seeds:
        The three primary grid axes (scenario names come from
        :data:`repro.runtime.experiment.CAMPAIGN_SCENARIOS`).
    configs:
        Optional fourth axis of config overrides; each entry is merged
        over :attr:`base_config` to produce one cell per combination.
    base_config:
        Config shared by every cell (iterations, procs, intervals ...).
    """

    name: str
    scenarios: tuple[str, ...]
    partitioners: tuple[str, ...]
    seeds: tuple[int, ...]
    configs: tuple[Mapping[str, Any], ...] = (
        field(default_factory=lambda: ({},))
    )
    base_config: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name or ""):
            raise CampaignError(
                f"campaign name must be a [A-Za-z0-9._-] slug, got "
                f"{self.name!r}"
            )
        for axis, values in (
            ("scenarios", self.scenarios),
            ("partitioners", self.partitioners),
            ("seeds", self.seeds),
            ("configs", self.configs),
        ):
            if not values:
                raise CampaignError(f"campaign axis {axis!r} is empty")
        keys = [c.key for c in self.cells()]
        if len(keys) != len(set(keys)):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise CampaignError(
                f"campaign grid contains duplicate cells: {dupes[:3]}"
            )

    # ------------------------------------------------------------------
    def cells(self) -> tuple[CellSpec, ...]:
        """Expand the grid in deterministic nested-loop order."""
        out = []
        for scenario in self.scenarios:
            for partitioner in self.partitioners:
                for seed in self.seeds:
                    for overrides in self.configs:
                        config = {**dict(self.base_config), **dict(overrides)}
                        out.append(
                            CellSpec(
                                scenario=scenario,
                                partitioner=partitioner,
                                seed=int(seed),
                                config=config,
                            )
                        )
        return tuple(out)

    def cell_map(self) -> dict[str, CellSpec]:
        """Cell key -> :class:`CellSpec` over the whole grid.

        The serving layer uses this to list *every* cell -- pending ones
        included -- without touching the result store: coordinates are
        derivable from the spec alone.
        """
        return {c.key: c for c in self.cells()}

    @property
    def num_cells(self) -> int:
        return (
            len(self.scenarios)
            * len(self.partitioners)
            * len(self.seeds)
            * len(self.configs)
        )

    @property
    def campaign_id(self) -> str:
        """Stable identity of the whole grid: name + spec digest.

        Two specs with the same id run the same cells; the orchestrator
        refuses to resume a directory whose recorded id differs.
        """
        return f"{self.name}-{_digest(self.to_dict(), 12)}"

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SPEC_SCHEMA_VERSION,
            "name": self.name,
            "scenarios": list(self.scenarios),
            "partitioners": list(self.partitioners),
            "seeds": [int(s) for s in self.seeds],
            "configs": [dict(c) for c in self.configs],
            "base_config": dict(self.base_config),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        if not isinstance(data, Mapping):
            raise CampaignError(
                f"campaign spec must be a JSON object, got "
                f"{type(data).__name__}"
            )
        version = int(data.get("schema_version", SPEC_SCHEMA_VERSION))
        if version != SPEC_SCHEMA_VERSION:
            raise CampaignError(
                f"unsupported campaign spec schema version {version} "
                f"(expected {SPEC_SCHEMA_VERSION})"
            )
        missing = {"name", "scenarios", "partitioners", "seeds"} - set(data)
        if missing:
            raise CampaignError(
                f"campaign spec is missing fields: {sorted(missing)}"
            )
        configs: Sequence[Mapping[str, Any]] = data.get("configs") or ({},)
        try:
            return cls(
                name=str(data["name"]),
                scenarios=tuple(str(s) for s in data["scenarios"]),
                partitioners=tuple(str(p) for p in data["partitioners"]),
                seeds=tuple(int(s) for s in data["seeds"]),
                configs=tuple(dict(c) for c in configs),
                base_config=dict(data.get("base_config", {})),
            )
        except (TypeError, ValueError) as exc:
            raise CampaignError(f"malformed campaign spec: {exc}") from exc

    @classmethod
    def from_file(cls, path: str | Path) -> "CampaignSpec":
        """Load a spec from a JSON file, with one-line errors on failure."""
        path = Path(path)
        if not path.is_file():
            raise CampaignError(f"campaign spec file not found: {path}")
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
            raise CampaignError(
                f"could not parse campaign spec {path}: {exc}"
            ) from exc
        return cls.from_dict(data)
